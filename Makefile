# Convenience targets (see README.md).  Everything runs from the repo
# root with PYTHONPATH=src; no build step.

PYTHON ?= python
JOBS ?= 4

export PYTHONPATH := src

.PHONY: test test-quick test-reference test-store test-serve test-chaos bench perf clean-cache

test:
	$(PYTHON) -m pytest -x -q

test-quick:
	REPRO_SUITE_LIMIT=3 $(PYTHON) -m pytest -x -q

# artifact-store contract: backend conformance + spec-equivalence
# properties + concurrency/crash-recovery stress, with enough workers
# to make append races real, then checksums/scrub/repair and the
# bit-rot property, then the subprocess smoke that corrupts a live
# store and proves verify/--repair restore byte-identical warm hits.
# REPRO_STORE_BACKEND selects the backend the harness-level tests and
# the smoke exercise (conformance always runs them all).
test-store:
	REPRO_JOBS=$(JOBS) $(PYTHON) -m pytest -x -q \
	    tests/test_artifact_store_conformance.py \
	    tests/test_storage_property.py \
	    tests/test_storage_integrity.py \
	    tests/test_store_parallel.py \
	    tests/test_dataset_cache.py
	$(PYTHON) scripts/store_scrub_smoke.py

# the service daemon and its robustness machinery: cancellation,
# retry/breaker resilience, fault injection, admission, drain — then
# the subprocess smoke that boots the real daemon, overloads it,
# injects faults and SIGTERMs it mid-flight
test-serve:
	$(PYTHON) -m pytest -x -q \
	    tests/test_cancellation.py \
	    tests/test_resilience.py \
	    tests/test_faults.py \
	    tests/test_serve_daemon.py \
	    tests/test_events_concurrency.py
	$(PYTHON) scripts/serve_smoke.py

# process-level chaos: supervised worker isolation (SIGKILL/OOM/hang of
# workers, quarantine) and the durable request journal (crash the
# daemon mid-request, --recover replays byte-identically)
test-chaos:
	$(PYTHON) -m pytest -x -q \
	    tests/test_serve_supervisor.py \
	    tests/test_serve_journal.py
	$(PYTHON) scripts/serve_chaos_smoke.py

# the executable specifications (scalar interpreter + per-instance
# dependence walk) must stay green on their own, not just as oracles
test-reference:
	REPRO_ENGINE=reference REPRO_ANALYSIS=reference \
	    $(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m repro bench --suite all --system looprag-deepseek \
	    --system pluto --jobs $(JOBS)

perf:
	$(PYTHON) -m repro perf --json BENCH_interpreter.json
	$(PYTHON) -m repro perf --target analysis --json BENCH_analysis.json
	$(PYTHON) -m repro perf --target kernels --json BENCH_kernels.json

clean-cache:
	rm -rf .repro_cache
