"""Figure 10 — % of faster codes vs the COLA-Gen corpus."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig10_faster_vs_colagen(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig10"])
    print("\n" + render_table(result))
    assert result.rows
    # some fraction of codes must improve thanks to the richer corpus
    assert any(cell > 10.0 for row in result.rows for cell in row[1:])
