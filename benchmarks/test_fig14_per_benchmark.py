"""Figure 14 / Appendix F — per-benchmark speedups vs base LLMs."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig14_per_benchmark(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig14"])
    print("\n" + render_table(result))
    rows = {r[1]: r for r in result.rows
            if r[2] is not None}  # tolerate REPRO_SUITE_LIMIT subsampling
    # the gemm/syrk case studies: LOOPRAG floors the base LLMs
    for kernel in ("gemm", "syrk"):
        if kernel not in rows:
            continue
        lr = max(rows[kernel][2] or 0, rows[kernel][3] or 0)
        bl = max(rows[kernel][4] or 0, rows[kernel][5] or 0)
        assert lr > 4 * max(bl, 1.0)
    # the TSVC outlier kernels answer to LOOPRAG, not the base LLMs
    for kernel in ("s233", "s319"):
        if kernel not in rows:
            continue
        lr = max(rows[kernel][2] or 0, rows[kernel][3] or 0)
        bl = max(rows[kernel][4] or 0, rows[kernel][5] or 0)
        assert lr > bl
