"""Figure 11 — % faster codes, loop-aware retrieval vs alternatives."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig11_faster_retrieval(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig11"])
    print("\n" + render_table(result))
    assert len(result.rows) == 4  # 2 comparisons x 2 personas
