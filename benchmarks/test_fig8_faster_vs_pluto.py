"""Figure 8 — % of faster codes vs PLuTo."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig8_faster_vs_pluto(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig8"])
    print("\n" + render_table(result))
    for row in result.rows:
        # LOOPRAG's advantage is clearly smaller on PolyBench than on
        # TSVC/LORE (the paper's crossover; our per-kernel win rate on
        # PolyBench is higher than the paper's because LOOPRAG adds SIMD
        # on top of PLuTo-style recipes — see EXPERIMENTS.md)
        assert row[1] < row[2]
        assert row[1] < row[3]
        # LOOPRAG produces more faster codes on TSVC and LORE
        assert row[2] > 40.0
        assert row[3] > 40.0
