"""Table 3 — can LOOPRAG surpass its demonstration source PLuTo?"""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab3_pluto(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab3"])
    print("\n" + render_table(result))
    looprag = [r for r in result.rows if r[0] == "LOOPRAG"]
    pluto = [r for r in result.rows if r[0] == "PLuTo"][0]
    # the paper's headline crossover (speedup columns): PLuTo leads on
    # PolyBench, LOOPRAG leads on TSVC and LORE
    best_poly = max(r[3] for r in looprag)
    best_tsvc = max(r[5] for r in looprag)
    best_lore = max(r[7] for r in looprag)
    assert pluto[3] > best_poly
    assert best_tsvc > pluto[5]
    assert best_lore > pluto[7]
