"""Benchmark-suite configuration.

Each file regenerates one table or figure of the paper's evaluation
(`DESIGN.md` has the index).  Results are deterministic (seeded), so the
shape assertions are stable.  Set ``REPRO_SUITE_LIMIT=<n>`` to subsample
benchmark suites for a quick pass; the default runs the full 163 kernels.

Run with ``pytest benchmarks/ --benchmark-only`` and add ``-s`` to see the
rendered tables.
"""

import warnings

warnings.filterwarnings("ignore")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
