"""Benchmark-suite configuration.

Each file regenerates one table or figure of the paper's evaluation
(`DESIGN.md` has the index).  Results are deterministic (seeded), so the
shape assertions are stable.  Set ``REPRO_SUITE_LIMIT=<n>`` to subsample
benchmark suites for a quick pass; the default runs the full 163 kernels.

Unlike ``tests/``, benchmarks use the *persistent* result store
(``.repro_cache/`` or ``REPRO_CACHE_DIR``): the first run computes and
stores every (system, suite) result, warm reruns replay them from disk.
Entries are keyed on dataset + code signatures, so editing any
result-determining module recomputes instead of serving stale numbers.
``REPRO_NO_CACHE=1`` forces cold runs; ``REPRO_JOBS=<n>`` fans cache
misses across a worker pool.

Run with ``pytest benchmarks/ --benchmark-only`` and add ``-s`` to see the
rendered tables.
"""

import os
import warnings

warnings.filterwarnings("ignore")


def pytest_report_header(config):
    from repro.evaluation.store import cache_dir, store_enabled

    store = (f"store at {cache_dir()}" if store_enabled()
             else "store disabled (REPRO_NO_CACHE)")
    jobs = os.environ.get("REPRO_JOBS", "1")
    limit = os.environ.get("REPRO_SUITE_LIMIT") or "full suites"
    return f"repro harness: {store}, jobs={jobs}, {limit}"


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
