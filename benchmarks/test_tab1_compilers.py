"""Table 1 — LOOPRAG configurations vs baseline compilers."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab1_compilers(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab1"])
    print("\n" + render_table(result))
    rows = {r[0]: r for r in result.rows}
    ld = rows["LD-GCC"]
    graphite = rows["graphite"]
    polly = rows["polly"]
    perspective = rows["perspective"]
    # LOOPRAG decisively beats Graphite (≈1x) on PolyBench and LORE
    # (columns: system, poly_pass, poly_speedup, tsvc_pass, tsvc_speedup,
    # lore_pass, lore_speedup)
    assert ld[2] > 5 * graphite[2]
    assert ld[6] > 2 * graphite[6]
    # Graphite is excluded from TSVC (Appendix C)
    assert graphite[3] is None
    # Perspective has by far the lowest pass@k
    assert perspective[1] < ld[1]
    # Polly is competitive on PolyBench but LOOPRAG leads on LORE
    assert ld[6] > polly[6]
