"""Figure 7 — % of faster codes vs base LLMs."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig7_faster_vs_llms(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig7"])
    print("\n" + render_table(result))
    for row in result.rows:
        # LOOPRAG improves a substantial fraction of codes on PolyBench
        assert row[1] > 30.0
