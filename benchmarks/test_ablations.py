"""Ablation benches over DESIGN.md's fixed design choices."""

from conftest import run_once

from repro.evaluation.ablations import (ablation_candidates,
                                        ablation_corpus_size,
                                        ablation_personas,
                                        ablation_tile_size)
from repro.evaluation.reporting import render_table


def test_ablation_tile_size(benchmark):
    result = run_once(benchmark, ablation_tile_size)
    print("\n" + render_table(result))
    by_size = dict(result.rows)
    # the default 32 sits on the plateau: within 25% of the best size
    best = max(by_size.values())
    assert by_size[32] > 0.75 * best


def test_ablation_corpus_size(benchmark):
    result = run_once(benchmark, ablation_corpus_size)
    print("\n" + render_table(result))
    rows = list(result.rows)
    # a tiny corpus must not beat the full one by much (retrieval value)
    assert rows[-1][2] > 0.6 * max(r[2] for r in rows)


def test_ablation_candidates(benchmark):
    result = run_once(benchmark, ablation_candidates)
    print("\n" + render_table(result))
    by_k = {r[0]: r for r in result.rows}
    # more candidates never hurt pass@k
    assert by_k[7][1] >= by_k[1][1]


def test_ablation_personas(benchmark):
    result = run_once(benchmark, ablation_personas)
    print("\n" + render_table(result))
    by_model = {r[0]: r for r in result.rows}
    # §6.2.2's ordering: the older deepseek-v2.5 passes fewer kernels
    # than the newer deepseek-v3
    assert by_model["deepseek-v2.5"][1] <= by_model["deepseek-v3-0324"][1]
