"""Table 7 — pass@k improvement per feedback round."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab7_feedback(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab7"])
    print("\n" + render_table(result))
    first = [r for r in result.rows if r[0].startswith("First")]
    second = [r for r in result.rows if r[0].startswith("Second")]
    # the first round of compilation feedback is the largest gain
    first_poly = sum(r[2] for r in first) / len(first)
    second_poly = sum(r[2] for r in second) / len(second)
    assert first_poly > 5.0
    assert first_poly > second_poly
    # every feedback round helps (no negative improvements)
    for row in result.rows:
        for cell in row[2:]:
            assert cell >= 0.0
