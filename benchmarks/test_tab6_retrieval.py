"""Table 6 — retrieval ablation: loop-aware vs BM25 vs weighted score."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab6_retrieval(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab6"])
    print("\n" + render_table(result))
    by_method = {}
    for row in result.rows:
        by_method.setdefault(row[0], []).append(row)
    # similar pass@k across the three retrieval methods (±25 points)
    averages = {m: sum(r[2] for r in rows) / len(rows)
                for m, rows in by_method.items()}
    spread = max(averages.values()) - min(averages.values())
    assert spread < 25.0
