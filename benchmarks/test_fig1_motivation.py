"""Figure 1 — motivation: GPT-4 vs PLuTo on PolyBench and TSVC."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig1_motivation(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig1"])
    print("\n" + render_table(result))
    rows = {r[0]: r for r in result.rows}
    # GPT-4 alone loses to PLuTo on most PolyBench kernels and produces a
    # visible non-equivalent fraction
    _suite, faster, slower, neq = rows["polybench"]
    assert slower > faster
    assert neq > 5.0
