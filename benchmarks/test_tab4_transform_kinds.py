"""Table 4 — loop transformations triggered per generator corpus."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab4_transform_kinds(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab4"])
    print("\n" + render_table(result))
    rows = {r[0]: dict(zip(result.columns[1:], r[1:]))
            for r in result.rows}
    # LOOPRAG's corpus triggers all six transformation kinds
    assert all(v == "yes" for v in rows["looprag"].values())
    # COLA-Gen cannot trigger fusion/distribution/shifting
    # (single-statement perfect nests)
    assert rows["colagen"]["fusion"] == "no"
    assert rows["colagen"]["distribution"] == "no"
    assert rows["colagen"]["shifting"] == "no"
    assert rows["colagen"]["tiling"] == "yes"
