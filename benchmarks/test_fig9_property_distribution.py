"""Figure 9 — loop property distributions: LOOPRAG vs COLA-Gen corpora."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig9_property_distribution(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig9"])
    print("\n" + render_table(result))
    by_gen = {}
    for generator, prop, a, b, c, d in result.rows:
        by_gen.setdefault(generator, {})[prop] = (a, b, c, d)
    # COLA-Gen collapses into 1-2 clusters on the structural properties;
    # LOOPRAG spreads across all four
    for prop in ("NStmts", "Depth", "Schedule", "NDeps"):
        cola_top = max(by_gen["colagen"][prop])
        loop_top = max(by_gen["looprag"][prop])
        assert cola_top >= 99.0 or cola_top > loop_top
    spread_props = sum(
        1 for prop, buckets in by_gen["looprag"].items()
        if max(buckets) < 90.0)
    assert spread_props >= 6
