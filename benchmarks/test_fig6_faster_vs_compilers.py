"""Figure 6 — % of faster codes vs the four compilers."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig6_faster_vs_compilers(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig6"])
    print("\n" + render_table(result))
    rows = {r[0]: r for r in result.rows}
    # LOOPRAG produces >40% faster codes than graphite/icx/perspective on
    # PolyBench, and dominates icx/perspective on LORE.  (Deviation from
    # the paper: our Graphite parallelizes the dependence-free LORE
    # copies, so its LORE column is weaker than the paper's ~80% —
    # recorded in EXPERIMENTS.md.)
    assert rows["graphite"][1] > 40.0
    assert rows["icx"][1] > 40.0
    assert rows["perspective"][1] > 40.0
    assert rows["icx"][3] > 40.0
    assert rows["perspective"][3] > 40.0
