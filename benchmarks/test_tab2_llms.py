"""Table 2 — LOOPRAG vs base LLMs (and quoted LLM-method rows)."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab2_llms(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab2"])
    print("\n" + render_table(result))
    looprag = [r for r in result.rows if r[0] == "LOOPRAG"]
    base = [r for r in result.rows if r[0] == "BaseLLM"]
    # LOOPRAG dominates base LLMs on speedup for every suite
    for lr, bl in zip(looprag, base):
        assert lr[3] > 2 * bl[3]   # polybench speedup
        assert lr[7] > bl[7]       # lore speedup
    # pass@k stays in the same ballpark as the base LLMs
    for lr, bl in zip(looprag, base):
        assert abs(lr[2] - bl[2]) < 35
