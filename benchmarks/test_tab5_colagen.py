"""Table 5 — pipeline with LOOPRAG's corpus vs COLA-Gen's corpus."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_tab5_colagen(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["tab5"])
    print("\n" + render_table(result))
    loop_rows = [r for r in result.rows if r[0] == "looprag"]
    cola_rows = [r for r in result.rows if r[0] == "colagen"]
    # parameter-driven demonstrations lead on PolyBench speedup
    loop_poly = sum(r[3] for r in loop_rows) / len(loop_rows)
    cola_poly = sum(r[3] for r in cola_rows) / len(cola_rows)
    assert loop_poly > cola_poly
