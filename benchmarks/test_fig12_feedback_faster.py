"""Figure 12 — % of codes made faster by test+rank feedback."""

from conftest import run_once

from repro.evaluation import ALL_EXPERIMENTS, render_table


def test_fig12_feedback_faster(benchmark):
    result = run_once(benchmark, ALL_EXPERIMENTS["fig12"])
    print("\n" + render_table(result))
    # a visible fraction of benchmarks end faster than their step-2 best
    assert any(cell > 15.0 for row in result.rows for cell in row[1:])
