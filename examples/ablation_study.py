"""Mini ablation: what each LOOPRAG module contributes on one kernel.

Runs `syrk` through (1) the bare LLM, (2) LOOPRAG with BM25-only
retrieval, (3) full loop-aware LOOPRAG, and (4) LOOPRAG without the
feedback rounds — the per-kernel view of Tables 6 and 7.

Run with:  python examples/ablation_study.py
"""

import os
import warnings

warnings.filterwarnings("ignore")

from repro.compilers import GCC
from repro.ir import parse_scop
from repro.llm import GPT_4O, SimulatedLLM
from repro.pipeline import BaseLLMOptimizer, FeedbackPipeline, LoopRAG
from repro.retrieval import Retriever
from repro.synthesis import cached_dataset

SOURCE = """
scop syrk(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}
"""

PERF = {"N": 1500, "M": 1200}
TEST = {"N": 8, "M": 6}

CORPUS_SIZE = int(os.environ.get("REPRO_EXAMPLE_SIZE", "300"))


def main() -> None:
    target = parse_scop(SOURCE)
    dataset = cached_dataset(size=CORPUS_SIZE, seed=0)
    retriever = Retriever(dataset)

    rows = []

    base = BaseLLMOptimizer(GPT_4O, seed=3)
    out = base.optimize(target, PERF, TEST)
    rows.append(("bare LLM (no demos, no feedback)", out))

    for label, method in (("LOOPRAG, BM25 retrieval", "bm25"),
                          ("LOOPRAG, loop-aware retrieval", "loop-aware")):
        system = LoopRAG(dataset, GPT_4O, retrieval_method=method,
                         seed=3, retriever=retriever)
        rows.append((label, system.optimize(target, PERF, TEST)))

    no_feedback = FeedbackPipeline(
        retriever=retriever,
        llm_factory=lambda: SimulatedLLM(GPT_4O, 3),
        base_compiler=GCC, use_feedback=False, seed=3)
    from repro.pipeline.looprag import OptimizeOutcome
    rows.append(("LOOPRAG without feedback rounds",
                 OptimizeOutcome(no_feedback.run(target, PERF, TEST))))

    print(f"{'configuration':36s} {'pass':>5s} {'speedup':>9s}  recipe")
    for label, outcome in rows:
        recipe = (outcome.best_recipe.describe()[:60]
                  if outcome.best_recipe else "<none>")
        print(f"{label:36s} {str(outcome.passed):>5s} "
              f"{outcome.speedup:8.2f}x  {recipe}")


if __name__ == "__main__":
    main()
