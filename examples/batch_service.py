"""Batched service: many requests, one session, parallel workers.

Shows the throughput spelling of the API: build one
:class:`OptimizerSession`, submit a heterogeneous request batch
(LOOPRAG, the bare-LLM baseline and a compiler baseline over several
kernels), and let ``optimize_many`` fan misses across workers while the
persistent result store absorbs repeats — results are bit-identical to
serial, whatever the worker count.

Run with:  python examples/batch_service.py
(set REPRO_EXAMPLE_SIZE to shrink the demonstration corpus,
 REPRO_JOBS to change the worker count)
"""

import os
import warnings

warnings.filterwarnings("ignore")

from repro.api import OptimizationRequest, OptimizerSession
from repro.suites import SUITES

CORPUS_SIZE = int(os.environ.get("REPRO_EXAMPLE_SIZE", "300"))
KERNELS = ("gemm", "syrk", "mvt", "atax")


def main() -> None:
    polybench = SUITES["polybench"]()
    benches = [polybench.get(name) for name in KERNELS]

    session = OptimizerSession(dataset_size=CORPUS_SIZE, seed=0)

    requests = []
    for bench in benches:
        requests.append(OptimizationRequest.make(
            bench.program, bench.perf, bench.test,
            system="looprag", persona="deepseek", tag=bench.name))
    requests.append(OptimizationRequest.make(
        benches[0].program, benches[0].perf, benches[0].test,
        system="basellm", persona="gpt4", tag="gemm-baseline"))
    requests.append(OptimizationRequest.make(
        benches[0].program, benches[0].perf,
        system="compiler", optimizer="pluto", tag="gemm-pluto"))

    results = session.optimize_many(requests, jobs=int(
        os.environ.get("REPRO_JOBS", "2")))

    print(f"{'tag':16s} {'system':24s} {'pass':>5s} {'speedup':>9s}  "
          f"cached")
    for request, result in zip(requests, results):
        print(f"{request.tag:16s} {result.system_label:24s} "
              f"{str(result.passed):>5s} {result.speedup:8.2f}x  "
              f"{result.from_cache}")

    # a repeated batch is served entirely from the store
    again = session.optimize_many(requests)
    hits = sum(1 for r in again if r.from_cache)
    print(f"\nrerun: {hits}/{len(again)} served from the result store; "
          f"speedups identical: "
          f"{[r.speedup for r in again] == [r.speedup for r in results]}")


if __name__ == "__main__":
    main()
