"""Quickstart: optimize one SCoP through the service API.

An :class:`OptimizerSession` owns the expensive shared state (corpus,
retriever index, analysis caches) once; typed requests go in, typed
results come out.  Subscribe to ``session.events`` to watch the
pipeline work.

Run with:  python examples/quickstart.py
(set REPRO_EXAMPLE_SIZE to shrink the demonstration corpus)
"""

import os
import warnings

warnings.filterwarnings("ignore")

from repro.api import OptimizationRequest, OptimizerSession
from repro.codegen import scop_body_to_c
from repro.ir import parse_scop

# 1. Write your kernel in the C-like SCoP dialect (this is `syrk` from
#    PolyBench, the paper's running example).
SOURCE = """
scop syrk(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}
"""

CORPUS_SIZE = int(os.environ.get("REPRO_EXAMPLE_SIZE", "300"))


def main() -> None:
    target = parse_scop(SOURCE)
    print("== original ==")
    print(scop_body_to_c(target))

    # 2. Create a session: the synthesized corpus and retriever index
    #    are built (or loaded from the persistent cache) exactly once
    #    and reused by every request this session serves.
    session = OptimizerSession(dataset_size=CORPUS_SIZE, seed=0)

    # 3. Watch the pipeline: every stage streams structured events.
    unsubscribe = session.events.subscribe(
        lambda event: print(f"  {event}"))

    # 4. Optimize: perf params drive the performance model, test params
    #    drive differential testing.
    print("\n== session events ==")
    result = session.optimize(OptimizationRequest.make(
        target,
        perf_params={"N": 1500, "M": 1200},
        test_params={"N": 8, "M": 6},
        persona="deepseek"))
    unsubscribe()

    print("\n== LOOPRAG output ==")
    print(f"passed equivalence testing : {result.passed}")
    print(f"modeled speedup            : {result.speedup:.2f}x")
    print(f"applied transformations    : {result.recipe}")
    print("\n== optimized code ==")
    print(result.best_code)


if __name__ == "__main__":
    main()
