"""Quickstart: optimize one SCoP with LOOPRAG end to end.

Run with:  python examples/quickstart.py
"""

import warnings

warnings.filterwarnings("ignore")

from repro.codegen import scop_body_to_c
from repro.ir import parse_scop
from repro.llm import DEEPSEEK_V3
from repro.pipeline import LoopRAG
from repro.synthesis import cached_dataset

# 1. Write your kernel in the C-like SCoP dialect (this is `syrk` from
#    PolyBench, the paper's running example).
SOURCE = """
scop syrk(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}
"""


def main() -> None:
    target = parse_scop(SOURCE)
    print("== original ==")
    print(scop_body_to_c(target))

    # 2. Build (or reuse) the synthesized demonstration corpus and create
    #    a LOOPRAG instance with the DeepSeek persona.
    dataset = cached_dataset(size=300, seed=0)
    looprag = LoopRAG(dataset, persona=DEEPSEEK_V3, seed=0)

    # 3. Optimize: perf params drive the performance model, test params
    #    drive differential testing.
    outcome = looprag.optimize(target,
                               perf_params={"N": 1500, "M": 1200},
                               test_params={"N": 8, "M": 6})

    print("\n== LOOPRAG output ==")
    print(f"passed equivalence testing : {outcome.passed}")
    print(f"modeled speedup            : {outcome.speedup:.2f}x")
    print(f"applied transformations    : {outcome.best_recipe}")
    print("\n== optimized code ==")
    print(scop_body_to_c(outcome.best_program))


if __name__ == "__main__":
    main()
