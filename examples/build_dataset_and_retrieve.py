"""Dataset synthesis + loop-aware retrieval, step by step.

Shows the two inner machines of LOOPRAG working in isolation: the
parameter-driven generator (Figure 4 / Algorithm 1) and the LAScore
retriever (Eqs 1-5), ending with the exact demonstration prompt an LLM
would receive (Appendix E.2).

Run with:  python examples/build_dataset_and_retrieve.py
"""

import os
import random
import warnings

warnings.filterwarnings("ignore")

CORPUS_SIZE = int(os.environ.get("REPRO_EXAMPLE_SIZE", "250"))

from repro.analysis import cluster_distribution
from repro.codegen import scop_body_to_c
from repro.ir import parse_scop
from repro.llm.prompts import demo_prompt
from repro.retrieval import Retriever
from repro.synthesis import build_dataset, transformation_kinds

TARGET = """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
"""


def main() -> None:
    # --- synthesis -----------------------------------------------------
    dataset = build_dataset(size=CORPUS_SIZE, seed=11)
    print(f"synthesized {len(dataset)} example codes")
    print("transformation kinds triggered by PLuTo on the corpus:")
    for kind, count in sorted(transformation_kinds(dataset).items()):
        print(f"  {kind:14s} {count}")

    dist = cluster_distribution([e.example for e in dataset])
    print("\nloop property distribution (Figure 9 view):")
    for prop, buckets in dist.items():
        cells = "  ".join(f"{c}={v:5.1f}%" for c, v in buckets.items())
        print(f"  {prop:10s} {cells}")

    # --- retrieval -------------------------------------------------------
    target = parse_scop(TARGET)
    retriever = Retriever(dataset)
    print("\ntop-5 loop-aware matches for gemm:")
    for demo in retriever.rank(target, "loop-aware", top_n=5):
        bd = demo.breakdown
        print(f"  {demo.entry.name}: LAScore={demo.score:6.2f} "
              f"(BM25={bd.base:5.2f}, SF={bd.feature_score:6.2f}, "
              f"SM={bd.mismatch:4.1f})  recipe={demo.entry.recipe.kinds()}")

    demos = retriever.demonstrations(target, random.Random(0))
    prompt = demo_prompt(target, scop_body_to_c(target), demos)
    print("\n=== first 50 lines of the Appendix E.2 prompt ===")
    print("\n".join(prompt.text.splitlines()[:50]))


if __name__ == "__main__":
    main()
