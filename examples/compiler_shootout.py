"""Compiler shootout: every baseline system on two contrasting kernels.

Reproduces the Table 1 dynamics in miniature: the polyhedral compilers
shine on the dense matmul, everyone struggles differently on the stencil.

Run with:  python examples/compiler_shootout.py
"""

import warnings

warnings.filterwarnings("ignore")

from repro.compilers import (BASE_COMPILERS, Graphite, IcxOptimizer,
                             Perspective, Polly, Pluto)
from repro.evaluation.harness import OPTIMIZER_BASE
from repro.ir import parse_scop
from repro.machine import DEFAULT_MACHINE, estimate

KERNELS = {
    "gemm": ("""
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
""", {"NI": 1500, "NJ": 1500, "NK": 1500}),
    "jacobi-2d": ("""
scop jacobi_2d(T, N) {
  array A[N][N] output;
  array B[N][N] output;
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][1+j] + A[1+i][j] + A[i-1][j]);
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][1+j] + B[1+i][j] + B[i-1][j]);
  }
}
""", {"T": 500, "N": 1500}),
}

OPTIMIZERS = [Pluto(), Polly(), Graphite(), Perspective(), IcxOptimizer()]


def main() -> None:
    for name, (source, params) in KERNELS.items():
        program = parse_scop(source)
        print(f"\n=== {name} ===")
        for optimizer in OPTIMIZERS:
            base = BASE_COMPILERS[OPTIMIZER_BASE[optimizer.name]]
            baseline = estimate(base.finalize(program), params).seconds
            result = optimizer.optimize(program, params)
            if not result.ok:
                print(f"{optimizer.name:12s} FAILED: {result.failure}")
                continue
            machine = getattr(optimizer, "machine_override",
                              DEFAULT_MACHINE)
            seconds = estimate(base.finalize(result.program), params,
                               machine).seconds
            print(f"{optimizer.name:12s} {baseline / seconds:8.2f}x   "
                  f"recipe: {result.recipe.describe()[:80] or '<none>'}")


if __name__ == "__main__":
    main()
