"""Native kernel tier: the same SCoP through all three engines.

The ``native`` engine lowers each program to C, compiles it with the
host toolchain and runs it through ctypes — bit-identical to the
``reference`` tree-walker, but at compiled-code speed.  Compiled
kernels land in a persistent on-disk cache, so the second run of any
program (even from another process) skips the compiler entirely.

Without a usable C compiler the engine degrades to ``vectorized``
with a single warning, so this script works either way.

Run with:  python examples/native_kernels.py
(set REPRO_EXAMPLE_SIZE to shrink the problem size)
"""

import os
import time
import warnings

warnings.filterwarnings("ignore")

import numpy as np

from repro.codegen.ckernel import emit_module
from repro.ir import parse_scop
from repro.runtime import allocate, checksum, engine_override, execute
from repro.runtime.native import (kernel_cache_report, kernel_stats,
                                  toolchain_info)

# `gemm` from PolyBench — a dense three-deep loop nest where the
# compiled kernel pays off most.
SOURCE = """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
"""

# keep the default under the interpreter's 2M-instance budget
SIZE = int(os.environ.get("REPRO_EXAMPLE_SIZE", "110"))


def run(program, params, repeats=2):
    """Best-of-N timing: the first native run pays the one-time compile."""
    best = None
    for _ in range(repeats):
        storage = allocate(program, params, variant=1)
        start = time.perf_counter()
        instances = execute(program, params, storage)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    total = checksum(storage, program.outputs)
    return storage, total, instances, best


def main() -> None:
    program = parse_scop(SOURCE)
    params = {"NI": SIZE, "NJ": SIZE, "NK": SIZE}

    # 1. What would the native tier compile?  The emitter produces one
    #    self-contained C module per program: a span kernel for every
    #    statement plus (when the schedule allows) a whole-nest `run`.
    module = emit_module(program)
    print("== emitted C (first lines) ==")
    print("\n".join(module.source.splitlines()[:12]))
    print(f"... {len(module.source.splitlines())} lines, "
          f"{len(module.statements)} span kernel(s), "
          f"whole-nest: {module.has_whole}\n")

    # 2. Is there a toolchain?  `REPRO_CC` overrides discovery; without
    #    any compiler the native engine falls back to vectorized.
    info = toolchain_info()
    if info["available"]:
        print(f"toolchain: {info['cc']} ({info['version']}), "
              f"signature {info['signature']}")
    else:
        print("no C toolchain found -- native will degrade to vectorized")

    # 3. Same program, three engines.  All three must agree bit-for-bit
    #    on every output element and on the instance count.
    results = {}
    for engine in ("reference", "vectorized", "native"):
        with engine_override(engine):
            results[engine] = run(program, params)
        storage, total, instances, elapsed = results[engine]
        print(f"{engine:10s} {elapsed * 1000:9.2f} ms   "
              f"checksum {total:.6e}   {instances} instances")

    ref = results["reference"][0]
    for engine in ("vectorized", "native"):
        for name in ref:
            assert np.array_equal(results[engine][0][name], ref[name],
                                  equal_nan=True), (engine, name)
    print("all engines bit-identical\n")

    # 4. The compiler ran at most once: every repeat above reused the
    #    in-process context cache, and a fresh process would hit the
    #    on-disk cache instead of recompiling.
    stats = kernel_stats()
    print(f"kernel stats: {stats['compiles']} compile(s), "
          f"{stats['disk_hits']} disk hit(s), "
          f"{stats['memory_hits']} memory hit(s)")
    report = kernel_cache_report()
    print(f"kernel cache: {report['kernels']} kernel(s), "
          f"{report['bytes']} bytes at {report['path']}")


if __name__ == "__main__":
    main()
