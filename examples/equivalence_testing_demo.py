"""Equivalence checking in action (§4.3's testing machinery).

Builds the coverage-guided input set for a guarded kernel, then shows the
differential tester separating a legal transformation from three broken
candidates — a wrong interchange, an off-by-one bound, and a data race.

Run with:  python examples/equivalence_testing_demo.py
"""

import warnings

warnings.filterwarnings("ignore")

from repro.ir import parse_scop
from repro.llm.adapt import semantic_slip
from repro.testing import EquivalenceChecker
from repro.transforms import interchange, parallelize, tile

SOURCE = """
scop masked_scan(N) {
  array X[N] output;
  array W[N];
  for (i = 1; i < N; i++)
    if (i >= 3)
      X[i] = X[i-1] * 0.5 + W[i];
}
"""


def main() -> None:
    program = parse_scop(SOURCE)
    checker = EquivalenceChecker(program, {"N": 24})
    print(f"coverage-guided input selection kept "
          f"{checker.num_inputs} inputs "
          f"(branch coverage {checker.coverage:.0%})")

    # a legal transformation: tiling a sequential loop preserves order
    legal = tile(program, [1], 4)
    print(f"\ntiled by 4          -> {checker.check(legal).verdict}")

    # broken candidate 1: parallelizing the recurrence is a data race
    racy = parallelize(program, 1)
    report = checker.check(racy)
    print(f"parallel recurrence -> {report.verdict}  ({report.detail})")

    # broken candidate 2: an off-by-one bound (the IA class)
    import random
    corrupted, what = semantic_slip(program, random.Random(1))
    report = checker.check(corrupted)
    print(f"{what:19s} -> {report.verdict}  ({report.detail[:60]})")

    # broken candidate 3: a 2-deep kernel with an illegal interchange
    gemm_like = parse_scop("""
    scop rowdep(N) {
      array A[N][N] output;
      for (i = 1; i < N; i++)
        for (j = 0; j < N; j++)
          A[i][j] = A[i-1][j] + 1.0;
    }
    """)
    checker2 = EquivalenceChecker(gemm_like, {"N": 10})
    swapped = interchange(gemm_like, 1, 3)
    print(f"legal interchange   -> {checker2.check(swapped).verdict} "
          "(row dependence is preserved by column order)")


if __name__ == "__main__":
    main()
