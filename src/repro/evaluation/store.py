"""Persistent, content-keyed result store for the evaluation harness.

The session-local ``_RUN_CACHE`` memoization in ``harness.py`` only lives
for one process; every pytest/bench invocation used to recompute the
world from scratch.  This module persists finished runs to disk so warm
reruns are near-no-ops.

Layout
------
Results live in a single append-only JSON-lines file,
``<cache-dir>/results.jsonl``.  Each line is one completed plan::

    {"schema": 1, "key": "[...]", "results": [{...}, ...]}

* ``schema`` — the store format version (:data:`SCHEMA_VERSION`).
  Lines with a different schema are ignored, so format changes
  invalidate old entries instead of mis-reading them.
* ``key`` — the JSON-encoded cache key: the same tuple the in-memory
  cache uses (plan kind, suite, system parameters, ``REPRO_SUITE_LIMIT``)
  plus a dataset signature (see ``synthesis.dataset.dataset_signature``)
  and a code signature over the result-determining packages, so edits to
  the pipeline/transforms/compilers invalidate stale entries.
* ``results`` — the serialized ``BenchResult`` payload (the store is
  payload-agnostic; ``harness.py`` owns the (de)serialization).

Corrupt lines (truncated writes, hand edits, non-JSON garbage) are
skipped on load and counted in :meth:`ResultStore.stats`.  When the same
key appears twice, the last line wins.

Environment switches
--------------------
``REPRO_CACHE_DIR``   store directory (default ``.repro_cache/``)
``REPRO_NO_CACHE``    any non-empty value disables the store entirely
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"
RESULTS_FILE = "results.jsonl"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def encode_key(key: Sequence) -> str:
    """Stable string form of a cache-key tuple."""
    return json.dumps(list(key), separators=(",", ":"), sort_keys=False)


class ResultStore:
    """Append-only JSON-lines store mapping cache keys to payloads."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self._entries: Optional[Dict[str, List[dict]]] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0

    @property
    def path(self) -> Path:
        return self.root / RESULTS_FILE

    # ------------------------------------------------------------------
    def _load(self) -> Dict[str, List[dict]]:
        if self._entries is not None:
            return self._entries
        entries: Dict[str, List[dict]] = {}
        if self.path.exists():
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                        if record["schema"] != SCHEMA_VERSION:
                            self.corrupt += 1
                            continue
                        entries[record["key"]] = record["results"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        self.corrupt += 1
        self._entries = entries
        return entries

    # ------------------------------------------------------------------
    def get(self, key: Sequence) -> Optional[List[dict]]:
        """Payload for ``key``, or None (counts a hit/miss either way)."""
        found = self._load().get(encode_key(key))
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def contains(self, key: Sequence) -> bool:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return encode_key(key) in self._load()

    def put(self, key: Sequence, payload: List[dict]) -> None:
        """Persist one plan's payload (append + update the live view).

        The whole record goes down in one ``os.write`` on an
        ``O_APPEND`` descriptor, so concurrent processes sharing a
        cache dir append whole lines instead of interleaving torn
        fragments through separate buffered flushes.
        """
        encoded = encode_key(key)
        self._load()[encoded] = payload
        self.root.mkdir(parents=True, exist_ok=True)
        record = {"schema": SCHEMA_VERSION, "key": encoded,
                  "results": payload}
        line = json.dumps(record, separators=(",", ":")) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                     0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        self.writes += 1

    def clear(self) -> None:
        """Drop every entry (the ``make clean-cache`` path)."""
        if self.path.exists():
            self.path.unlink()
        self._entries = {}

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "corrupt": self.corrupt}


# ----------------------------------------------------------------------
# process-wide store registry (one store per directory, so counters and
# the loaded view survive across harness calls)
# ----------------------------------------------------------------------
_STORES: Dict[str, ResultStore] = {}


def cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def store_enabled() -> bool:
    return not os.environ.get(ENV_NO_CACHE)


def active_store() -> Optional[ResultStore]:
    """The store for the configured cache dir, or None when disabled."""
    if not store_enabled():
        return None
    root = str(cache_dir())
    if root not in _STORES:
        _STORES[root] = ResultStore(root)
    return _STORES[root]


def cache_stats() -> Dict[str, int]:
    """Aggregate hit/miss/write counters over every store touched."""
    totals = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0}
    for store in _STORES.values():
        for name, value in store.stats().items():
            totals[name] += value
    return totals


# ----------------------------------------------------------------------
# code signature: invalidate stored results when the code that produced
# them changes
# ----------------------------------------------------------------------
#: modules whose source does NOT affect run results: presentation,
#: batching/aggregation and the store/pool plumbing.  evaluation/harness.py
#: is deliberately NOT listed — it computes the compiler baselines,
#: timeouts and speedups that end up inside stored BenchResults.
_NON_RESULT_MODULES = (
    "cli.py",
    "evaluation/__init__.py",
    "evaluation/ablations.py",
    "evaluation/experiments.py",
    "evaluation/metrics.py",
    "evaluation/parallel.py",
    "evaluation/reporting.py",
    "evaluation/store.py",
)

_CODE_SIGNATURE: Optional[str] = None


def code_signature() -> str:
    """Hash of every result-determining source file under ``repro``.

    Any edit to the IR, transforms, compilers, pipeline, machine model,
    suites, retrieval, synthesis or the harness's run logic invalidates
    stored results; edits to the reporting/orchestration layer (which
    only reads results) do not.
    """
    global _CODE_SIGNATURE
    if _CODE_SIGNATURE is not None:
        return _CODE_SIGNATURE
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if rel in _NON_RESULT_MODULES:
            continue
        digest.update(rel.encode())
        digest.update(path.read_bytes())
    _CODE_SIGNATURE = digest.hexdigest()[:16]
    return _CODE_SIGNATURE
