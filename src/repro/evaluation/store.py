"""Persistent, content-keyed result store for the evaluation harness.

The session-local ``_RUN_CACHE`` memoization in ``harness.py`` only
lives for one process; every pytest/bench invocation used to recompute
the world from scratch.  This module persists finished runs to disk so
warm reruns are near-no-ops.

Layout
------
Results live in the ``"results"`` stream of a pluggable
:class:`repro.storage.ArtifactStore` rooted at ``<cache-dir>/store/``.
The default backend (:class:`repro.storage.LocalShardedStore`) shards
entries by key digest into per-shard append-only JSON-lines files with
an in-memory key index and per-shard file locks, so any number of
concurrent sessions and fork-pool workers append whole records safely;
``repro store compact`` reclaims superseded and corrupt lines.  Set
``REPRO_STORE_BACKEND`` to swap the backend (every registered backend
passes the same conformance suite).

Each stored record maps an encoded cache key to one completed plan's
payload:

* the key is the JSON-encoded tuple the in-memory cache uses (plan
  kind, suite, system parameters, ``REPRO_SUITE_LIMIT``) plus a dataset
  signature (see ``synthesis.dataset.dataset_signature``) and a code
  signature over the result-determining packages, so edits to the
  pipeline/transforms/compilers invalidate stale entries;
* the payload is the serialized ``BenchResult`` list (the store is
  payload-agnostic; ``harness.py`` owns the (de)serialization).

Corrupt lines (truncated writes, hand edits, non-JSON garbage) are
skipped on load and reported by :meth:`ResultStore.stats` separately
from superseded duplicates.  When the same key appears twice, the last
record wins.

Migration
---------
Stores written before the sharded layout (a single
``<cache-dir>/results.jsonl``) are absorbed on first open: every valid
line is re-appended to the sharded store — same keys, same payloads, so
warm hits are byte-identical through the migration — and the legacy
file is renamed to ``results.jsonl.migrated``.

Environment switches
--------------------
``REPRO_CACHE_DIR``       store directory (default ``.repro_cache/``)
``REPRO_NO_CACHE``        any non-empty value disables the store
``REPRO_STORE_BACKEND``   artifact-store backend (default ``local``)
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..storage import (ArtifactStore, CompactionReport, backend_name,
                       exclusive_lock, open_store)

SCHEMA_VERSION = 1
DEFAULT_CACHE_DIR = ".repro_cache"
RESULTS_FILE = "results.jsonl"       # pre-sharding legacy layout
STORE_DIR = "store"                  # artifact-store root, per cache dir
RESULTS_STREAM = "results"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_NO_CACHE = "REPRO_NO_CACHE"


def encode_key(key: Sequence) -> str:
    """Stable string form of a cache-key tuple."""
    return json.dumps(list(key), separators=(",", ":"), sort_keys=False)


class ResultStore:
    """Cache-key -> payload store over a pluggable artifact backend."""

    def __init__(self, root, backend: Optional[str] = None) -> None:
        self.root = Path(root)
        self.backend = backend or backend_name()
        self._artifacts: Optional[ArtifactStore] = None
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.migrated = 0

    @property
    def path(self) -> Path:
        """The pre-sharding single-file layout (migration source)."""
        return self.root / RESULTS_FILE

    @property
    def store_root(self) -> Path:
        return self.root / STORE_DIR

    def describe(self) -> str:
        return self.artifacts().describe()

    # ------------------------------------------------------------------
    def artifacts(self) -> ArtifactStore:
        """The backing artifact store (opens + migrates on first use).

        Shared with the persistent corpus cache
        (``synthesis.dataset.cached_dataset``), which keeps its
        ``"datasets"`` stream in the same store.
        """
        if self._artifacts is None:
            store = open_store(self.store_root, self.backend)
            self._migrate(store)
            self._artifacts = store
        return self._artifacts

    def _migrate(self, store: ArtifactStore) -> None:
        """Absorb a pre-sharding ``results.jsonl`` into the store."""
        legacy = self.path
        if not legacy.exists():
            return
        if not store.on_disk:
            # non-durable backend: keep the legacy file (it IS the
            # durable copy) and only absorb into an empty stream
            if store.open(RESULTS_STREAM).entries == 0:
                self.migrated += _absorb_legacy(legacy, store)
            return
        self.store_root.mkdir(parents=True, exist_ok=True)
        with exclusive_lock(self.store_root / ".migrate.lock"):
            if not legacy.exists():  # another process won the race
                return
            self.migrated += _absorb_legacy(legacy, store)
            legacy.rename(legacy.with_name(RESULTS_FILE + ".migrated"))

    # ------------------------------------------------------------------
    def get(self, key: Sequence) -> Optional[List[dict]]:
        """Payload for ``key``, or None (counts a hit/miss either way)."""
        found = self.artifacts().read(RESULTS_STREAM, encode_key(key))
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def contains(self, key: Sequence) -> bool:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self.artifacts().contains(RESULTS_STREAM, encode_key(key))

    def put(self, key: Sequence, payload: List[dict]) -> None:
        """Persist one plan's payload.

        The backend contract makes this a single atomic append (one
        ``write()`` on an ``O_APPEND`` descriptor under the shard lock
        for the local backend), so concurrent processes sharing a cache
        dir interleave whole records instead of torn fragments.
        """
        self.artifacts().append(RESULTS_STREAM, encode_key(key), payload)
        self.writes += 1

    def delete(self, key: Sequence) -> bool:
        """Tombstone one entry (rarely needed; compaction reclaims it)."""
        return self.artifacts().delete(RESULTS_STREAM, encode_key(key))

    def clear(self) -> None:
        """Drop every entry (the ``make clean-cache`` path)."""
        self.artifacts().drop(RESULTS_STREAM)
        if self.path.exists():
            self.path.unlink()

    def compact(self) -> CompactionReport:
        """Reclaim superseded/tombstoned/corrupt records."""
        return self.artifacts().compact(RESULTS_STREAM)

    def stats(self) -> Dict[str, int]:
        """Session counters + the stream's reclaimable-line breakdown.

        ``superseded`` (duplicate keys shadowed by a later write) and
        ``corrupt`` (undecodable lines skipped on load) are reported
        separately; both drop to zero after :meth:`compact`.
        """
        stream = self.artifacts().stream_stats(RESULTS_STREAM)
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes,
                "superseded": stream.superseded,
                "corrupt": stream.corrupt,
                "entries": stream.entries}


def _absorb_legacy(legacy: Path, store: ArtifactStore) -> int:
    """Re-append every valid legacy line; returns the absorbed count.

    Legacy records are ``{"schema": 1, "key": ..., "results": ...}``;
    file order is preserved so last-write-wins semantics carry over,
    and keys/payloads pass through unchanged — a warm hit after
    migration is byte-identical to one served by the old store.
    """
    absorbed = 0
    with open(legacy) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if record["schema"] != SCHEMA_VERSION:
                    continue
                key, results = record["key"], record["results"]
            except (json.JSONDecodeError, KeyError, TypeError):
                continue  # corrupt legacy line: dropped by migration
            if not isinstance(key, str):
                continue
            store.append(RESULTS_STREAM, key, results)
            absorbed += 1
    return absorbed


# ----------------------------------------------------------------------
# process-wide store registry (one store per directory, so counters and
# the loaded view survive across harness calls)
# ----------------------------------------------------------------------
_STORES: Dict[str, ResultStore] = {}


def cache_dir() -> Path:
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def store_enabled() -> bool:
    return not os.environ.get(ENV_NO_CACHE)


def active_store() -> Optional[ResultStore]:
    """The store for the configured cache dir, or None when disabled."""
    if not store_enabled():
        return None
    root = str(cache_dir())
    if root not in _STORES:
        _STORES[root] = ResultStore(root)
    return _STORES[root]


def active_artifacts() -> Optional[ArtifactStore]:
    """The shared artifact store, or None when caching is disabled."""
    store = active_store()
    return None if store is None else store.artifacts()


def cache_stats() -> Dict[str, int]:
    """Aggregate hit/miss/write counters over every store touched."""
    totals = {"hits": 0, "misses": 0, "writes": 0,
              "superseded": 0, "corrupt": 0, "entries": 0}
    for store in _STORES.values():
        for name, value in store.stats().items():
            totals[name] = totals.get(name, 0) + value
    return totals


# ----------------------------------------------------------------------
# code signature: invalidate stored results when the code that produced
# them changes
# ----------------------------------------------------------------------
#: modules whose source does NOT affect run results: presentation,
#: batching/aggregation and the store/pool plumbing.  evaluation/harness.py
#: is deliberately NOT listed — it computes the compiler baselines,
#: timeouts and speedups that end up inside stored BenchResults.
_NON_RESULT_MODULES = (
    "cli.py",
    "evaluation/__init__.py",
    "evaluation/ablations.py",
    "evaluation/experiments.py",
    "evaluation/metrics.py",
    "evaluation/parallel.py",
    "evaluation/reporting.py",
    "evaluation/store.py",
    "storage/__init__.py",
    "storage/base.py",
    "storage/local.py",
    "storage/memory.py",
    "storage/mirrored.py",
    "storage/registry.py",
    "storage/scrub.py",
)

_CODE_SIGNATURE: Optional[str] = None


def code_signature() -> str:
    """Hash of every result-determining source file under ``repro``.

    Any edit to the IR, transforms, compilers, pipeline, machine model,
    suites, retrieval, synthesis or the harness's run logic invalidates
    stored results; edits to the reporting/orchestration layer (which
    only reads results) do not.
    """
    global _CODE_SIGNATURE
    if _CODE_SIGNATURE is not None:
        return _CODE_SIGNATURE
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        rel = path.relative_to(package_root).as_posix()
        if rel in _NON_RESULT_MODULES:
            continue
        digest.update(rel.encode())
        digest.update(path.read_bytes())
    _CODE_SIGNATURE = digest.hexdigest()[:16]
    return _CODE_SIGNATURE
