"""Rendering of experiment results: text tables and JSON bench reports."""

from __future__ import annotations

import json
from typing import List, Sequence, Tuple

from .experiments import ExperimentResult
from .harness import BenchResult
from .metrics import average_speedup, pass_at_k


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table."""
    header = list(result.columns)
    body = [[_fmt(cell) for cell in row] for row in result.rows]
    widths = [len(h) for h in header]
    for row in body:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [result.title, "=" * len(result.title), line(header),
           line(["-" * w for w in widths])]
    out += [line(row) for row in body]
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_all(results: Sequence[ExperimentResult]) -> str:
    return "\n\n".join(render_table(r) for r in results)


# ----------------------------------------------------------------------
# `repro bench` reports
# ----------------------------------------------------------------------
def bench_report(runs: Sequence[Tuple[str, str, Sequence[BenchResult]]]
                 ) -> dict:
    """Structured report for a batch of (system, suite, results) runs.

    The payload is a pure function of the results — no timestamps, no
    cache statistics — so a warm rerun (or a parallel run) of the same
    plans serializes byte-identically to the cold serial run.
    """
    report_runs = []
    for system, suite, results in runs:
        report_runs.append({
            "system": system,
            "suite": suite,
            "n": len(results),
            "pass_at_k": pass_at_k([r.passed for r in results]),
            "avg_speedup": average_speedup([r.speedup for r in results]),
            "benchmarks": [{"name": r.benchmark,
                            "passed": r.passed,
                            "speedup": r.speedup,
                            "failure": r.failure}
                           for r in results],
        })
    return {"report": "bench", "runs": report_runs}


def render_json(report: dict) -> str:
    """Canonical JSON text (sorted keys, stable float repr)."""
    return json.dumps(report, indent=2, sort_keys=True)


def render_bench(report: dict) -> str:
    """Aligned text summary of a bench report."""
    rows: List[Tuple] = [(run["system"], run["suite"], run["n"],
                          run["pass_at_k"], run["avg_speedup"])
                         for run in report["runs"]]
    table = ExperimentResult(
        experiment="bench",
        title="repro bench",
        columns=("system", "suite", "n", "pass_at_k", "avg_speedup"),
        rows=tuple(rows))
    return render_table(table)


# ----------------------------------------------------------------------
# `repro perf` reports
# ----------------------------------------------------------------------
def render_perf(report: dict) -> str:
    """Aligned text summary of an engine micro-benchmark report."""
    def status(row) -> str:
        if not row["identical"]:
            return "DIFF!"
        return row.get("error") or "="

    rows: List[Tuple] = [
        (row["kernel"], row["instances"], row["reference_ms"],
         row["vectorized_ms"], row["speedup"], status(row))
        for row in report["kernels"]]
    table = ExperimentResult(
        experiment="perf",
        title=f"repro perf ({report['suite']}, param={report['param']})",
        columns=("kernel", "instances", "reference_ms", "vectorized_ms",
                 "speedup", "identical"),
        rows=tuple(rows),
        notes=(f"total {report['total_reference_s']:.2f}s -> "
               f"{report['total_vectorized_s']:.2f}s, aggregate "
               f"{report['aggregate_speedup']:.1f}x, bit-identical: "
               f"{report['bit_identical']}",))
    return render_table(table)


def render_analysis_perf(report: dict) -> str:
    """Aligned text summary of an analysis-engine micro-benchmark."""
    def status(row) -> str:
        if not row["identical"]:
            return "DIFF!"
        return row.get("error") or "="

    rows: List[Tuple] = [
        (row["kernel"], row["deps"], row["queries"],
         row["reference_dep_ms"], row["vectorized_dep_ms"],
         row["reference_legality_ms"], row["vectorized_legality_ms"],
         row["speedup"], status(row))
        for row in report["kernels"]]
    table = ExperimentResult(
        experiment="perf-analysis",
        title=f"repro perf --target analysis ({report['suite']})",
        columns=("kernel", "deps", "queries", "ref_dep_ms", "vec_dep_ms",
                 "ref_leg_ms", "vec_leg_ms", "speedup", "identical"),
        rows=tuple(rows),
        notes=(f"total {report['total_reference_s']:.2f}s -> "
               f"{report['total_vectorized_s']:.2f}s, aggregate "
               f"{report['aggregate_speedup']:.1f}x, bit-identical: "
               f"{report['bit_identical']}",))
    return render_table(table)


def render_kernels_perf(report: dict) -> str:
    """Aligned text summary of the native-kernel micro-benchmark.

    ``speedup`` is native-vs-vectorized (the measured gain of compiled
    C over the NumPy block executor); ``vs_ref`` is native-vs-reference.
    """
    def status(row) -> str:
        if not row["identical"]:
            return "DIFF!"
        return row.get("error") or "="

    rows: List[Tuple] = [
        (row["kernel"], row["instances"], row["reference_ms"],
         row["vectorized_ms"], row["native_ms"], row["speedup"],
         row["vs_reference"], status(row))
        for row in report["kernels"]]
    toolchain = report.get("toolchain") or {}
    cc = (toolchain.get("cc") or "none — native degraded to vectorized")
    table = ExperimentResult(
        experiment="perf-kernels",
        title=(f"repro perf --target kernels ({report['suite']}, "
               f"param={report['param']})"),
        columns=("kernel", "instances", "reference_ms", "vectorized_ms",
                 "native_ms", "speedup", "vs_ref", "identical"),
        rows=tuple(rows),
        notes=(f"toolchain: {cc}",
               f"total {report['total_vectorized_s']:.2f}s vectorized "
               f"-> {report['total_native_s']:.2f}s native, aggregate "
               f"{report['aggregate_speedup']:.1f}x (vs reference "
               f"{report['aggregate_vs_reference']:.1f}x), "
               f"bit-identical: {report['bit_identical']}",))
    return render_table(table)
