"""Rendering of experiment results as paper-style text tables."""

from __future__ import annotations

from typing import Sequence

from .experiments import ExperimentResult


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table."""
    header = list(result.columns)
    body = [[_fmt(cell) for cell in row] for row in result.rows]
    widths = [len(h) for h in header]
    for row in body:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [result.title, "=" * len(result.title), line(header),
           line(["-" * w for w in widths])]
    out += [line(row) for row in body]
    for note in result.notes:
        out.append(f"note: {note}")
    return "\n".join(out)


def render_all(results: Sequence[ExperimentResult]) -> str:
    return "\n\n".join(render_table(r) for r in results)
