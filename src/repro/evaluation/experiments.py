"""One function per evaluation artifact (every table and figure).

Each function returns an :class:`ExperimentResult` whose rows mirror the
paper's table rows / figure series; ``repro.evaluation.reporting`` renders
them.  Paper-vs-measured comparisons live in EXPERIMENTS.md.

Experiments declare every (system, suite) run they need as a batch of
:class:`~repro.evaluation.harness.RunPlan` and submit it through
``run_plans`` before reading any result — the harness resolves the batch
against the persistent store and fans cache misses across the evaluation
pool (``REPRO_JOBS``), instead of executing one run at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.properties import FIG9_PROPERTIES, cluster_distribution
from ..llm.personas import DEEPSEEK_V3, GPT_4O, Persona
from ..suites import FIG14_KERNELS
from ..synthesis.dataset import cached_dataset, transformation_kinds
from ..transforms.recipe import LOOP_KINDS
from .harness import (DEFAULT_DATASET_SIZE, DEFAULT_SEED, base_llm_plan,
                      compiler_plan, looprag_plan, results_for,
                      run_plans, speedups_by_benchmark)
from .metrics import average_speedup, pass_at_k, percent_faster

SUITE_NAMES = ("polybench", "tsvc", "lore")
PERSONAS = (DEEPSEEK_V3, GPT_4O)


# non-deprecated plan spellings of the old run_* helpers: experiments
# always submit plan batches first, then read individual plans back.
# Defaults live in the plan factories alone — nothing re-specified here.
def looprag_results(suite, persona, base="gcc", **plan_kwargs):
    return results_for(looprag_plan(suite, persona, base, **plan_kwargs))


def base_llm_results(suite, persona, base="gcc", **plan_kwargs):
    return results_for(base_llm_plan(suite, persona, base, **plan_kwargs))


def compiler_results(suite, optimizer_name, **plan_kwargs):
    return results_for(compiler_plan(suite, optimizer_name,
                                     **plan_kwargs))


def _looprag_gcc_plans(suites=SUITE_NAMES, generators=("looprag",),
                       methods=("loop-aware",)):
    """The standard persona-sweep plan batch most experiments share."""
    return [looprag_plan(suite, persona, "gcc", retrieval_method=method,
                         generator=generator)
            for generator in generators for method in methods
            for persona in PERSONAS for suite in suites]


def _base_llm_gcc_plans(suites=SUITE_NAMES):
    return [base_llm_plan(suite, persona, "gcc")
            for persona in PERSONAS for suite in suites]


@dataclass(frozen=True)
class ExperimentResult:
    """Structured result of one table/figure reproduction."""

    experiment: str
    title: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple, ...]
    notes: Tuple[str, ...] = ()


def _row_stats(results) -> Tuple[float, float]:
    return (pass_at_k([r.passed for r in results]),
            average_speedup([r.speedup for r in results]))


# ----------------------------------------------------------------------
# Figure 1 — motivation: GPT-4 vs PLuTo
# ----------------------------------------------------------------------
def fig1_motivation() -> ExperimentResult:
    """% of GPT-4 codes faster (↑), slower (↓) or non-equivalent (≠)
    than PLuTo's, on PolyBench and TSVC."""
    run_plans([base_llm_plan(suite, GPT_4O)
               for suite in ("polybench", "tsvc")]
              + [compiler_plan(suite, "pluto")
                 for suite in ("polybench", "tsvc")])
    rows = []
    for suite in ("polybench", "tsvc"):
        gpt = base_llm_results(suite, GPT_4O)
        pluto = compiler_results(suite, "pluto")
        pluto_speed = speedups_by_benchmark(pluto)
        up = down = neq = 0
        for r in gpt:
            if not r.passed:
                neq += 1
            elif r.speedup > pluto_speed.get(r.benchmark, 0.0):
                up += 1
            else:
                down += 1
        total = max(1, len(gpt))
        rows.append((suite, 100.0 * up / total, 100.0 * down / total,
                     100.0 * neq / total))
    return ExperimentResult(
        experiment="fig1",
        title="Figure 1: GPT-4 vs PLuTo on PolyBench/TSVC",
        columns=("suite", "faster_pct", "slower_pct", "not_equiv_pct"),
        rows=tuple(rows),
        notes=("expected shape: GPT-4 mostly slower than PLuTo, with a "
               "visible non-equivalent fraction",))


# ----------------------------------------------------------------------
# Table 1 / Figure 6 — against compilers
# ----------------------------------------------------------------------
_LOOPRAG_CONFIGS = (
    ("LD-GCC", DEEPSEEK_V3, "gcc"), ("LG-GCC", GPT_4O, "gcc"),
    ("LD-Clang", DEEPSEEK_V3, "clang"), ("LG-Clang", GPT_4O, "clang"),
    ("LD-ICX", DEEPSEEK_V3, "icx"), ("LG-ICX", GPT_4O, "icx"),
)

#: Graphite cannot run TSVC (Appendix C); Perspective's profiling times
#: out on TSVC's iteration counts (§6.2.1)
_COMPILER_SUITES = {
    "graphite": ("polybench", "lore"),
    "polly": SUITE_NAMES,
    "perspective": ("polybench", "lore"),
    "icx": SUITE_NAMES,
}


def tab1_compilers() -> ExperimentResult:
    """Pass@k and speedups: LOOPRAG configurations vs four compilers."""
    run_plans([looprag_plan(suite, persona, base)
               for _, persona, base in _LOOPRAG_CONFIGS
               for suite in SUITE_NAMES]
              + [compiler_plan(suite, compiler)
                 for compiler, allowed in _COMPILER_SUITES.items()
                 for suite in allowed])
    rows = []
    for label, persona, base in _LOOPRAG_CONFIGS:
        cells: List = [label]
        for suite in SUITE_NAMES:
            pk, sp = _row_stats(looprag_results(suite, persona, base))
            cells += [pk, sp]
        rows.append(tuple(cells))
    for compiler in ("graphite", "polly", "perspective", "icx"):
        cells = [compiler]
        for suite in SUITE_NAMES:
            if suite not in _COMPILER_SUITES[compiler]:
                cells += [None, None]
                continue
            pk, sp = _row_stats(compiler_results(suite, compiler))
            cells += [pk, sp]
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="tab1",
        title="Table 1: LOOPRAG vs baseline compilers",
        columns=("system", "poly_pass", "poly_speedup", "tsvc_pass",
                 "tsvc_speedup", "lore_pass", "lore_speedup"),
        rows=tuple(rows),
        notes=("expected shape: LOOPRAG >> Graphite/ICX everywhere; "
               "Polly strong on PolyBench/TSVC; Perspective low pass@k",))


def fig6_faster_vs_compilers() -> ExperimentResult:
    """% of benchmarks where LOOPRAG(DeepSeek) beats each compiler
    (matched base compiler)."""
    from .harness import OPTIMIZER_BASE

    run_plans([looprag_plan(suite, DEEPSEEK_V3, OPTIMIZER_BASE[compiler])
               for compiler, allowed in _COMPILER_SUITES.items()
               for suite in allowed]
              + [compiler_plan(suite, compiler)
                 for compiler, allowed in _COMPILER_SUITES.items()
                 for suite in allowed])
    rows = []
    for compiler in ("graphite", "polly", "perspective", "icx"):
        base = OPTIMIZER_BASE[compiler]
        cells: List = [compiler]
        for suite in SUITE_NAMES:
            if suite not in _COMPILER_SUITES[compiler]:
                cells.append(None)
                continue
            ours = speedups_by_benchmark(
                looprag_results(suite, DEEPSEEK_V3, base))
            theirs = speedups_by_benchmark(compiler_results(suite, compiler))
            cells.append(percent_faster(ours, theirs))
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig6",
        title="Figure 6: % faster codes vs compilers",
        columns=("compiler", "polybench", "tsvc", "lore"),
        rows=tuple(rows),
        notes=("expected shape: >40% vs graphite/icx/perspective, "
               "strongest on LORE",))


# ----------------------------------------------------------------------
# Table 2 / Figure 7 — against LLM-based methods
# ----------------------------------------------------------------------
#: literature rows quoted from the paper (neither system is released)
_PCAOT_ROWS = (("PCAOT", "GPT-4", 65.35, 1.80, None, None, None, None),
               ("PCAOT", "CLLama-70B", 63.35, 2.26, None, None, None, None))
_LLMVEC_ROW = ("LLM-Vectorizer", "GPT-4", None, None, 68.00, 5.25,
               None, None)


def tab2_llms() -> ExperimentResult:
    """LOOPRAG vs base LLMs, plus PCAOT / LLM-Vectorizer as reported."""
    run_plans(_looprag_gcc_plans() + _base_llm_gcc_plans())
    rows = []
    for persona in PERSONAS:
        cells: List = ["LOOPRAG", persona.model_id]
        for suite in SUITE_NAMES:
            cells += list(_row_stats(looprag_results(suite, persona, "gcc")))
        rows.append(tuple(cells))
    for persona in PERSONAS:
        cells = ["BaseLLM", persona.model_id]
        for suite in SUITE_NAMES:
            cells += list(_row_stats(base_llm_results(suite, persona, "gcc")))
        rows.append(tuple(cells))
    rows.extend(_PCAOT_ROWS)
    rows.append(_LLMVEC_ROW)
    return ExperimentResult(
        experiment="tab2",
        title="Table 2: LOOPRAG vs LLM-based methods",
        columns=("method", "llm", "poly_pass", "poly_speedup",
                 "tsvc_pass", "tsvc_speedup", "lore_pass", "lore_speedup"),
        rows=tuple(rows),
        notes=("PCAOT / LLM-Vectorizer rows are quoted from their papers "
               "(no released software, §6.1)",
               "expected shape: comparable pass@k, ~5-12x speedup gain "
               "over base LLMs"))


def fig7_faster_vs_llms() -> ExperimentResult:
    """% of benchmarks where LOOPRAG beats its own base LLM."""
    run_plans(_looprag_gcc_plans() + _base_llm_gcc_plans())
    rows = []
    for persona in PERSONAS:
        cells: List = [persona.model_id]
        for suite in SUITE_NAMES:
            ours = speedups_by_benchmark(
                looprag_results(suite, persona, "gcc"))
            base = speedups_by_benchmark(
                base_llm_results(suite, persona, "gcc"))
            cells.append(percent_faster(ours, base))
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig7",
        title="Figure 7: % faster codes vs base LLMs",
        columns=("llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows),
        notes=("expected shape: ~50-60% of codes faster",))


# ----------------------------------------------------------------------
# Table 3 / Figure 8 — against PLuTo
# ----------------------------------------------------------------------
def tab3_pluto() -> ExperimentResult:
    """Can LOOPRAG surpass its demonstration source?"""
    run_plans(_looprag_gcc_plans()
              + [compiler_plan(suite, "pluto") for suite in SUITE_NAMES])
    rows = []
    for persona in PERSONAS:
        cells: List = ["LOOPRAG", persona.model_id]
        for suite in SUITE_NAMES:
            cells += list(_row_stats(looprag_results(suite, persona, "gcc")))
        rows.append(tuple(cells))
    cells = ["PLuTo", "-"]
    for suite in SUITE_NAMES:
        cells += list(_row_stats(compiler_results(suite, "pluto")))
    rows.append(tuple(cells))
    return ExperimentResult(
        experiment="tab3",
        title="Table 3: LOOPRAG vs PLuTo",
        columns=("method", "llm", "poly_pass", "poly_speedup",
                 "tsvc_pass", "tsvc_speedup", "lore_pass", "lore_speedup"),
        rows=tuple(rows),
        notes=("expected shape: PLuTo wins on PolyBench; LOOPRAG wins on "
               "TSVC and LORE (unprofitable tiling + timeouts hurt "
               "PLuTo there)",))


def fig8_faster_vs_pluto() -> ExperimentResult:
    run_plans(_looprag_gcc_plans()
              + [compiler_plan(suite, "pluto") for suite in SUITE_NAMES])
    rows = []
    for persona in PERSONAS:
        cells: List = [persona.model_id]
        for suite in SUITE_NAMES:
            ours = speedups_by_benchmark(
                looprag_results(suite, persona, "gcc"))
            pluto = speedups_by_benchmark(compiler_results(suite, "pluto"))
            cells.append(percent_faster(ours, pluto))
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig8",
        title="Figure 8: % faster codes vs PLuTo",
        columns=("llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows),
        notes=("expected shape: PLuTo ahead on PolyBench (<40% faster), "
               "LOOPRAG ahead (~60%) on TSVC/LORE",))


# ----------------------------------------------------------------------
# Figure 9 / Table 4 / Table 5 / Figure 10 — synthesis ablation
# ----------------------------------------------------------------------
#: corpus studies use a larger corpus than the pipeline's retrieval set so
#: the rare transformation triggers (distribution) are represented — the
#: paper's corpus is 135,364 examples
CORPUS_STUDY_SIZE = 1000


def fig9_property_distribution(corpus_size: int = CORPUS_STUDY_SIZE
                               ) -> ExperimentResult:
    """Cluster distributions of loop properties for both generators."""
    rows = []
    for generator in ("looprag", "colagen"):
        dataset = cached_dataset(corpus_size, DEFAULT_SEED, generator)
        dist = cluster_distribution([e.example for e in dataset])
        for prop in FIG9_PROPERTIES:
            buckets = dist[prop]
            rows.append((generator, prop, buckets["A"], buckets["B"],
                         buckets["C"], buckets["D"]))
    return ExperimentResult(
        experiment="fig9",
        title="Figure 9: loop property distribution (LOOPRAG vs COLA-Gen)",
        columns=("generator", "property", "A", "B", "C", "D"),
        rows=tuple(rows),
        notes=("expected shape: COLA-Gen concentrated in 1-2 clusters per "
               "property; LOOPRAG spread over all four",))


def tab4_transform_kinds(corpus_size: int = CORPUS_STUDY_SIZE
                         ) -> ExperimentResult:
    """Transformation kinds triggered in each generator's corpus."""
    rows = []
    for generator in ("looprag", "colagen"):
        dataset = cached_dataset(corpus_size, DEFAULT_SEED, generator)
        kinds = transformation_kinds(dataset)
        rows.append(tuple([generator] + [
            "yes" if kinds.get(kind, 0) > 0 else "no"
            for kind in LOOP_KINDS]))
    return ExperimentResult(
        experiment="tab4",
        title="Table 4: triggered loop transformations per generator",
        columns=("generator",) + LOOP_KINDS,
        rows=tuple(rows),
        notes=("expected shape: LOOPRAG triggers all six; COLA-Gen only "
               "tiling/interchange/skewing",))


def tab5_colagen() -> ExperimentResult:
    """Full pipeline backed by COLA-Gen demonstrations vs LOOPRAG's."""
    run_plans(_looprag_gcc_plans(generators=("looprag", "colagen")))
    rows = []
    for generator in ("looprag", "colagen"):
        for persona in PERSONAS:
            cells: List = [generator, persona.model_id]
            for suite in SUITE_NAMES:
                cells += list(_row_stats(
                    looprag_results(suite, persona, "gcc",
                                generator=generator)))
            rows.append(tuple(cells))
    return ExperimentResult(
        experiment="tab5",
        title="Table 5: LOOPRAG vs COLA-Gen demonstration corpora",
        columns=("corpus", "llm", "poly_pass", "poly_speedup",
                 "tsvc_pass", "tsvc_speedup", "lore_pass", "lore_speedup"),
        rows=tuple(rows),
        notes=("expected shape: LOOPRAG corpus ahead, most clearly on "
               "PolyBench",))


def fig10_faster_vs_colagen() -> ExperimentResult:
    run_plans(_looprag_gcc_plans(generators=("looprag", "colagen")))
    rows = []
    for persona in PERSONAS:
        cells: List = [persona.model_id]
        for suite in SUITE_NAMES:
            ours = speedups_by_benchmark(
                looprag_results(suite, persona, "gcc"))
            cola = speedups_by_benchmark(
                looprag_results(suite, persona, "gcc", generator="colagen"))
            cells.append(percent_faster(ours, cola))
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig10",
        title="Figure 10: % faster codes vs COLA-Gen corpus",
        columns=("llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows))


# ----------------------------------------------------------------------
# Table 6 / Figure 11 — retrieval ablation
# ----------------------------------------------------------------------
_RETRIEVAL_METHODS = (("Loop-aware", "loop-aware"), ("BM25", "bm25"),
                      ("Weighted Score", "weighted"))


def tab6_retrieval() -> ExperimentResult:
    run_plans(_looprag_gcc_plans(
        methods=[m for _, m in _RETRIEVAL_METHODS]))
    rows = []
    for label, method in _RETRIEVAL_METHODS:
        for persona in PERSONAS:
            cells: List = [label, persona.model_id]
            for suite in SUITE_NAMES:
                cells += list(_row_stats(
                    looprag_results(suite, persona, "gcc",
                                retrieval_method=method)))
            rows.append(tuple(cells))
    return ExperimentResult(
        experiment="tab6",
        title="Table 6: retrieval ablation (LAScore vs BM25 vs weighted)",
        columns=("method", "llm", "poly_pass", "poly_speedup",
                 "tsvc_pass", "tsvc_speedup", "lore_pass", "lore_speedup"),
        rows=tuple(rows),
        notes=("expected shape: similar pass@k across methods; loop-aware "
               "ahead on balance",))


def fig11_faster_retrieval() -> ExperimentResult:
    run_plans(_looprag_gcc_plans(
        methods=[m for _, m in _RETRIEVAL_METHODS]))
    rows = []
    for label, method in _RETRIEVAL_METHODS[1:]:
        for persona in PERSONAS:
            cells: List = [f"loop-aware vs {label}", persona.model_id]
            for suite in SUITE_NAMES:
                ours = speedups_by_benchmark(
                    looprag_results(suite, persona, "gcc"))
                other = speedups_by_benchmark(
                    looprag_results(suite, persona, "gcc",
                                retrieval_method=method))
                cells.append(percent_faster(ours, other))
            rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig11",
        title="Figure 11: % faster codes, loop-aware vs other retrieval",
        columns=("comparison", "llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows))


# ----------------------------------------------------------------------
# Table 7 / Figure 12 — feedback ablation
# ----------------------------------------------------------------------
def tab7_feedback() -> ExperimentResult:
    """Pass@k improvements per feedback round (stage snapshots)."""
    run_plans(_looprag_gcc_plans())
    rows = []
    for persona in PERSONAS:
        first = ["First round of compilation", persona.model_id]
        second = ["Second round of compilation", persona.model_id]
        testrank = ["Testing results + rankings", persona.model_id]
        for suite in SUITE_NAMES:
            results = looprag_results(suite, persona, "gcc")
            s1 = pass_at_k([r.stage("step1") for r in results])
            s2 = pass_at_k([r.stage("step2") for r in results])
            s3 = pass_at_k([r.stage("step3") for r in results])
            s4p = pass_at_k([r.stage("step4_prefix") for r in results])
            s4 = pass_at_k([r.stage("step4") for r in results])
            first.append(s2 - s1)
            second.append(s4 - s4p)
            testrank.append(s3 - s2)
        rows += [tuple(first), tuple(second), tuple(testrank)]
    return ExperimentResult(
        experiment="tab7",
        title="Table 7: pass@k improvement per feedback round",
        columns=("feedback", "llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows),
        notes=("expected shape: first compilation round largest; second "
               "round and test/rank feedback moderate",))


def fig12_feedback_faster() -> ExperimentResult:
    """% of benchmarks whose final code beats the step-2 best (the gain
    attributable to testing-results + ranking feedback)."""
    run_plans(_looprag_gcc_plans())
    rows = []
    for persona in PERSONAS:
        cells: List = [persona.model_id]
        for suite in SUITE_NAMES:
            results = looprag_results(suite, persona, "gcc")
            improved = [r.speedup_at("step4") > r.speedup_at("step2")
                        for r in results]
            cells.append(100.0 * sum(improved) / max(1, len(improved)))
        rows.append(tuple(cells))
    return ExperimentResult(
        experiment="fig12",
        title="Figure 12: % faster codes from test+rank feedback",
        columns=("llm", "polybench", "tsvc", "lore"),
        rows=tuple(rows),
        notes=("expected shape: ~40-45% of codes improve",))


# ----------------------------------------------------------------------
# Figure 14 — per-benchmark speedups (Appendix F)
# ----------------------------------------------------------------------
def fig14_per_benchmark() -> ExperimentResult:
    run_plans(_looprag_gcc_plans(suites=("polybench", "tsvc"))
              + _base_llm_gcc_plans(suites=("polybench", "tsvc")))
    rows = []
    poly_lr = {p.name: speedups_by_benchmark(
        looprag_results("polybench", p, "gcc")) for p in PERSONAS}
    poly_bl = {p.name: speedups_by_benchmark(
        base_llm_results("polybench", p, "gcc")) for p in PERSONAS}
    tsvc_lr = {p.name: speedups_by_benchmark(
        looprag_results("tsvc", p, "gcc")) for p in PERSONAS}
    tsvc_bl = {p.name: speedups_by_benchmark(
        base_llm_results("tsvc", p, "gcc")) for p in PERSONAS}
    for name in FIG14_KERNELS:
        rows.append(("polybench", name,
                     poly_lr["deepseek"].get(name),
                     poly_lr["gpt4"].get(name),
                     poly_bl["deepseek"].get(name),
                     poly_bl["gpt4"].get(name)))
    for name in ("s233", "s319", "s000", "s1119", "s231", "vdotr"):
        rows.append(("tsvc", name,
                     tsvc_lr["deepseek"].get(name),
                     tsvc_lr["gpt4"].get(name),
                     tsvc_bl["deepseek"].get(name),
                     tsvc_bl["gpt4"].get(name)))
    return ExperimentResult(
        experiment="fig14",
        title="Figure 14: per-benchmark speedups, LOOPRAG vs base LLMs",
        columns=("suite", "benchmark", "looprag_deepseek", "looprag_gpt4",
                 "base_deepseek", "base_gpt4"),
        rows=tuple(rows),
        notes=("expected shape: LOOPRAG far ahead on gemm/syrk and the "
               "s233/s319 interchange outliers; stencils (jacobi-2d, "
               "fdtd-2d, heat-3d) remain weak (Appendix H)",))


ALL_EXPERIMENTS = {
    "fig1": fig1_motivation,
    "tab1": tab1_compilers,
    "fig6": fig6_faster_vs_compilers,
    "tab2": tab2_llms,
    "fig7": fig7_faster_vs_llms,
    "tab3": tab3_pluto,
    "fig8": fig8_faster_vs_pluto,
    "fig9": fig9_property_distribution,
    "tab4": tab4_transform_kinds,
    "tab5": tab5_colagen,
    "fig10": fig10_faster_vs_colagen,
    "tab6": tab6_retrieval,
    "fig11": fig11_faster_retrieval,
    "tab7": tab7_feedback,
    "fig12": fig12_feedback_faster,
    "fig14": fig14_per_benchmark,
}
