"""Evaluation metrics (§6.1).

* ``pass@k`` — fraction of benchmarks where at least one of the top-K
  candidates passes all correctness tests;
* average speedup — arithmetic mean of per-benchmark speedups, failures
  counted as 0, outliers above 600× excluded (the paper's rule to bound
  standard-deviation error);
* percentage of faster codes — fraction of benchmarks where system A's
  speedup strictly exceeds system B's (the robustness companion to the
  unstable mean).
"""

from __future__ import annotations

from typing import Mapping, Sequence

OUTLIER_CAP = 600.0


def pass_at_k(passed: Sequence[bool]) -> float:
    """Percentage of benchmarks with at least one passing candidate."""
    if not passed:
        return 0.0
    return 100.0 * sum(bool(p) for p in passed) / len(passed)


def average_speedup(speedups: Sequence[float],
                    cap: float = OUTLIER_CAP) -> float:
    """Mean speedup with failures as 0 and >cap outliers excluded."""
    kept = [s for s in speedups if s <= cap]
    if not kept:
        return 0.0
    return sum(kept) / len(kept)


def percent_faster(a: Mapping[str, float], b: Mapping[str, float]) -> float:
    """% of common benchmarks where A is strictly faster than B."""
    common = sorted(set(a) & set(b))
    if not common:
        return 0.0
    wins = sum(1 for name in common if a[name] > b[name])
    return 100.0 * wins / len(common)


def speedup_ratio(a: float, b: float) -> float:
    """Ratio of average speedups (how Table 1's prose computes
    "average speedups of X over Y")."""
    if b <= 0:
        return float("inf") if a > 0 else 0.0
    return a / b
