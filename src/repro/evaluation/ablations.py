"""Ablations over the design choices DESIGN.md calls out.

These are not paper artifacts; they probe the knobs the paper fixes
(tile size 32, K = 7 candidates, 135k-example corpus, the base-LLM
generation) and check that the fixed values sit in sensible regimes.
"""

from __future__ import annotations

from typing import List

from ..api.session import OptimizationRequest, OptimizerSession
from ..compilers.base import BASE_COMPILERS
from ..compilers.pluto import Pluto
from ..llm.personas import DEEPSEEK_V25, DEEPSEEK_V3, GPT_4O
from ..machine.analytical import estimate_cached
from ..machine.model import DEFAULT_MACHINE
from .experiments import ExperimentResult, looprag_results
from .harness import (evaluate_suite, looprag_plan, run_plans,
                      shared_retriever, suites)
from .metrics import average_speedup, pass_at_k


def ablation_tile_size(sizes=(8, 16, 32, 64, 128)) -> ExperimentResult:
    """PLuTo's PolyBench speedup as a function of tile size.

    The paper (and PLuTo's default) uses 32; the sweep should show a
    plateau around 16-64 with degradation at the extremes (too small:
    per-tile overhead; too large: tiles exceed the cache share).
    """
    suite = suites()["polybench"]
    base = BASE_COMPILERS["gcc"]
    rows: List = []
    for size in sizes:
        pluto = Pluto(tile_size=size)
        speedups = []
        for bench in suite:
            baseline = estimate_cached(base.finalize(bench.program),
                                       bench.perf, DEFAULT_MACHINE).seconds
            result = pluto.optimize(bench.program, bench.perf)
            seconds = estimate_cached(base.finalize(result.program),
                                      bench.perf, DEFAULT_MACHINE).seconds
            speedups.append(baseline / seconds if seconds > 0 else 0.0)
        rows.append((size, average_speedup(speedups)))
    return ExperimentResult(
        experiment="abl-tile",
        title="Ablation: PLuTo tile size on PolyBench",
        columns=("tile_size", "avg_speedup"),
        rows=tuple(rows),
        notes=("design choice: 32 (the paper's and PLuTo's default)",))


def ablation_corpus_size(sizes=(30, 100, 300)) -> ExperimentResult:
    """LOOPRAG quality as a function of demonstration-corpus size."""
    run_plans([looprag_plan("polybench", DEEPSEEK_V3, dataset_size=size)
               for size in sizes])
    rows: List = []
    for size in sizes:
        results = looprag_results("polybench", DEEPSEEK_V3,
                              dataset_size=size)
        rows.append((size, pass_at_k([r.passed for r in results]),
                     average_speedup([r.speedup for r in results])))
    return ExperimentResult(
        experiment="abl-corpus",
        title="Ablation: demonstration corpus size (PolyBench)",
        columns=("corpus_size", "pass_at_k", "avg_speedup"),
        rows=tuple(rows),
        notes=("the paper synthesizes 135,364 examples; retrieval quality "
               "saturates far earlier at our target count",))


def ablation_candidates(ks=(1, 3, 7)) -> ExperimentResult:
    """Pass@k / speedup as a function of the candidate count K (§5: 7)."""
    rows: List = []
    retriever = shared_retriever()
    for k in ks:
        session = OptimizerSession(retriever=retriever, seed=0, k=k)
        results = evaluate_suite(
            lambda bench: session.optimize(OptimizationRequest.make(
                bench.program, bench.perf, bench.test,
                persona=DEEPSEEK_V3)),
            "polybench", f"looprag-deepseek-k{k}")
        rows.append((k, pass_at_k([r.passed for r in results]),
                     average_speedup([r.speedup for r in results])))
    return ExperimentResult(
        experiment="abl-k",
        title="Ablation: number of generated candidates K (PolyBench)",
        columns=("k", "pass_at_k", "avg_speedup"),
        rows=tuple(rows),
        notes=("the paper sets K = 7",))


def ablation_personas() -> ExperimentResult:
    """LLM generation ablation (§6.2.2): deepseek-v2.5 trails GPT-4o,
    which trails deepseek-v3 — the paper's release-time observation."""
    run_plans([looprag_plan("polybench", persona)
               for persona in (DEEPSEEK_V3, GPT_4O, DEEPSEEK_V25)])
    rows: List = []
    for persona in (DEEPSEEK_V3, GPT_4O, DEEPSEEK_V25):
        results = looprag_results("polybench", persona, "gcc")
        rows.append((persona.model_id,
                     pass_at_k([r.passed for r in results]),
                     average_speedup([r.speedup for r in results])))
    return ExperimentResult(
        experiment="abl-personas",
        title="Ablation: base-LLM generation (PolyBench)",
        columns=("model", "pass_at_k", "avg_speedup"),
        rows=tuple(rows),
        notes=("§6.2.2: deepseek-v2.5 delivers lower speedups than GPT-4 "
               "on PolyBench; v3 leads",))


ABLATIONS = {
    "abl-tile": ablation_tile_size,
    "abl-corpus": ablation_corpus_size,
    "abl-k": ablation_candidates,
    "abl-personas": ablation_personas,
}
