"""Experiment harness: run systems over suites, with session caching.

Most tables and figures reuse the same underlying runs (Table 1 and
Figure 6 share every LOOPRAG/compiler execution; Table 2 and Figure 7
share the base-LLM runs...), so the harness memoizes per
(suite, system-signature, seed).  Set ``REPRO_SUITE_LIMIT=<n>`` to
subsample suites for quick iteration; benches run the full suites.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..compilers import (BASE_COMPILERS, Graphite, IcxOptimizer, Optimizer,
                         Perspective, Polly, Pluto)
from ..compilers.base import BaseCompiler
from ..machine.analytical import estimate_cached
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..llm.personas import DEEPSEEK_V3, GPT_4O, Persona
from ..pipeline.generation import FeedbackPipeline, PipelineResult
from ..pipeline.looprag import (BASELINE_TIME_LIMIT, BaseLLMOptimizer,
                                LOOPRAG_TIME_LIMIT, LoopRAG)
from ..retrieval.retriever import Retriever
from ..suites import Suite, lore, polybench, tsvc
from ..synthesis.dataset import cached_dataset

DEFAULT_DATASET_SIZE = 400
DEFAULT_SEED = 0

#: which base compiler each optimizing baseline rides on (§6.1)
OPTIMIZER_BASE = {"graphite": "gcc", "polly": "clang",
                  "perspective": "clang", "icx": "icx", "pluto": "gcc"}


@dataclass(frozen=True)
class BenchResult:
    """One benchmark under one system."""

    suite: str
    benchmark: str
    system: str
    passed: bool
    speedup: float
    stage_pass: Tuple[Tuple[str, bool], ...] = ()
    stage_speedup: Tuple[Tuple[str, float], ...] = ()
    failure: Optional[str] = None

    def stage(self, name: str) -> bool:
        return dict(self.stage_pass).get(name, self.passed)

    def speedup_at(self, name: str) -> float:
        return dict(self.stage_speedup).get(name, self.speedup)


def _limited(suite: Suite) -> Suite:
    limit = os.environ.get("REPRO_SUITE_LIMIT")
    if not limit:
        return suite
    return Suite(suite.name, suite.benchmarks[:int(limit)])


def suites() -> Dict[str, Suite]:
    return {"polybench": _limited(polybench()),
            "tsvc": _limited(tsvc()),
            "lore": _limited(lore())}


_RUN_CACHE: Dict[Tuple, List[BenchResult]] = {}
_RETRIEVER_CACHE: Dict[Tuple, Retriever] = {}


def shared_retriever(size: int = DEFAULT_DATASET_SIZE,
                     seed: int = DEFAULT_SEED,
                     generator: str = "looprag") -> Retriever:
    key = (size, seed, generator)
    if key not in _RETRIEVER_CACHE:
        _RETRIEVER_CACHE[key] = Retriever(
            cached_dataset(size, seed, generator))
    return _RETRIEVER_CACHE[key]


# ----------------------------------------------------------------------
# LOOPRAG / base-LLM runs
# ----------------------------------------------------------------------
def run_looprag(suite_name: str, persona: Persona, base: str = "gcc",
                retrieval_method: str = "loop-aware",
                generator: str = "looprag",
                dataset_size: int = DEFAULT_DATASET_SIZE,
                seed: int = DEFAULT_SEED) -> List[BenchResult]:
    """Run the full LOOPRAG pipeline over one suite."""
    key = ("looprag", suite_name, persona.name, base, retrieval_method,
           generator, dataset_size, seed,
           os.environ.get("REPRO_SUITE_LIMIT"))
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    suite = suites()[suite_name]
    retriever = shared_retriever(dataset_size, seed, generator)
    system = LoopRAG(dataset=retriever.dataset, persona=persona,
                     base_compiler=BASE_COMPILERS[base],
                     retrieval_method=retrieval_method,
                     seed=seed, retriever=retriever)
    results = []
    for bench in suite:
        outcome = system.optimize(bench.program, bench.perf, bench.test)
        results.append(BenchResult(
            suite=suite_name, benchmark=bench.name,
            system=f"looprag-{persona.name}-{base}",
            passed=outcome.passed, speedup=outcome.speedup,
            stage_pass=outcome.result.stage_pass,
            stage_speedup=outcome.result.stage_speedup))
    _RUN_CACHE[key] = results
    return results


def run_base_llm(suite_name: str, persona: Persona, base: str = "gcc",
                 seed: int = DEFAULT_SEED) -> List[BenchResult]:
    """Run the bare-LLM baseline (instruction prompting) over one suite."""
    key = ("basellm", suite_name, persona.name, base, seed,
           os.environ.get("REPRO_SUITE_LIMIT"))
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    suite = suites()[suite_name]
    system = BaseLLMOptimizer(persona,
                              base_compiler=BASE_COMPILERS[base],
                              seed=seed)
    results = []
    for bench in suite:
        outcome = system.optimize(bench.program, bench.perf, bench.test)
        results.append(BenchResult(
            suite=suite_name, benchmark=bench.name,
            system=f"base-{persona.name}-{base}",
            passed=outcome.passed, speedup=outcome.speedup,
            stage_pass=outcome.result.stage_pass,
            stage_speedup=outcome.result.stage_speedup))
    _RUN_CACHE[key] = results
    return results


# ----------------------------------------------------------------------
# compiler baselines
# ----------------------------------------------------------------------
def _make_optimizer(name: str) -> Optimizer:
    return {"graphite": Graphite, "polly": Polly,
            "perspective": Perspective, "icx": IcxOptimizer,
            "pluto": Pluto}[name]()


def run_compiler(suite_name: str, optimizer_name: str,
                 time_limit: float = BASELINE_TIME_LIMIT
                 ) -> List[BenchResult]:
    """Run one optimizing compiler over one suite."""
    key = ("compiler", suite_name, optimizer_name, time_limit,
           os.environ.get("REPRO_SUITE_LIMIT"))
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]
    suite = suites()[suite_name]
    optimizer = _make_optimizer(optimizer_name)
    base = BASE_COMPILERS[OPTIMIZER_BASE[optimizer_name]]
    machine: MachineModel = getattr(optimizer, "machine_override",
                                    DEFAULT_MACHINE)
    results = []
    for bench in suite:
        baseline = estimate_cached(base.finalize(bench.program),
                                   bench.perf, DEFAULT_MACHINE).seconds
        res = optimizer.optimize(bench.program, bench.perf)
        if not res.ok:
            results.append(BenchResult(
                suite=suite_name, benchmark=bench.name,
                system=optimizer_name, passed=False, speedup=0.0,
                failure=res.failure))
            continue
        final = base.finalize(res.program)
        seconds = estimate_cached(final, bench.perf, machine).seconds
        if seconds > time_limit:
            results.append(BenchResult(
                suite=suite_name, benchmark=bench.name,
                system=optimizer_name, passed=False, speedup=0.0,
                failure=f"execution timeout ({seconds:.0f}s > "
                        f"{time_limit:.0f}s)"))
            continue
        results.append(BenchResult(
            suite=suite_name, benchmark=bench.name,
            system=optimizer_name, passed=True,
            speedup=baseline / seconds if seconds > 0 else 0.0))
    _RUN_CACHE[key] = results
    return results


# ----------------------------------------------------------------------
# convenience aggregations
# ----------------------------------------------------------------------
def speedups_by_benchmark(results: Sequence[BenchResult]
                          ) -> Dict[str, float]:
    return {r.benchmark: r.speedup for r in results}


def passed_list(results: Sequence[BenchResult]) -> List[bool]:
    return [r.passed for r in results]


def speedup_list(results: Sequence[BenchResult]) -> List[float]:
    return [r.speedup for r in results]
