"""Experiment harness: run systems over suites, cached and parallel.

Most tables and figures reuse the same underlying runs (Table 1 and
Figure 6 share every LOOPRAG/compiler execution; Table 2 and Figure 7
share the base-LLM runs...), so the harness memoizes per plan at two
levels:

* an in-process ``_RUN_CACHE`` (same tuples as before), and
* the persistent, content-keyed :mod:`repro.evaluation.store`
  (``.repro_cache/`` by default), which survives across processes and
  turns warm benchmark reruns into near-no-ops.

Execution is organized around :class:`RunPlan` — one (system, suite)
description — and the generic driver :func:`run_plans`, which consults
store → pool → store.  Each plan's benchmarks run through a
:class:`repro.api.OptimizerSession` (one per plan, request-level store
off — the plan-level store is authoritative here).  ``run_looprag`` /
``run_base_llm`` / ``run_compiler`` are deprecated shims; use
:func:`results_for` with a plan, or the session API directly.  Cache
misses fan out per-benchmark across a :mod:`repro.evaluation.parallel`
pool; each pipeline run seeds its RNG from ``(seed, program
fingerprint)``, so parallel results are bit-identical to serial ones.

Environment switches: ``REPRO_SUITE_LIMIT=<n>`` subsamples suites for
quick iteration (benches run the full suites); ``REPRO_JOBS=<n>`` sets
the default pool width; ``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``
control the persistent store.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Union)

from ..api.session import (DEFAULT_DATASET_SIZE, DEFAULT_SEED,
                           OptimizationRequest, OptimizerSession)
from ..compilers import OPTIMIZER_BASE
from ..llm.personas import PERSONAS, Persona
from ..pipeline.generation import (BASELINE_TIME_LIMIT,
                                   LOOPRAG_TIME_LIMIT)
from ..retrieval.retriever import Retriever
from ..suites import Suite, lore, polybench, tsvc
from ..synthesis.dataset import cached_dataset, dataset_signature
from .parallel import default_jobs, make_executor
from .store import active_store, code_signature


@dataclass(frozen=True)
class BenchResult:
    """One benchmark under one system."""

    suite: str
    benchmark: str
    system: str
    passed: bool
    speedup: float
    stage_pass: Tuple[Tuple[str, bool], ...] = ()
    stage_speedup: Tuple[Tuple[str, float], ...] = ()
    failure: Optional[str] = None

    def stage(self, name: str) -> bool:
        return dict(self.stage_pass).get(name, self.passed)

    def speedup_at(self, name: str) -> float:
        return dict(self.stage_speedup).get(name, self.speedup)


def result_to_dict(result: BenchResult) -> dict:
    """Serialize for the persistent store."""
    return {"suite": result.suite, "benchmark": result.benchmark,
            "system": result.system, "passed": result.passed,
            "speedup": result.speedup,
            "stage_pass": [list(p) for p in result.stage_pass],
            "stage_speedup": [list(p) for p in result.stage_speedup],
            "failure": result.failure}


def result_from_dict(payload: dict) -> BenchResult:
    return BenchResult(
        suite=payload["suite"], benchmark=payload["benchmark"],
        system=payload["system"], passed=bool(payload["passed"]),
        speedup=float(payload["speedup"]),
        stage_pass=tuple((str(n), bool(v))
                         for n, v in payload["stage_pass"]),
        stage_speedup=tuple((str(n), float(v))
                            for n, v in payload["stage_speedup"]),
        failure=payload["failure"])


def _limited(suite: Suite) -> Suite:
    limit = os.environ.get("REPRO_SUITE_LIMIT")
    if not limit:
        return suite
    return Suite(suite.name, suite.benchmarks[:int(limit)])


def suites() -> Dict[str, Suite]:
    return {"polybench": _limited(polybench()),
            "tsvc": _limited(tsvc()),
            "lore": _limited(lore())}


_RUN_CACHE: Dict[Tuple, List[BenchResult]] = {}
_RETRIEVER_CACHE: Dict[Tuple, Retriever] = {}
_RETRIEVER_LOCK = threading.Lock()
_SUITE_CACHE: Dict[Tuple, Suite] = {}


def shared_retriever(size: int = DEFAULT_DATASET_SIZE,
                     seed: int = DEFAULT_SEED,
                     generator: str = "looprag",
                     method: str = "loop-aware") -> Retriever:
    """Memoized retriever per (dataset_size, seed, generator, method).

    The index itself is method-agnostic (``method`` is a per-``rank``
    argument), so method keys over the same corpus alias one instance
    instead of re-indexing; the lock keeps concurrent thread-pool
    workers from constructing the same retriever twice.
    """
    key = (size, seed, generator, method)
    got = _RETRIEVER_CACHE.get(key)
    if got is not None:
        return got
    with _RETRIEVER_LOCK:
        got = _RETRIEVER_CACHE.get(key)
        if got is None:
            got = next((r for k, r in _RETRIEVER_CACHE.items()
                        if k[:3] == key[:3]), None)
            if got is None:
                got = Retriever(cached_dataset(size, seed, generator))
            _RETRIEVER_CACHE[key] = got
    return got


def _plan_suite(name: str) -> Suite:
    key = (name, os.environ.get("REPRO_SUITE_LIMIT"))
    if key not in _SUITE_CACHE:
        _SUITE_CACHE[key] = suites()[name]
    return _SUITE_CACHE[key]


# ----------------------------------------------------------------------
# plans: one (system, suite) work description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunPlan:
    """Everything needed to run one system over one suite.

    Plans are plain hashable value objects (persona/optimizer by name,
    not by object) so they pickle cleanly into process pools and key
    both cache levels.
    """

    kind: str                       # "looprag" | "basellm" | "compiler"
    suite: str
    persona: Optional[str] = None   # llm kinds
    base: str = "gcc"
    retrieval_method: str = "loop-aware"
    generator: str = "looprag"
    dataset_size: int = DEFAULT_DATASET_SIZE
    seed: int = DEFAULT_SEED
    optimizer: Optional[str] = None  # compiler kind
    #: None -> the paper's default for the kind (120 s for LOOPRAG
    #: candidates, 600 s for baselines, §6.1)
    time_limit: Optional[float] = None

    def effective_time_limit(self) -> float:
        if self.time_limit is not None:
            return self.time_limit
        return (LOOPRAG_TIME_LIMIT if self.kind == "looprag"
                else BASELINE_TIME_LIMIT)

    def key(self) -> Tuple:
        """Cache key: the run-determining fields plus the environment's
        suite subsampling and the dataset/code signatures."""
        if self.kind == "looprag":
            core: Tuple = ("looprag", self.suite, self.persona, self.base,
                           self.retrieval_method, self.generator,
                           self.dataset_size, self.seed,
                           self.effective_time_limit(),
                           dataset_signature(self.dataset_size, self.seed,
                                             self.generator))
        elif self.kind == "basellm":
            core = ("basellm", self.suite, self.persona, self.base,
                    self.seed, self.effective_time_limit())
        elif self.kind == "compiler":
            core = ("compiler", self.suite, self.optimizer,
                    self.effective_time_limit())
        else:
            raise ValueError(f"unknown plan kind {self.kind!r}")
        return core + (os.environ.get("REPRO_SUITE_LIMIT"),
                       code_signature())

    def label(self) -> str:
        """The ``system`` string stamped on every BenchResult."""
        if self.kind == "looprag":
            return f"looprag-{self.persona}-{self.base}"
        if self.kind == "basellm":
            return f"base-{self.persona}-{self.base}"
        return self.optimizer or "?"


def _persona_name(persona: Union[Persona, str]) -> str:
    name = persona.name if isinstance(persona, Persona) else persona
    if name not in PERSONAS:
        raise ValueError(f"unknown persona {name!r}; "
                         f"expected one of {tuple(PERSONAS)}")
    return name


def looprag_plan(suite_name: str, persona: Union[Persona, str],
                 base: str = "gcc", retrieval_method: str = "loop-aware",
                 generator: str = "looprag",
                 dataset_size: int = DEFAULT_DATASET_SIZE,
                 seed: int = DEFAULT_SEED) -> RunPlan:
    return RunPlan(kind="looprag", suite=suite_name,
                   persona=_persona_name(persona), base=base,
                   retrieval_method=retrieval_method, generator=generator,
                   dataset_size=dataset_size, seed=seed,
                   time_limit=LOOPRAG_TIME_LIMIT)


def base_llm_plan(suite_name: str, persona: Union[Persona, str],
                  base: str = "gcc", seed: int = DEFAULT_SEED) -> RunPlan:
    return RunPlan(kind="basellm", suite=suite_name,
                   persona=_persona_name(persona), base=base, seed=seed)


def compiler_plan(suite_name: str, optimizer_name: str,
                  time_limit: float = BASELINE_TIME_LIMIT) -> RunPlan:
    return RunPlan(kind="compiler", suite=suite_name,
                   optimizer=optimizer_name, time_limit=time_limit)


# ----------------------------------------------------------------------
# per-benchmark execution (plans -> session requests)
# ----------------------------------------------------------------------
def _plan_session(plan: RunPlan) -> OptimizerSession:
    """The session a plan's benchmarks run through.

    Plan-level caching lives in ``run_plans``'s store, so the session's
    own request-level store is disabled — every result is computed (or
    plan-cached) exactly once, never double-keyed.
    """
    if plan.kind == "looprag":
        return OptimizerSession(
            dataset_size=plan.dataset_size, seed=plan.seed,
            generator=plan.generator,
            retrieval_method=plan.retrieval_method,
            base_compiler=plan.base,
            retriever=shared_retriever(plan.dataset_size, plan.seed,
                                       plan.generator,
                                       plan.retrieval_method),
            use_store=False)
    if plan.kind in ("basellm", "compiler"):
        return OptimizerSession(seed=plan.seed,
                                base_compiler=plan.base,
                                use_store=False)
    raise ValueError(f"unknown plan kind {plan.kind!r}")


def _plan_request(plan: RunPlan, bench) -> OptimizationRequest:
    if plan.kind == "compiler":
        return OptimizationRequest.make(
            bench.program, bench.perf, system="compiler",
            optimizer=plan.optimizer,
            time_limit=plan.effective_time_limit())
    return OptimizationRequest.make(
        bench.program, bench.perf, bench.test,
        system=("looprag" if plan.kind == "looprag" else "basellm"),
        persona=plan.persona, time_limit=plan.effective_time_limit())


#: per-plan sessions are memoized so pool workers build each system
#: once, not once per benchmark
_RUNNER_CACHE: Dict[RunPlan, Callable] = {}


def _plan_runner(plan: RunPlan) -> Callable:
    """A ``bench -> BenchResult`` callable for one plan."""
    if plan in _RUNNER_CACHE:
        return _RUNNER_CACHE[plan]
    session = _plan_session(plan)

    def run(bench):
        result = session.optimize(_plan_request(plan, bench),
                                  use_store=False)
        return BenchResult(
            suite=plan.suite, benchmark=bench.name, system=plan.label(),
            passed=result.passed, speedup=result.speedup,
            stage_pass=result.stage_pass,
            stage_speedup=result.stage_speedup,
            failure=result.failure)
    _RUNNER_CACHE[plan] = run
    return run


def _execute_item(item: Tuple[RunPlan, str]) -> BenchResult:
    """Pool entry point: run one benchmark of one plan (picklable)."""
    plan, bench_name = item
    return _plan_runner(plan)(_plan_suite(plan.suite).get(bench_name))


def _execute_plan(plan: RunPlan) -> List[BenchResult]:
    run = _plan_runner(plan)
    return [run(bench) for bench in _plan_suite(plan.suite)]


def _warm_shared_state(plans: Sequence[RunPlan]) -> None:
    """Build every dataset/retriever/suite a plan set needs, once, in
    this process — pool workers then inherit them (fork) or share them
    (threads) instead of racing to rebuild."""
    for plan in plans:
        _plan_suite(plan.suite)
        if plan.kind == "looprag":
            shared_retriever(plan.dataset_size, plan.seed, plan.generator,
                             plan.retrieval_method)


# ----------------------------------------------------------------------
# the generic driver: store -> pool -> store
# ----------------------------------------------------------------------
def run_plans(plans: Sequence[RunPlan], jobs: Optional[int] = None,
              pool: str = "auto") -> List[List[BenchResult]]:
    """Run a batch of plans; returns results aligned with ``plans``.

    Each plan is resolved in-memory cache → persistent store → executed.
    Misses are fanned out per-benchmark across ``jobs`` workers
    (``REPRO_JOBS``, default serial); results are reassembled in suite
    order, so every path yields identical lists.
    """
    if jobs is None:
        jobs = default_jobs()
    store = active_store()
    pending = set()
    misses: List[Tuple[RunPlan, Tuple]] = []
    for plan in plans:
        key = plan.key()
        if key in _RUN_CACHE or key in pending:
            continue
        payload = store.get(key) if store is not None else None
        if payload is not None:
            try:
                _RUN_CACHE[key] = [result_from_dict(d) for d in payload]
                continue
            except (KeyError, TypeError, ValueError):
                pass  # stale/foreign payload: recompute
        misses.append((plan, key))
        pending.add(key)

    if misses:
        _warm_shared_state([plan for plan, _ in misses])

        def finish(key: Tuple, results: List[BenchResult]) -> None:
            # persist per plan, as soon as it completes, so a failure
            # later in the batch can't discard finished work
            _RUN_CACHE[key] = results
            if store is not None:
                store.put(key, [result_to_dict(r) for r in results])

        items = [(plan, name)
                 for plan, _ in misses
                 for name in _plan_suite(plan.suite).names()]
        if jobs > 1 and len(items) > 1:
            with make_executor(min(jobs, len(items)), pool) as executor:
                futures = [executor.submit(_execute_item, item)
                           for item in items]
                cursor = 0
                first_error: Optional[BaseException] = None
                for plan, key in misses:
                    count = len(_plan_suite(plan.suite))
                    plan_futures = futures[cursor:cursor + count]
                    cursor += count
                    try:
                        finish(key, [f.result() for f in plan_futures])
                    except BaseException as exc:
                        # keep gathering: the other plans' work is done
                        # or in flight, and persisting it bounds the
                        # loss on retry to the failing plan alone
                        if first_error is None:
                            first_error = exc
                if first_error is not None:
                    raise first_error
        else:
            for plan, key in misses:
                finish(key, _execute_plan(plan))
    return [_RUN_CACHE[plan.key()] for plan in plans]


def results_for(plan: RunPlan, jobs: Optional[int] = None
                ) -> List[BenchResult]:
    """Results of one plan (store-backed; the non-deprecated spelling)."""
    return run_plans([plan], jobs=jobs)[0]


_run_system = results_for  # old private alias


# ----------------------------------------------------------------------
# the three run_* entry points (deprecated shims over the session API)
# ----------------------------------------------------------------------
def _deprecated_runner(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; build a RunPlan and use run_plans / "
        f"OptimizerSession.run_plans (see docs/architecture.md, "
        f"'Service API')", DeprecationWarning, stacklevel=3)


def run_looprag(suite_name: str, persona: Persona, base: str = "gcc",
                retrieval_method: str = "loop-aware",
                generator: str = "looprag",
                dataset_size: int = DEFAULT_DATASET_SIZE,
                seed: int = DEFAULT_SEED) -> List[BenchResult]:
    """Run the full LOOPRAG pipeline over one suite (deprecated shim)."""
    _deprecated_runner("run_looprag")
    return results_for(looprag_plan(
        suite_name, persona, base, retrieval_method, generator,
        dataset_size, seed))


def run_base_llm(suite_name: str, persona: Persona, base: str = "gcc",
                 seed: int = DEFAULT_SEED) -> List[BenchResult]:
    """Run the bare-LLM baseline over one suite (deprecated shim)."""
    _deprecated_runner("run_base_llm")
    return results_for(base_llm_plan(suite_name, persona, base, seed))


def run_compiler(suite_name: str, optimizer_name: str,
                 time_limit: float = BASELINE_TIME_LIMIT
                 ) -> List[BenchResult]:
    """Run one optimizing compiler over one suite (deprecated shim)."""
    _deprecated_runner("run_compiler")
    return results_for(compiler_plan(suite_name, optimizer_name,
                                     time_limit))


def evaluate_suite(optimize: Callable, suite_name: str,
                   system_label: str) -> List[BenchResult]:
    """Run an ad-hoc per-benchmark callable over a suite.

    ``optimize`` may return an :class:`OptimizationResult` (session
    API) or a legacy ``OptimizeOutcome``.  Uncached — for one-off
    configurations (the ablations) that don't correspond to a stable
    :class:`RunPlan`.
    """
    results = []
    for bench in _plan_suite(suite_name):
        outcome = optimize(bench)
        stages = (outcome if hasattr(outcome, "stage_pass")
                  else outcome.result)
        results.append(BenchResult(
            suite=suite_name, benchmark=bench.name, system=system_label,
            passed=outcome.passed, speedup=outcome.speedup,
            stage_pass=stages.stage_pass,
            stage_speedup=stages.stage_speedup))
    return results


# ----------------------------------------------------------------------
# convenience aggregations
# ----------------------------------------------------------------------
def speedups_by_benchmark(results: Sequence[BenchResult]
                          ) -> Dict[str, float]:
    return {r.benchmark: r.speedup for r in results}


def passed_list(results: Sequence[BenchResult]) -> List[bool]:
    return [r.passed for r in results]


def speedup_list(results: Sequence[BenchResult]) -> List[float]:
    return [r.speedup for r in results]
