"""Evaluation: metrics, harness, experiments and reporting."""

from .experiments import ALL_EXPERIMENTS, ExperimentResult
from .harness import (BenchResult, run_base_llm, run_compiler, run_looprag,
                      shared_retriever, speedups_by_benchmark, suites)
from .metrics import (OUTLIER_CAP, average_speedup, pass_at_k,
                      percent_faster, speedup_ratio)
from .reporting import render_all, render_table

__all__ = [
    "ALL_EXPERIMENTS", "ExperimentResult",
    "BenchResult", "run_base_llm", "run_compiler", "run_looprag",
    "shared_retriever", "speedups_by_benchmark", "suites",
    "OUTLIER_CAP", "average_speedup", "pass_at_k", "percent_faster",
    "speedup_ratio",
    "render_all", "render_table",
]
