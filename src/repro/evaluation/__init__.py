"""Evaluation: metrics, harness, store, parallel runner and reporting."""

from .experiments import ALL_EXPERIMENTS, ExperimentResult
from .harness import (BenchResult, RunPlan, base_llm_plan, compiler_plan,
                      evaluate_suite, looprag_plan, results_for,
                      run_base_llm, run_compiler, run_looprag, run_plans,
                      shared_retriever, speedups_by_benchmark, suites)
from .metrics import (OUTLIER_CAP, average_speedup, pass_at_k,
                      percent_faster, speedup_ratio)
from .parallel import default_jobs, map_items, resolve_pool
from .reporting import (bench_report, render_all, render_bench,
                        render_json, render_perf, render_table)
from .store import ResultStore, active_store, cache_stats

__all__ = [
    "ALL_EXPERIMENTS", "ExperimentResult",
    "BenchResult", "RunPlan", "base_llm_plan", "compiler_plan",
    "evaluate_suite", "looprag_plan", "results_for", "run_base_llm",
    "run_compiler", "run_looprag", "run_plans", "shared_retriever",
    "speedups_by_benchmark", "suites",
    "OUTLIER_CAP", "average_speedup", "pass_at_k", "percent_faster",
    "speedup_ratio",
    "default_jobs", "map_items", "resolve_pool",
    "bench_report", "render_all", "render_bench", "render_json",
    "render_perf", "render_table",
    "ResultStore", "active_store", "cache_stats",
]
