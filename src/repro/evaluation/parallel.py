"""Parallel execution of evaluation work items.

A *work item* is one ``(plan, benchmark)`` pair (see ``harness.py``);
items are independent by construction — every pipeline run seeds its RNG
from ``(seed, program fingerprint)``, not from call order — so fanning
them across a pool preserves bit-identical results as long as the
results are reassembled in submission order, which :func:`map_items`
guarantees.

Pool selection
--------------
``process``  real parallelism (one interpreter per worker).  Workers are
             forked, so datasets/retrievers warmed in the parent before
             the pool is created are inherited copy-on-write instead of
             being rebuilt per worker.
``thread``   shares every in-process cache; bounded by the GIL but safe
             everywhere and free of pickling/fork constraints.
``auto``     ``process`` when the platform supports the ``fork`` start
             method (Linux/macOS CPython), else ``thread``.

``REPRO_JOBS`` sets the default worker count (1 = serial, the default).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Sequence, TypeVar

POOL_KINDS = ("auto", "thread", "process")

ENV_JOBS = "REPRO_JOBS"

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Worker count from ``REPRO_JOBS`` (defaults to 1 = serial)."""
    try:
        return max(1, int(os.environ.get(ENV_JOBS, "1")))
    except ValueError:
        return 1


def resolve_pool(pool: str = "auto") -> str:
    """Pick a concrete pool backend for ``auto``."""
    if pool not in POOL_KINDS:
        raise ValueError(f"unknown pool kind {pool!r}; "
                         f"expected one of {POOL_KINDS}")
    if pool != "auto":
        return pool
    if "fork" in multiprocessing.get_all_start_methods():
        return "process"
    return "thread"


def make_executor(jobs: int, pool: str = "auto"):
    """A ready-to-use executor for callers that need future-level
    control (e.g. persisting each plan's results as soon as its futures
    complete rather than after the whole batch)."""
    kind = resolve_pool(pool)
    if kind == "process":
        context = multiprocessing.get_context("fork")
        return ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    return ThreadPoolExecutor(max_workers=jobs)


def map_items(fn: Callable[[T], R], items: Sequence[T],
              jobs: int = None, pool: str = "auto") -> List[R]:
    """Apply ``fn`` to every item, ``jobs``-wide, preserving order.

    Serial (and therefore deterministic reference) when ``jobs <= 1`` or
    there is at most one item.  With a process pool ``fn`` and the items
    must be picklable top-level objects.
    """
    if jobs is None:
        jobs = default_jobs()
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with make_executor(min(jobs, len(items)), pool) as executor:
        return list(executor.map(fn, items))
