"""Data-dependence analysis.

Dependences are computed *dynamically and exactly* on a small concrete
parameter binding: the program is executed symbolically in its original
schedule order and every producer/consumer pair on every array element is
recorded (RAW, WAW, WAR — §2.1).  Each dependence class keeps a bounded set
of concrete *witness* instance pairs; schedule legality (for transforms,
parallel and vector pragmas) is then checked by re-evaluating candidate
schedules on the witnesses.

This concretization is this repo's substitute for ISL-based exact
dependence analysis: it is exact for the sampled sizes and, because every
dependence in an affine SCoP with constant distances shows up at small
sizes, it is reliable on the benchmark/synthesized programs used here
(DESIGN.md discusses the substitution).

Two engines share these semantics (selected by ``REPRO_ANALYSIS``):

* ``vectorized`` (default) — :mod:`repro.analysis.vectorized` derives the
  same witness pairs, distance vectors and legality verdicts from NumPy
  segment scans over the batched instance enumeration, bit-identical to
  the scalar walk below (including the bounded-witness rotation and error
  messages);
* ``reference`` — the original per-instance walk in this module, kept as
  the executable specification the equivalence suite pins the vectorized
  engine against.
"""

from __future__ import annotations

import os
import threading
import zlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..ir.program import Program
from ..ir.schedule import Schedule

KIND_RAW = "RAW"
KIND_WAW = "WAW"
KIND_WAR = "WAR"

#: Instance = (statement index, environment as a sorted item tuple).
#: Witness environments contain the iterators *and* the concrete
#: parameter binding they were observed at — legality checking
#: (`_instance_key`) re-binds each witness at its own size, which is what
#: lets classes concretized at different ``_PARAM_SIZES`` merge safely.
Instance = Tuple[int, Tuple[Tuple[str, int], ...]]

_MAX_WITNESSES = 24
#: default concrete parameter value for concretization: big enough that
#: distance-2 dependences remain visible behind margin-2 loop bounds,
#: that size-2 legality tiles actually cross boundaries, and that
#: non-uniform dependence classes (distances that grow with the bounds,
#: e.g. through coupled ``i+j`` subscripts) are represented — at 8 one
#: synthesized program's interchange-breaking dependence only appears
#: from 9 upward, so legality at 8 blessed an output-changing swap
_DEFAULT_PARAM = 10
#: default concretization sizes.  Dependences are collected at *both*
#: sizes and merged: a non-uniform dependence class whose distance grows
#: with the bounds can first appear at any size, so a single binding can
#: never close the class entirely — checking two (coprime-ish) sizes
#: catches everything whose onset lies at or below the larger one, and
#: witness environments carry their own parameter binding so legality
#: evaluates each witness at the size it was observed at
_PARAM_SIZES = (_DEFAULT_PARAM, 13)
#: third, scaled binding used only for programs whose written arrays
#: have *non-uniform* subscripts (detected structurally by
#: :func:`nonuniform_arrays`): there the 10/13 onsets are exactly the
#: unreliable case, so the witness binding is scaled to 2x the largest
#: default size, pushing the covered onset out to 26.  Uniform programs
#: never pay for (or observe) the extra pass.
_NONUNIFORM_PARAM = 2 * max(_PARAM_SIZES)
_ANALYSIS_BUDGET = 200_000


# ----------------------------------------------------------------------
# Engine selection
# ----------------------------------------------------------------------
ANALYSIS_ENGINES = ("vectorized", "reference")


def analysis_engine_name() -> str:
    """The active analysis engine (``REPRO_ANALYSIS``, default vectorized)."""
    engine = os.environ.get("REPRO_ANALYSIS", "vectorized")
    if engine not in ANALYSIS_ENGINES:
        raise ValueError(
            f"unknown REPRO_ANALYSIS {engine!r}; "
            f"choose 'vectorized' or 'reference'")
    return engine


@contextmanager
def analysis_override(engine: Optional[str]):
    """Temporarily select an analysis engine (``None`` = leave as-is).

    The single save/restore point for ``REPRO_ANALYSIS`` — ``repro perf
    --target analysis`` and the analysis-equivalence tests flip engines
    through this instead of hand-rolling environment handling.
    """
    before = os.environ.get("REPRO_ANALYSIS")
    if engine is not None:
        os.environ["REPRO_ANALYSIS"] = engine
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("REPRO_ANALYSIS", None)
        else:
            os.environ["REPRO_ANALYSIS"] = before


@dataclass(frozen=True)
class Dependence:
    """A dependence class between two statements through one array."""

    kind: str
    source: str
    target: str
    array: str
    #: distance vectors over the common loop iterators (may be several)
    distances: Tuple[Tuple[int, ...], ...]
    common_iters: Tuple[str, ...]
    loop_carried: bool
    witnesses: Tuple[Tuple[Instance, Instance], ...] = field(repr=False,
                                                             default=())

    @property
    def constant_distance(self) -> Optional[Tuple[int, ...]]:
        """The single distance vector, when there is exactly one."""
        if len(self.distances) == 1:
            return self.distances[0]
        return None

    def __str__(self) -> str:
        dist = ",".join(str(d) for d in self.distances[:3])
        more = "..." if len(self.distances) > 3 else ""
        return (f"{self.kind} {self.source}->{self.target} on {self.array} "
                f"dist={{{dist}{more}}} over ({', '.join(self.common_iters)})")


def analysis_params(program: Program,
                    value: int = _DEFAULT_PARAM) -> Dict[str, int]:
    """Small concrete parameter binding used for concretization."""
    return {p: value for p in program.params}


#: constant-offset spread (max |Δconst| between two references of one
#: array in one dimension) from which a dependence's onset may exceed
#: the largest default binding: a spread of 13 puts the first
#: occurrence at N ≈ 14, just past the 10/13 sizes
_LATE_ONSET_SPREAD = max(_PARAM_SIZES)


def _nonuniform_profile(program: Program) -> Tuple[frozenset, int]:
    """``(late-onset arrays, scaled binding)`` — see :func:`nonuniform_arrays`.

    Memoized per fingerprint.  The scaled binding is normally
    ``_NONUNIFORM_PARAM`` (26) but grows with the largest constant
    offset spread so that constant-offset classes (``X[i]`` vs
    ``X[i+20]``: uniform distance, late onset) are concretized at a
    size where they actually occur.
    """
    cached = _NONUNIFORM_CACHE.get(program.fingerprint())
    if cached is not None:
        return cached
    params = set(program.params)
    written = {s.write().array for s in program.statements}
    flagged = set()
    # Comparison is iterator-identity-agnostic on purpose: which loop a
    # subscript walks does not move a dependence's onset (tmp[i][j]
    # written vs tmp[i][k] read collide from size 1), so per dimension
    # only the multiset of coefficient values is compared.  Offsets are
    # anchored at the subscript's minimum over the iteration domain
    # (constant lower bounds folded in), so both `X[i+20]` and a read
    # under `for (j = 20; ...)` register the same spread.
    coeff_shapes: Dict[str, set] = {}
    anchored_offsets: Dict[Tuple[str, int], List[int]] = {}
    for stmt in program.statements:
        lowers = {}
        for spec in stmt.domain.iters:
            const_lowers = [e.const for e in spec.lowers
                            if e.is_constant]
            lowers[spec.name] = max(const_lowers, default=0)
        for ref, _is_write in stmt.all_refs():
            if ref.array not in written:
                continue
            dims = []
            for dim, subscript in enumerate(ref.indices):
                terms = tuple((v, c) for v, c in subscript.terms
                              if c != 0)
                if any(v in params for v, _c in terms):
                    flagged.add(ref.array)
                iter_terms = tuple((v, c) for v, c in terms
                                   if v not in params)
                if len(iter_terms) >= 2:
                    flagged.add(ref.array)
                dims.append(tuple(sorted(c for _v, c in iter_terms)))
                anchor = subscript.const + sum(
                    c * lowers.get(v, 0)
                    for v, c in iter_terms if c > 0)
                anchored_offsets.setdefault((ref.array, dim), []).append(
                    anchor)
            coeff_shapes.setdefault(ref.array, set()).add(tuple(dims))
    for array, variants in coeff_shapes.items():
        if len(variants) > 1:
            flagged.add(array)
    scaled = _NONUNIFORM_PARAM
    for (array, _dim), anchors in anchored_offsets.items():
        spread = max(anchors) - min(anchors)
        if spread >= _LATE_ONSET_SPREAD:
            flagged.add(array)
            # cover onsets up to spread + margin (onset ≈ spread + 1
            # for plain offsets; the margin absorbs guards shifting it)
            scaled = max(scaled, spread + _LATE_ONSET_SPREAD)
    result = (frozenset(flagged), scaled)
    _NONUNIFORM_CACHE.put(program.fingerprint(), result)
    return result


def nonuniform_arrays(program: Program) -> frozenset:
    """Written arrays whose dependence onsets may exceed the default
    concretization bindings.

    A dependence class is reliably visible at the fixed 10/13 sizes
    only when every pair of accesses to the array agrees on the
    *linear part* of each subscript dimension and their constant
    offsets are small.  Four structural patterns break that:

    * two references whose subscript coefficient values differ in some
      dimension (``A[2*i]`` vs ``A[i+c]`` — the distance between
      matching instances grows with ``i``).  Which *iterator* a
      subscript walks is deliberately ignored (``tmp[i][j]`` written
      vs ``tmp[i][k]`` read collide from size 1);
    * a coupled subscript mentioning two or more iterators
      (``A[i+j]`` — the matching set is a moving plane);
    * a global parameter inside a subscript (``A[i+N]`` — the offset
      itself scales with the binding);
    * an anchored offset spread of 13 or more between two references —
      the subscript's minimum over the iteration domain, so both
      ``X[i]`` vs ``X[i+20]`` and a read under ``for (j = 20; ...)``
      count (constant distance, but the first occurrence needs
      ``N ≥ 21``).

    Only *written* arrays matter (read-only arrays generate no
    dependences).  The result drives the scaled third concretization
    pass in :func:`compute_dependences`; memoized per fingerprint.
    """
    return _nonuniform_profile(program)[0]


def _budget_exceeded(program: Program) -> Callable[[int], Exception]:
    """The (engine-shared) budget-exhaustion error factory."""
    def _exceeded(_budget: int) -> Exception:
        return RuntimeError(
            f"dependence analysis budget exceeded on {program.name}")
    return _exceeded


def _collect_events(program: Program, params: Mapping[str, int]
                    ) -> List[Tuple[Tuple[int, ...], int, Dict[str, int]]]:
    """Guard-passing instances in schedule order (batched enumeration).

    Shares the vectorized enumeration/sort of ``runtime.instances`` with
    the interpreter engines and the trace simulator; budget accounting
    (per enumerated point, before guard filtering) and the exceeded
    message are unchanged from the scalar loop it replaces.
    """
    from ..runtime.instances import instance_list

    return instance_list(program, params, _ANALYSIS_BUDGET,
                         _budget_exceeded(program), honor_guards=True)


def compute_dependences(program: Program,
                        params: Optional[Mapping[str, int]] = None
                        ) -> List[Dependence]:
    """Enumerate all dependence classes of a program.

    With explicit ``params`` the program is concretized at exactly that
    binding.  By default it is concretized at every size in
    ``_PARAM_SIZES`` and the classes merged — witnesses remember their
    own binding, so downstream legality checks evaluate each witness at
    the size where the dependence actually occurred.

    Programs with non-uniform subscripts on written arrays (see
    :func:`nonuniform_arrays`) get a third pass at the scaled
    ``_NONUNIFORM_PARAM`` binding, restricted to exactly those arrays:
    their dependence onsets are the ones that can lie beyond the fixed
    10/13 sizes, while uniform arrays' classes (and distance sets) stay
    byte-identical to the two-size merge.  A scaled pass that would
    blow the enumeration budget (very deep nests) is skipped — no
    worse than the pre-hardening behavior.
    """
    if params is not None:
        collected = [_collect_pairs(program, params)]
    else:
        collected = [_collect_pairs(program, analysis_params(program, v))
                     for v in _PARAM_SIZES]
        scaled_arrays, scaled_size = _nonuniform_profile(program)
        if scaled_arrays:
            scaled = _collect_scaled(program, scaled_arrays, scaled_size)
            if scaled is not None:
                collected.append(scaled)
    merged_pairs: Dict[str, Dict] = {KIND_RAW: {}, KIND_WAW: {}, KIND_WAR: {}}
    merged_distances: Dict[Tuple[str, int, int, str], set] = {}
    for pairs_by_kind, distance_sets in collected:
        for kind, pairs in pairs_by_kind.items():
            for key, bucket in pairs.items():
                merged_pairs[kind].setdefault(key, []).extend(bucket)
        for key, vecs in distance_sets.items():
            merged_distances.setdefault(key, set()).update(vecs)

    deps: List[Dependence] = []
    for kind in (KIND_RAW, KIND_WAW, KIND_WAR):
        for (src_idx, tgt_idx, array), witnesses in sorted(
                merged_pairs[kind].items()):
            all_distances = merged_distances.get(
                (kind, src_idx, tgt_idx, array), set())
            deps.append(_summarize(program, kind, src_idx, tgt_idx, array,
                                   witnesses, all_distances))
    return deps


def _collect_scaled(program: Program, scaled_arrays: frozenset,
                    scaled_size: int = _NONUNIFORM_PARAM):
    """The scaled concretization pass for late-onset arrays.

    Runs only the statements touching a flagged array (element state of
    those arrays involves no other statement, so the access streams —
    and thus every witness pair and distance vector — are identical to
    a full-program pass restricted to those arrays), then remaps
    statement indices back into the full program's numbering.  Returns
    ``None`` when the scaled size would blow the enumeration budget;
    the base sizes then stand alone, as before the hardening.
    """
    touching = [i for i, stmt in enumerate(program.statements)
                if any(ref.array in scaled_arrays
                       for ref, _w in stmt.all_refs())]
    sub = program
    if len(touching) < len(program.statements):
        sub = program.with_statements(
            [program.statements[i] for i in touching])
    try:
        pairs_by_kind, distance_sets = _collect_pairs(
            sub, analysis_params(program, scaled_size), rotate=False)
    except RuntimeError:
        return None

    def remap_inst(inst: Instance) -> Instance:
        return (touching[inst[0]], inst[1])

    remapped_pairs = {
        kind: {(touching[src], touching[tgt], array):
               [(remap_inst(a), remap_inst(b)) for a, b in bucket]
               for (src, tgt, array), bucket in pairs.items()
               if array in scaled_arrays}
        for kind, pairs in pairs_by_kind.items()}
    remapped_dists = {
        (kind, touching[src], touching[tgt], array): vecs
        for (kind, src, tgt, array), vecs in distance_sets.items()
        if array in scaled_arrays}
    return remapped_pairs, remapped_dists


def _collect_pairs(program: Program, params: Mapping[str, int],
                   rotate: bool = True):
    """One concretization pass: witness pairs + distance vectors.

    Dispatches on the active engine; both produce identical structures
    (same buckets, same witness order, same rotation slots).
    ``rotate=False`` (the scaled non-uniform pass) keeps the first
    ``_MAX_WITNESSES`` records per bucket instead of rotating — cheaper
    on the larger instance space, same exhaustive distance sets.
    """
    if analysis_engine_name() == "vectorized":
        from .vectorized import collect_pairs

        return collect_pairs(program, params, _ANALYSIS_BUDGET,
                             _budget_exceeded(program), _MAX_WITNESSES,
                             rotate)
    return _collect_pairs_reference(program, params, rotate)


def _collect_pairs_reference(program: Program, params: Mapping[str, int],
                             rotate: bool = True):
    """The scalar per-instance walk (the executable specification)."""
    events = _collect_events(program, params)

    # last writer / readers-since-write / two-deep read history per element
    last_write: Dict[Tuple[str, Tuple[int, ...]], Instance] = {}
    read_history: Dict[Tuple[str, Tuple[int, ...]],
                       Tuple[Optional[Instance], Optional[Instance]]] = {}
    readers: Dict[Tuple[str, Tuple[int, ...]], List[Instance]] = {}
    raw_pairs: Dict[Tuple[int, int, str], List[Tuple[Instance, Instance]]] = {}
    waw_pairs: Dict[Tuple[int, int, str], List[Tuple[Instance, Instance]]] = {}
    war_pairs: Dict[Tuple[int, int, str], List[Tuple[Instance, Instance]]] = {}
    # distance vectors are collected exhaustively (they are small sets)
    # even though witness instances stay bounded
    distance_sets: Dict[Tuple[str, int, int, str], set] = {}
    common_cache: Dict[Tuple[int, int], Tuple[str, ...]] = {}

    def _common(si_src: int, si_tgt: int) -> Tuple[str, ...]:
        key = (si_src, si_tgt)
        got = common_cache.get(key)
        if got is None:
            src_names = program.statements[si_src].domain.iterator_names
            tgt_names = set(
                program.statements[si_tgt].domain.iterator_names)
            got = tuple(n for n in src_names if n in tgt_names)
            common_cache[key] = got
        return got

    def add(pairs, key, src, tgt, kind):
        bucket = pairs.setdefault(key, [])
        # the stored witness environment also carries the parameter
        # binding, so merged multi-size classes evaluate every witness at
        # the size it was observed at
        pair = ((src[0], src[1] + src[2]), (tgt[0], tgt[1] + tgt[2]))
        if len(bucket) < _MAX_WITNESSES:
            bucket.append(pair)
        elif rotate:
            # keep the class but rotate witnesses for diversity; the slot
            # must not come from hash() — str hashing is randomized per
            # process, and a hash-seed-dependent witness sample makes
            # legality verdicts (and thus every table) vary across runs.
            # The slot key is the iterator-only instance (params excluded),
            # keeping the sample identical to earlier revisions at the
            # default size.
            bucket[zlib.crc32(repr((tgt[0], tgt[1])).encode())
                   % _MAX_WITNESSES] = pair
        s_map = dict(src[1])
        t_map = dict(tgt[1])
        vec = tuple(t_map[n] - s_map[n] for n in _common(src[0], tgt[0]))
        distance_sets.setdefault((kind,) + key, set()).add(vec)

    param_items = tuple(sorted(params.items()))
    for _key, si, point in events:
        stmt = program.statements[si]
        env = dict(params)
        env.update(point)
        # internal instance form: (stmt index, iterator items, params);
        # ``add`` flattens it into the stored witness environment
        inst = (si, tuple(sorted(point.items())), param_items)
        for ref in stmt.reads():
            element = (ref.array, ref.index_values(env))
            writer = last_write.get(element)
            if writer is not None:
                add(raw_pairs, (writer[0], si, ref.array), writer, inst,
                    KIND_RAW)
            readers.setdefault(element, []).append(inst)
            prev, _old = read_history.get(element, (None, None))
            read_history[element] = (inst, prev)
        wref = stmt.write()
        element = (wref.array, wref.index_values(env))
        writer = last_write.get(element)
        if writer is not None:
            add(waw_pairs, (writer[0], si, wref.array), writer, inst,
                KIND_WAW)
        for reader in readers.get(element, ()):  # reads since last write
            if reader != inst:
                add(war_pairs, (reader[0], si, wref.array), reader, inst,
                    KIND_WAR)
        # Anti-dependence through compound assignments: the most recent read
        # by a *different* instance must stay before this write.  These
        # pairs are transitively implied by the RAW/WAW chain, so recording
        # them is sound, and it surfaces the array-level WAR the paper
        # attributes to ``*=``/``+=`` (§2.1).
        newest, older = read_history.get(element, (None, None))
        reader = newest if newest is not None and newest != inst else older
        if reader is not None and reader != inst:
            add(war_pairs, (reader[0], si, wref.array), reader, inst,
                KIND_WAR)
        readers[element] = []
        last_write[element] = inst

    return ({KIND_RAW: raw_pairs, KIND_WAW: waw_pairs,
             KIND_WAR: war_pairs}, distance_sets)


def _summarize(program: Program, kind: str, src_idx: int, tgt_idx: int,
               array: str,
               witnesses: List[Tuple[Instance, Instance]],
               all_distances: set) -> Dependence:
    src_stmt = program.statements[src_idx]
    tgt_stmt = program.statements[tgt_idx]
    src_iters = src_stmt.domain.iterator_names
    tgt_iters = set(tgt_stmt.domain.iterator_names)
    common = tuple(name for name in src_iters if name in tgt_iters)
    distances = set(all_distances)
    for (_s_si, s_env), (_t_si, t_env) in witnesses:
        s_map = dict(s_env)
        t_map = dict(t_env)
        distances.add(tuple(t_map[name] - s_map[name] for name in common))
    carried = any(any(v != 0 for v in vec) for vec in distances)
    return Dependence(kind=kind, source=src_stmt.name, target=tgt_stmt.name,
                      array=array, distances=tuple(sorted(distances)),
                      common_iters=common, loop_carried=carried,
                      witnesses=tuple(witnesses))


# ----------------------------------------------------------------------
# Legality checking against witnesses
# ----------------------------------------------------------------------
_LEGALITY_TILE = 2


def _legality_schedules(program: Program) -> List[Schedule]:
    """Aligned schedules with tile sizes shrunk for witness evaluation.

    Witnesses are concretized on a small parameter binding, so a size-32
    tile would never cross a boundary there and illegal tilings would look
    legal.  Rectangular-band tiling legality is size-independent (it is
    band permutability), so evaluating with size-2 tiles on the small
    domain checks the same property while actually exercising boundaries.

    Memoized per program fingerprint: every candidate legality query of
    every persona/compiler pays the schedule rebuild once, not per call.
    """
    cached = _LEGALITY_CACHE.get(program.fingerprint())
    if cached is not None:
        return cached

    from ..ir.schedule import Schedule as Sched, TileDim

    out: List[Schedule] = []
    for sched in program.aligned_schedules():
        dims = tuple(
            TileDim(d.expr, min(d.size, _LEGALITY_TILE))
            if isinstance(d, TileDim) else d
            for d in sched.dims)
        out.append(Sched(dims))
    _LEGALITY_CACHE.put(program.fingerprint(), out)
    return out


def _instance_key(program: Program, schedules: Sequence[Schedule],
                  params: Mapping[str, int], inst: Instance) -> Tuple[int, ...]:
    si, env_items = inst
    env = dict(params)
    env.update(dict(env_items))
    return schedules[si].evaluate(env)


def schedule_violations(program: Program, deps: Sequence[Dependence],
                        params: Optional[Mapping[str, int]] = None
                        ) -> List[Dependence]:
    """Dependences whose witnesses are reordered by ``program``'s schedule.

    ``program`` must share statement names/domains with the program the
    dependences were computed on (transforms preserve both).
    """
    if params is None:
        params = analysis_params(program)
    schedules = _legality_schedules(program)
    if analysis_engine_name() == "vectorized":
        from .vectorized import schedule_violations_batch

        result = schedule_violations_batch(program, deps, params, schedules)
        if result is not None:
            return result
    name_to_idx = {s.name: i for i, s in enumerate(program.statements)}
    violated: List[Dependence] = []
    for dep in deps:
        if dep.source not in name_to_idx or dep.target not in name_to_idx:
            violated.append(dep)
            continue
        for src, tgt in dep.witnesses:
            skey = _instance_key(program, schedules, params, src)
            tkey = _instance_key(program, schedules, params, tgt)
            tie = (skey == tkey and
                   name_to_idx[dep.source] >= name_to_idx[dep.target])
            if skey > tkey or tie:
                violated.append(dep)
                break
    return violated


def is_legal_schedule(program: Program, deps: Sequence[Dependence],
                      params: Optional[Mapping[str, int]] = None) -> bool:
    return not schedule_violations(program, deps, params)


def parallel_violations(program: Program, deps: Sequence[Dependence],
                        dim: int,
                        params: Optional[Mapping[str, int]] = None
                        ) -> List[Dependence]:
    """Dependences carried by schedule dimension ``dim``.

    A dimension may be marked parallel only when no dependence has equal
    schedule prefixes before ``dim`` but different values at ``dim``.
    """
    if params is None:
        params = analysis_params(program)
    schedules = _legality_schedules(program)
    if analysis_engine_name() == "vectorized":
        from .vectorized import parallel_violations_batch

        result = parallel_violations_batch(program, deps, dim, params,
                                           schedules)
        if result is not None:
            return result
    violated: List[Dependence] = []
    for dep in deps:
        for src, tgt in dep.witnesses:
            skey = _instance_key(program, schedules, params, src)
            tkey = _instance_key(program, schedules, params, tgt)
            if dim >= len(skey):
                continue
            if skey[:dim] == tkey[:dim] and skey[dim] != tkey[dim]:
                violated.append(dep)
                break
    return violated


def is_parallel_dim(program: Program, deps: Sequence[Dependence],
                    dim: int,
                    params: Optional[Mapping[str, int]] = None) -> bool:
    return not parallel_violations(program, deps, dim, params)


# ----------------------------------------------------------------------
# Bounded, thread-safe memoization
# ----------------------------------------------------------------------
class _LRUCache:
    """A small lock-guarded LRU map.

    The evaluation layer's thread pool (``evaluation.parallel``) shares
    these caches across workers; eviction drops the least recently used
    entry instead of wiping the whole cache at capacity, so a long
    bench run keeps its hot programs memoized.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            got = self._data.get(key)
            if got is not None:
                self._data.move_to_end(key)
            return got

    def put(self, key, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_DEP_CACHE = _LRUCache(4096)
_LEGALITY_CACHE = _LRUCache(2048)
_NONUNIFORM_CACHE = _LRUCache(4096)


def dependences(program: Program,
                params: Optional[Mapping[str, int]] = None
                ) -> List[Dependence]:
    """Memoized :func:`compute_dependences` (keyed by program fingerprint).

    The default (``params=None``) concretizes at every ``_PARAM_SIZES``
    binding and memoizes the merged result under its own key, so the
    two-size hardening costs one extra pass per distinct program, not
    per legality query.
    """
    key = (program.fingerprint(),
           None if params is None else tuple(sorted(params.items())))
    cached = _DEP_CACHE.get(key)
    if cached is None:
        cached = compute_dependences(program, params)
        _DEP_CACHE.put(key, cached)
    return cached
