"""Symbolic dependence analysis for the constant-distance common case.

The witness-based analyzer (`repro.analysis.dependences`) is exact on a
sampled size; this module computes dependence *distance vectors
symbolically* for the dominant SCoP pattern — references whose subscripts
are ``iterator + constant`` per dimension — without enumerating anything.
It plays the role ISL's exact dataflow analysis plays for PLuTo: size-
independent distances for uniform dependences.

For a pair of references to the same array,

    write  A[i + a1][j + a2 ...]   from statement S
    access A[i + b1][j + b2 ...]   from statement T

sharing the loop prefix ``(i, j, ...)``, the element coincides exactly
when the common iterators differ by ``d_k = a_k − b_k`` on every
dimension where both subscripts use the same iterator.  The distance is
therefore a constant vector — precisely the "constant dependence
distances" the paper's synthesizer constrains itself to (Appendix A).

Coverage is *partial by design*: references with transposed/shared/
missing iterators return ``None`` ("cannot decide symbolically") and the
caller falls back to the witness analyzer.  The two are cross-validated
in ``tests/test_analysis_symbolic.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.expr import Ref
from ..ir.program import Program
from ..ir.statement import Statement
from .dependences import KIND_RAW, KIND_WAR, KIND_WAW


@dataclass(frozen=True)
class SymbolicDependence:
    """A symbolically derived dependence class."""

    kind: str
    source: str
    target: str
    array: str
    distance: Tuple[int, ...]
    common_iters: Tuple[str, ...]

    @property
    def loop_carried(self) -> bool:
        return any(d != 0 for d in self.distance)

    def __str__(self) -> str:
        return (f"{self.kind} {self.source}->{self.target} on "
                f"{self.array} dist={self.distance}")


def _uniform_offsets(ref: Ref,
                     iterators: Sequence[str]) -> Optional[Dict[str, int]]:
    """Map iterator -> constant offset when the ref is uniform.

    Uniform means: every subscript is ``one iterator (coeff 1) + const``,
    each iterator used at most once, no parameters in subscripts.
    """
    offsets: Dict[str, int] = {}
    iterator_set = set(iterators)
    for index in ref.indices:
        names = index.variables()
        if len(names) != 1:
            return None
        name = names[0]
        if name not in iterator_set or index.coeff(name) != 1:
            return None
        if name in offsets:
            return None
        offsets[name] = index.const
    return offsets


def _common_loops(src: Statement, tgt: Statement) -> List[str]:
    """Loops genuinely shared by two statements.

    Sibling loops may reuse an iterator name (both inner loops of
    jacobi-1d are ``i``), so name equality is not identity.  Two
    statements share a loop level iff their canonical schedules agree on
    every dimension up to and including it: equal text constants and the
    same iterator expression.
    """
    out: List[str] = []
    for sdim, tdim in zip(src.schedule.dims, tgt.schedule.dims):
        if sdim.is_dynamic != tdim.is_dynamic:
            break
        if not sdim.is_dynamic:
            if sdim.value != tdim.value:  # type: ignore[union-attr]
                break
            continue
        if sdim.expr != tdim.expr:  # type: ignore[union-attr]
            break
        names = sdim.expr.variables()  # type: ignore[union-attr]
        if len(names) == 1:
            out.append(names[0])
    return out


def _pair_distance(src_ref: Ref, tgt_ref: Ref,
                   src_stmt: Statement, tgt_stmt: Statement
                   ) -> Optional[Tuple[Dict[str, int], Tuple[str, ...],
                                       List[str]]]:
    """Pinned distances + unpinned common loops for one access pair.

    Returns ``(pinned, common, unpinned)`` where ``pinned`` maps the
    common iterators the subscripts constrain to their constant distance
    and ``unpinned`` lists common loops absent from both subscript lists
    (e.g. a reduction's accumulation loop, or a stencil's time loop).
    """
    if src_ref.array != tgt_ref.array:
        return None
    if len(src_ref.indices) != len(tgt_ref.indices):
        return None
    src_iters = src_stmt.domain.iterator_names
    tgt_iters = tgt_stmt.domain.iterator_names
    common = _common_loops(src_stmt, tgt_stmt)
    if not common:
        return None
    src_off = _uniform_offsets(src_ref, src_iters)
    tgt_off = _uniform_offsets(tgt_ref, tgt_iters)
    if src_off is None or tgt_off is None:
        return None
    # dimension pairing must bind the same iterator in both refs
    pinned: Dict[str, int] = {}
    for s_index, t_index in zip(src_ref.indices, tgt_ref.indices):
        s_name = s_index.variables()[0]
        t_name = t_index.variables()[0]
        if s_name != t_name:
            return None
        if s_name not in common:
            # deeper non-common iterator: the element only coincides for
            # specific pairs; not a uniform dependence
            if s_index.const != t_index.const:
                return None
            continue
        # A[i + a] (source) == A[i' + b] (target) when i' = i + (a - b)
        pinned[s_name] = s_index.const - t_index.const
    unpinned = [
        name for name in common
        if name not in pinned
        and not any(name in ix.variables() for ix in src_ref.indices)
        and not any(name in ix.variables() for ix in tgt_ref.indices)]
    return pinned, tuple(common), unpinned


def _direct_distance(pinned: Dict[str, int], common: Sequence[str],
                     unpinned: Sequence[str], src_idx: int,
                     tgt_idx: int) -> Optional[Tuple[int, ...]]:
    """The *direct* (last-access) dependence distance.

    Unpinned common loops rewrite the same element every iteration, so
    the direct source is either the same iteration (when textual order
    already places the source first) or the previous iteration of the
    innermost unpinned loop — this reconstructs the kills an ISL dataflow
    analysis would compute.
    """
    vec = [pinned.get(name, 0) for name in common]
    ordered = False
    for d in vec:
        if d > 0:
            ordered = True
            break
        if d < 0:
            return None  # source would run after target
    else:
        ordered = src_idx < tgt_idx
    if ordered:
        return tuple(vec)
    if not unpinned:
        return None
    innermost = unpinned[-1]
    vec[list(common).index(innermost)] = 1
    return tuple(vec)


def symbolic_dependences(program: Program) -> List[SymbolicDependence]:
    """All uniform-distance dependence classes, derived symbolically.

    Returns only pairs the symbolic machinery can decide; callers needing
    completeness combine this with the witness analyzer.
    """
    out: List[SymbolicDependence] = []
    seen = set()
    statements = list(program.statements)
    for si, src in enumerate(statements):
        for ti, tgt in enumerate(statements):
            for s_ref, s_write in src.all_refs():
                for t_ref, t_write in tgt.all_refs():
                    if not (s_write or t_write):
                        continue
                    pair = _pair_distance(s_ref, t_ref, src, tgt)
                    if pair is None:
                        continue
                    pinned, common, unpinned = pair
                    distance = _direct_distance(pinned, common, unpinned,
                                                si, ti)
                    if distance is None:
                        continue
                    if si == ti and all(d == 0 for d in distance):
                        continue  # same instance
                    if s_write and t_write:
                        kind = KIND_WAW
                    elif s_write:
                        kind = KIND_RAW
                    else:
                        kind = KIND_WAR
                    key = (kind, src.name, tgt.name, s_ref.array, distance)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(SymbolicDependence(
                        kind=kind, source=src.name, target=tgt.name,
                        array=s_ref.array, distance=distance,
                        common_iters=common))
    return out


def uniform_coverage(program: Program) -> float:
    """Fraction of references the symbolic analyzer can reason about."""
    total = 0
    covered = 0
    for stmt in program.statements:
        for ref, _w in stmt.all_refs():
            total += 1
            if _uniform_offsets(ref, stmt.domain.iterator_names) is not None:
                covered += 1
    return covered / total if total else 1.0
