"""Vectorized dependence & legality engine (``REPRO_ANALYSIS=vectorized``).

Mirrors the execution-engine split of ``repro.runtime``: the scalar walk
in :mod:`repro.analysis.dependences` stays the executable specification;
this module derives *bit-identical* results from NumPy batch operations.

Dependence collection
---------------------
The scalar reference replays the program instance by instance, tracking
per array element the last writer, the readers since that write and a
two-deep read history.  Here the same information is recovered in bulk:

1. every statement's access subscripts are evaluated as vectorized affine
   maps over the batched instance enumeration (``runtime.instances``,
   shared with the interpreter engines and the trace simulator);
2. ``(array, cell)`` keys are flattened to integers and all access events
   are ordered by one stable ``np.lexsort`` on (cell, schedule position,
   access ordinal) — giving each cell's access history as a contiguous
   segment in exactly the order the scalar walk visits it;
3. segment scans (cumulative max/min/count with segment-start masking)
   yield, per event, the previous write, the next write, and the one- and
   two-back reads — from which RAW / WAW / WAR pair records follow as
   pure array expressions, including the compound-assignment WAR rule;
4. records are re-ordered by the position the scalar walk would have
   issued its ``add`` call and replayed through the same bounded-witness
   bucket (append below ``_MAX_WITNESSES``, then crc32-slot rotation on
   the iterator-only instance repr), so every stored witness — and every
   legality verdict downstream — is identical, not just equivalent.

Distance-vector sets are computed exhaustively as array differences over
the common iterators and deduplicated via integer encoding.

Legality checking
-----------------
``schedule_violations`` / ``parallel_violations`` batch all witnesses of
all dependences into per-(statement, names) groups (cached per deps list,
since the memoized dependence lists are reused across thousands of
candidate queries), evaluate the legality schedules as vectorized affine
maps over the witness environments, and compare source/target schedule
keys with one row-wise lexicographic comparison.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..ir.affine import affine_column
from ..ir.program import Program
from ..ir.schedule import Schedule

KIND_RAW = "RAW"
KIND_WAW = "WAW"
KIND_WAR = "WAR"


# ----------------------------------------------------------------------
# Dependence collection
# ----------------------------------------------------------------------
class _StmtMeta:
    """Per-statement helpers for materializing witness instances."""

    def __init__(self, si: int, names: Sequence[str]) -> None:
        self.si = si
        #: column permutation putting iterator values in sorted-name order
        self.order = sorted(range(len(names)), key=lambda d: names[d])
        self.sorted_names = tuple(names[d] for d in self.order)
        # ``repr`` template of the iterator-only instance
        # ``(si, (('i', v), ...))`` — the witness-rotation slot key of the
        # reference walk, rebuilt here via one %-format per record
        if not names:
            inner = "()"
        elif len(names) == 1:
            inner = f"(('{self.sorted_names[0]}', %d),)"
        else:
            inner = ("("
                     + ", ".join(f"('{nm}', %d)" for nm in self.sorted_names)
                     + ")")
        self.slot_template = f"({si}, {inner})"

    def items(self, sorted_vals: Sequence[int]
              ) -> Tuple[Tuple[str, int], ...]:
        return tuple(zip(self.sorted_names, sorted_vals))


def collect_pairs(program: Program, params: Mapping[str, int],
                  budget: int, exceeded: Callable[[int], Exception],
                  max_witnesses: int, rotate: bool = True):
    """One concretization pass; same return structure as the reference.

    Returns ``({kind: {(src_si, tgt_si, array): [witness pair, ...]}},
    {(kind, src_si, tgt_si, array): {distance vec, ...}})`` with witness
    buckets byte-identical to the scalar walk's.

    ``rotate=False`` keeps the first ``max_witnesses`` records per
    bucket instead of crc-rotating later ones in — the policy of the
    scaled non-uniform pass, where distance sets stay exhaustive and
    the per-record crc over a much larger instance space would dominate
    the pass.
    """
    from ..runtime.instances import sorted_instances

    batch = sorted_instances(program, params, budget, exceeded,
                             honor_guards=True)
    raw_pairs: Dict = {}
    waw_pairs: Dict = {}
    war_pairs: Dict = {}
    distance_sets: Dict[Tuple[str, int, int, str], set] = {}
    out = ({KIND_RAW: raw_pairs, KIND_WAW: waw_pairs, KIND_WAR: war_pairs},
           distance_sets)
    n = len(batch)
    if n == 0:
        return out

    # ------------------------------------------------------------------
    # 1-2: per-access coordinate columns, flattened cell keys, event sort
    # ------------------------------------------------------------------
    spaces: Dict[Tuple[str, int], int] = {}   # (array, rank) -> space id
    chunks = []  # (space id, [coord columns], gpos, ordinal, is_write)
    metas: List[_StmtMeta] = []
    for si, stmt in enumerate(program.statements):
        mask = batch.si == si
        gpos = np.flatnonzero(mask)
        pts = batch.points[si][batch.row[mask]]
        names = stmt.domain.iterator_names
        metas.append(_StmtMeta(si, names))
        m = len(gpos)
        if m == 0:
            continue
        columns = {name: pts[:, d] for d, name in enumerate(names)}
        accesses = [(ref, False) for ref in stmt.reads()]
        accesses.append((stmt.write(), True))
        for ordinal, (ref, is_write) in enumerate(accesses):
            sid = spaces.setdefault((ref.array, len(ref.indices)),
                                    len(spaces))
            coords = [affine_column(ix, columns, params, m)
                      for ix in ref.indices]
            chunks.append((sid, coords, gpos, ordinal, is_write))

    # flatten each space's cells to non-negative integers (subscripts may
    # be arbitrary ints — the reference keys dicts on raw tuples, so no
    # bounds assumption is allowed here)
    mins: Dict[int, np.ndarray] = {}
    maxs: Dict[int, np.ndarray] = {}
    for sid, coords, _g, _o, _w in chunks:
        if not coords:
            continue
        lo = np.array([c.min() for c in coords], dtype=np.int64)
        hi = np.array([c.max() for c in coords], dtype=np.int64)
        if sid in mins:
            np.minimum(mins[sid], lo, out=mins[sid])
            np.maximum(maxs[sid], hi, out=maxs[sid])
        else:
            mins[sid], maxs[sid] = lo, hi
    strides: Dict[int, np.ndarray] = {}
    for sid, lo in mins.items():
        extent = maxs[sid] - lo + 1
        stride = np.ones(len(lo), dtype=np.int64)
        stride[:-1] = np.cumprod(extent[::-1], dtype=np.int64)[::-1][1:]
        strides[sid] = stride

    parts_sid, parts_flat, parts_g, parts_ord, parts_w = [], [], [], [], []
    for sid, coords, gpos, ordinal, is_write in chunks:
        m = len(gpos)
        flat = np.zeros(m, dtype=np.int64)
        if coords:
            lo, stride = mins[sid], strides[sid]
            for d, col in enumerate(coords):
                flat += (col - lo[d]) * stride[d]
        parts_sid.append(np.full(m, sid, dtype=np.int64))
        parts_flat.append(flat)
        parts_g.append(gpos)
        parts_ord.append(np.full(m, ordinal, dtype=np.int64))
        parts_w.append(np.full(m, is_write, dtype=bool))
    ev_sid = np.concatenate(parts_sid)
    ev_flat = np.concatenate(parts_flat)
    ev_g = np.concatenate(parts_g)
    ev_ord = np.concatenate(parts_ord)
    ev_w = np.concatenate(parts_w)

    # cell-major, then schedule position, then access ordinal — each
    # cell's history is one contiguous segment in scalar visit order
    order = np.lexsort((ev_ord, ev_g, ev_flat, ev_sid))
    ev_sid, ev_flat = ev_sid[order], ev_flat[order]
    ev_g, ev_ord, ev_w = ev_g[order], ev_ord[order], ev_w[order]
    m_ev = len(ev_g)
    idx = np.arange(m_ev, dtype=np.int64)

    # ------------------------------------------------------------------
    # 3: segment scans — previous/next write, one- and two-back reads
    # ------------------------------------------------------------------
    new_seg = np.empty(m_ev, dtype=bool)
    new_seg[0] = True
    new_seg[1:] = ((ev_sid[1:] != ev_sid[:-1])
                   | (ev_flat[1:] != ev_flat[:-1]))
    seg_id = np.cumsum(new_seg) - 1
    seg_start = idx[new_seg][seg_id]

    w_idx = np.where(ev_w, idx, np.int64(-1))
    lw_incl = np.maximum.accumulate(w_idx)
    prev_w = np.empty(m_ev, dtype=np.int64)
    prev_w[0] = -1
    prev_w[1:] = lw_incl[:-1]
    has_prev_w = prev_w >= seg_start

    nw_incl = np.minimum.accumulate(
        np.where(ev_w, idx, np.int64(m_ev))[::-1])[::-1]
    next_w = np.empty(m_ev, dtype=np.int64)
    next_w[:-1] = nw_incl[1:]
    next_w[-1] = m_ev
    has_next_w = (next_w < m_ev)
    safe_next = np.minimum(next_w, m_ev - 1)
    has_next_w &= seg_id[safe_next] == seg_id

    is_r = ~ev_w
    rpos = idx[is_r]
    reads_before = np.cumsum(is_r) - is_r
    if len(rpos):
        last_r = rpos[np.maximum(reads_before - 1, 0)]
        last2_r = rpos[np.maximum(reads_before - 2, 0)]
    else:
        last_r = last2_r = np.zeros(m_ev, dtype=np.int64)
    has_last_r = (reads_before >= 1) & (last_r >= seg_start)
    has_last2_r = (reads_before >= 2) & (last2_r >= seg_start)

    # RAW: read with a previous write on its cell
    raw_mask = is_r & has_prev_w
    raw_src, raw_tgt = prev_w[raw_mask], idx[raw_mask]

    # WAW: write with a previous write
    waw_mask = ev_w & has_prev_w
    waw_src, waw_tgt = prev_w[waw_mask], idx[waw_mask]

    # WAR via the readers-since-last-write list: each read is claimed by
    # the first write after it on the same cell (which also clears it),
    # skipped when writer and reader are the same instance
    warr_mask = is_r & has_next_w
    warr_src, warr_tgt = idx[warr_mask], next_w[warr_mask]
    keep = ev_g[warr_src] != ev_g[warr_tgt]
    warr_src, warr_tgt = warr_src[keep], warr_tgt[keep]

    # WAR via the two-deep read history (compound assignments): the most
    # recent read by a *different* instance, regardless of writes between
    w_events = idx[ev_w]
    g_w = ev_g[w_events]
    newest, has_newest = last_r[w_events], has_last_r[w_events]
    older, has_older = last2_r[w_events], has_last2_r[w_events]
    newest_is_self = has_newest & (ev_g[newest] == g_w)
    reader = np.where(newest_is_self, older, newest)
    has_reader = np.where(newest_is_self, has_older, has_newest)
    keep = has_reader & (ev_g[reader] != g_w)
    warc_src, warc_tgt = reader[keep], w_events[keep]

    # ------------------------------------------------------------------
    # 4: group records per bucket, replay witness selection, distances
    # ------------------------------------------------------------------
    name_id = {name: i
               for i, name in enumerate(sorted({a for a, _r in spaces}))}
    id_name = {i: name for name, i in name_id.items()}
    sid_name = np.zeros(max(len(spaces), 1), dtype=np.int64)
    for (array, _rank), sid in spaces.items():
        sid_name[sid] = name_id[array]

    param_items = tuple(sorted(params.items()))

    # lazy per-statement crc32 table over iterator-only instance reprs:
    # the witness-rotation slot depends only on the target instance, so
    # one crc per enumerated point serves every overflowing bucket
    crc_tables: Dict[int, np.ndarray] = {}

    def crc_table(si: int) -> np.ndarray:
        table = crc_tables.get(si)
        if table is None:
            meta = metas[si]
            pts = batch.points[si]
            rows = (pts[:, meta.order].tolist() if pts.shape[1]
                    else [[]] * len(pts))
            template = meta.slot_template
            table = np.fromiter(
                (zlib.crc32((template % tuple(row)).encode())
                 for row in rows),
                dtype=np.int64, count=len(rows))
            crc_tables[si] = table
        return table

    def emit(pairs_out, kind, src_ev, tgt_ev, phase, sub):
        """Replay one kind's ``add`` stream bucket by bucket.

        ``phase``/``sub`` order records the way the scalar walk issues
        them within one write event (WAW, then the readers list in
        append order, then the compound-history pair); across events the
        target's schedule position orders everything.
        """
        if len(src_ev) == 0:
            return
        src_si = batch.si[ev_g[src_ev]]
        tgt_si = batch.si[ev_g[tgt_ev]]
        arr = sid_name[ev_sid[tgt_ev]]
        rec_order = np.lexsort((sub, phase, ev_ord[tgt_ev], ev_g[tgt_ev],
                                arr, tgt_si, src_si))
        src_ev, tgt_ev = src_ev[rec_order], tgt_ev[rec_order]
        src_si, tgt_si, arr = (src_si[rec_order], tgt_si[rec_order],
                               arr[rec_order])
        bounds = np.flatnonzero(
            np.concatenate(([True],
                            (src_si[1:] != src_si[:-1])
                            | (tgt_si[1:] != tgt_si[:-1])
                            | (arr[1:] != arr[:-1]),
                            [True])))
        for a, b in zip(bounds[:-1], bounds[1:]):
            ssi, tsi = int(src_si[a]), int(tgt_si[a])
            key = (ssi, tsi, id_name[int(arr[a])])
            smeta, tmeta = metas[ssi], metas[tsi]
            src_rows = batch.row[ev_g[src_ev[a:b]]]
            tgt_rows = batch.row[ev_g[tgt_ev[a:b]]]
            src_pts = batch.points[ssi][src_rows]
            tgt_pts = batch.points[tsi][tgt_rows]
            _merge_distances(program, distance_sets, kind, key,
                             ssi, tsi, src_pts, tgt_pts)
            # bounded-witness replay: the first _MAX_WITNESSES records
            # append; later ones overwrite their crc slot, so only the
            # last record per slot needs materializing
            k = b - a
            chosen = np.arange(min(k, max_witnesses))
            if k > max_witnesses and rotate:
                slots = (crc_table(tsi)[tgt_rows[max_witnesses:]]
                         % max_witnesses)
                for j, slot in enumerate(slots.tolist()):
                    chosen[slot] = max_witnesses + j
            sel_src = src_pts[chosen][:, smeta.order].tolist()
            sel_tgt = tgt_pts[chosen][:, tmeta.order].tolist()
            pairs_out[key] = [
                ((ssi, smeta.items(sv) + param_items),
                 (tsi, tmeta.items(tv) + param_items))
                for sv, tv in zip(sel_src, sel_tgt)]

    emit(raw_pairs, KIND_RAW, raw_src, raw_tgt,
         np.zeros(len(raw_src), dtype=np.int64),
         np.zeros(len(raw_src), dtype=np.int64))
    emit(waw_pairs, KIND_WAW, waw_src, waw_tgt,
         np.zeros(len(waw_src), dtype=np.int64),
         np.zeros(len(waw_src), dtype=np.int64))
    war_src = np.concatenate((warr_src, warc_src))
    war_tgt = np.concatenate((warr_tgt, warc_tgt))
    war_phase = np.concatenate((np.full(len(warr_src), 1, dtype=np.int64),
                                np.full(len(warc_src), 2, dtype=np.int64)))
    war_sub = np.concatenate((warr_src,
                              np.zeros(len(warc_src), dtype=np.int64)))
    emit(war_pairs, KIND_WAR, war_src, war_tgt, war_phase, war_sub)
    return out


def _merge_distances(program: Program, distance_sets: Dict, kind: str,
                     key: Tuple[int, int, str], ssi: int, tsi: int,
                     src_pts: np.ndarray, tgt_pts: np.ndarray) -> None:
    """Exhaustive distance vectors of one class (integer-encoded dedup)."""
    src_names = program.statements[ssi].domain.iterator_names
    tgt_names = program.statements[tsi].domain.iterator_names
    tgt_pos = {name: d for d, name in enumerate(tgt_names)}
    common = [(d, tgt_pos[name]) for d, name in enumerate(src_names)
              if name in tgt_pos]
    target = distance_sets.setdefault((kind,) + key, set())
    if not common:
        target.add(())
        return
    diff = (tgt_pts[:, [t for _s, t in common]]
            - src_pts[:, [s for s, _t in common]])
    lo = diff.min(axis=0)
    extent = diff.max(axis=0) - lo + 1
    stride = np.ones(len(common), dtype=np.int64)
    stride[:-1] = np.cumprod(extent[::-1], dtype=np.int64)[::-1][1:]
    codes = np.unique(((diff - lo) * stride).sum(axis=1))
    vecs = []
    for code in codes.tolist():
        vec = []
        for d in range(len(common)):
            vec.append(code // int(stride[d]) + int(lo[d]))
            code %= int(stride[d])
        vecs.append(tuple(vec))
    target.update(vecs)


# ----------------------------------------------------------------------
# Batched legality checking
# ----------------------------------------------------------------------
class _WitnessPack:
    """All witnesses of a deps list as per-(statement, names) matrices."""

    def __init__(self, groups, per_dep) -> None:
        #: [(statement index, env names, (n, len(names)) int64 values)]
        self.groups = groups
        #: per dep: (src gid, src slice, tgt gid, tgt slice) or None
        self.per_dep = per_dep


_PACK_CACHE: "OrderedDict" = OrderedDict()
_PACK_LOCK = threading.Lock()
_PACK_CAPACITY = 256
_HETEROGENEOUS = "heterogeneous"


def _build_pack(deps: Sequence) -> Optional[_WitnessPack]:
    group_ids: Dict[Tuple[int, Tuple[str, ...]], int] = {}
    group_rows: List[List[List[int]]] = []
    group_meta: List[Tuple[int, Tuple[str, ...]]] = []
    per_dep = []

    def side_rows(insts) -> Optional[Tuple[int, slice]]:
        si = insts[0][0]
        names = tuple(n for n, _v in insts[0][1])
        gid = group_ids.get((si, names))
        if gid is None:
            gid = len(group_rows)
            group_ids[(si, names)] = gid
            group_rows.append([])
            group_meta.append((si, names))
        rows = group_rows[gid]
        start = len(rows)
        for inst_si, env in insts:
            if inst_si != si or len(env) != len(names):
                return None
            rows.append([v for _n, v in env])
        return gid, slice(start, start + len(insts))

    for dep in deps:
        if not dep.witnesses:
            per_dep.append(None)
            continue
        src = side_rows([pair[0] for pair in dep.witnesses])
        tgt = side_rows([pair[1] for pair in dep.witnesses])
        if src is None or tgt is None:
            return None
        per_dep.append(src + tgt)
    groups = []
    for (si, names), rows in zip(group_meta, group_rows):
        vals = np.asarray(rows, dtype=np.int64).reshape(len(rows),
                                                        len(names))
        groups.append((si, names, vals))
    return _WitnessPack(groups, per_dep)


def _witness_pack(deps: Sequence) -> Optional[_WitnessPack]:
    """Cached :func:`_build_pack`.

    Keyed by the identity of the dependence objects; the entry pins the
    deps tuple so ids stay valid while cached.  Memoized dependence
    lists are queried by every candidate schedule of every persona and
    compiler pass, so the tuple-to-matrix conversion is paid once.
    """
    key = tuple(map(id, deps))
    with _PACK_LOCK:
        hit = _PACK_CACHE.get(key)
        if hit is not None:
            _PACK_CACHE.move_to_end(key)
            return None if hit[1] is _HETEROGENEOUS else hit[1]
    pack = _build_pack(deps)
    with _PACK_LOCK:
        _PACK_CACHE[key] = (tuple(deps),
                            _HETEROGENEOUS if pack is None else pack)
        _PACK_CACHE.move_to_end(key)
        while len(_PACK_CACHE) > _PACK_CAPACITY:
            _PACK_CACHE.popitem(last=False)
    return pack


def _group_keys(pack: _WitnessPack, schedules: Sequence[Schedule],
                params: Mapping[str, int], cache: Dict[int, np.ndarray],
                gid: int) -> np.ndarray:
    keys = cache.get(gid)
    if keys is None:
        si, names, vals = pack.groups[gid]
        columns = {name: vals[:, j] for j, name in enumerate(names)}
        keys = schedules[si].evaluate_columns(columns, params, len(vals))
        cache[gid] = keys
    return keys


def _lex_compare(skeys: np.ndarray, tkeys: np.ndarray):
    """Row-wise lexicographic verdicts: (src > tgt, src == tgt) masks."""
    diff = skeys - tkeys
    nz = diff != 0
    has = nz.any(axis=1)
    lead = diff[np.arange(len(diff)), nz.argmax(axis=1)]
    return has & (lead > 0), ~has


def schedule_violations_batch(program: Program, deps: Sequence,
                              params: Mapping[str, int],
                              schedules: Sequence[Schedule]
                              ) -> Optional[List]:
    """Batched :func:`..dependences.schedule_violations`.

    Returns None when the witness shapes don't pack (heterogeneous
    environments) — the caller falls back to the reference loop.
    """
    pack = _witness_pack(deps)
    if pack is None:
        return None
    name_to_idx = {s.name: i for i, s in enumerate(program.statements)}
    key_cache: Dict[int, np.ndarray] = {}
    violated = []
    for dep, entry in zip(deps, pack.per_dep):
        if dep.source not in name_to_idx or dep.target not in name_to_idx:
            violated.append(dep)
            continue
        if entry is None:
            continue
        sgid, ssl, tgid, tsl = entry
        skeys = _group_keys(pack, schedules, params, key_cache, sgid)[ssl]
        tkeys = _group_keys(pack, schedules, params, key_cache, tgid)[tsl]
        greater, equal = _lex_compare(skeys, tkeys)
        if greater.any() or (
                name_to_idx[dep.source] >= name_to_idx[dep.target]
                and equal.any()):
            violated.append(dep)
    return violated


def parallel_violations_batch(program: Program, deps: Sequence, dim: int,
                              params: Mapping[str, int],
                              schedules: Sequence[Schedule]
                              ) -> Optional[List]:
    """Batched :func:`..dependences.parallel_violations`."""
    pack = _witness_pack(deps)
    if pack is None:
        return None
    key_cache: Dict[int, np.ndarray] = {}
    violated = []
    for dep, entry in zip(deps, pack.per_dep):
        if entry is None:
            continue
        sgid, ssl, tgid, tsl = entry
        skeys = _group_keys(pack, schedules, params, key_cache, sgid)[ssl]
        tkeys = _group_keys(pack, schedules, params, key_cache, tgid)[tsl]
        if dim >= skeys.shape[1]:
            continue
        carried = ((skeys[:, :dim] == tkeys[:, :dim]).all(axis=1)
                   & (skeys[:, dim] != tkeys[:, dim]))
        if carried.any():
            violated.append(dep)
    return violated
