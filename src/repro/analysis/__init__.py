"""Static/dynamic analyses over SCoPs: dependences and loop properties."""

from .dependences import (Dependence, KIND_RAW, KIND_WAR, KIND_WAW,
                          analysis_engine_name, analysis_override,
                          analysis_params, compute_dependences, dependences,
                          is_legal_schedule, is_parallel_dim,
                          parallel_violations, schedule_violations)
from .properties import (FIG9_PROPERTIES, LoopProperties,
                         cluster_distribution, distribution_spread,
                         extract_properties, property_cluster)
from .symbolic import (SymbolicDependence, symbolic_dependences,
                       uniform_coverage)

__all__ = [
    "Dependence", "KIND_RAW", "KIND_WAR", "KIND_WAW",
    "analysis_engine_name", "analysis_override",
    "analysis_params", "compute_dependences", "dependences",
    "is_legal_schedule", "is_parallel_dim", "parallel_violations",
    "schedule_violations",
    "FIG9_PROPERTIES", "LoopProperties", "cluster_distribution",
    "distribution_spread", "extract_properties", "property_cluster",
    "SymbolicDependence", "symbolic_dependences", "uniform_coverage",
]
