"""Loop property extraction (§2.1, Figure 4).

The eleven properties the paper models — loop structure (number of
statements, loop bounds, loop depth, loop schedule), data dependence
(number, type, distance) and array access (number of arrays, names, sizes,
indexes) — are extracted here from a :class:`Program`.  Figure 9's
distribution study buckets eight of them into four clusters (A–D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.program import Program
from ..ir.schedule import ConstDim
from .dependences import Dependence, dependences


@dataclass(frozen=True)
class LoopProperties:
    """The paper's eleven loop properties for one SCoP."""

    n_statements: int
    bounds_iter_refs: int          # bounds referencing outer iterators
    loop_depth: int
    perfect: bool                  # loop schedule shape (§2.1)
    n_dependences: int
    dep_types: Tuple[str, ...]
    max_dep_distance: int
    n_arrays: int
    array_names: Tuple[str, ...]
    total_array_cells: int
    index_signatures: Tuple[str, ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "NStmts": self.n_statements,
            "Bound": self.bounds_iter_refs,
            "Depth": self.loop_depth,
            "Schedule": self.perfect,
            "NDeps": self.n_dependences,
            "DepType": self.dep_types,
            "NArrays": self.n_arrays,
            "ArraySize": self.total_array_cells,
        }


def _is_perfect(program: Program) -> bool:
    """All statements at max depth with identical non-final const dims."""
    depth = program.max_depth
    if any(s.domain.depth != depth for s in program.statements):
        return False
    consts = None
    for sched in program.aligned_schedules():
        own = tuple(d.value for d in sched.dims[:-1]
                    if isinstance(d, ConstDim))
        if consts is None:
            consts = own
        elif own != consts:
            return False
    return True


def extract_properties(program: Program,
                       params: Optional[Mapping[str, int]] = None,
                       deps: Optional[Sequence[Dependence]] = None
                       ) -> LoopProperties:
    """Extract all eleven loop properties."""
    if deps is None:
        deps = dependences(program, params)
    bounds_refs = 0
    for stmt in program.statements:
        outer = set(program.params)
        for spec in stmt.domain.iters:
            for bound in spec.lowers + spec.uppers:
                if set(bound.variables()) - set(program.params):
                    bounds_refs += 1
            outer.add(spec.name)
    max_dist = 0
    for dep in deps:
        for vec in dep.distances:
            for v in vec:
                max_dist = max(max_dist, abs(v))
    names = tuple(sorted(program.array_names()))
    size_params = params or {p: 32 for p in program.params}
    cells = sum(
        int(_prod(decl.shape(size_params))) for decl in program.arrays)
    signatures: List[str] = []
    for stmt in program.statements:
        for ref, is_write in stmt.all_refs():
            marker = "W" if is_write else "R"
            sig = marker + ":" + ",".join(str(ix) for ix in ref.indices)
            signatures.append(sig)
    return LoopProperties(
        n_statements=len(program.statements),
        bounds_iter_refs=bounds_refs,
        loop_depth=program.max_depth,
        perfect=_is_perfect(program),
        n_dependences=len(deps),
        dep_types=tuple(sorted({d.kind for d in deps})),
        max_dep_distance=max_dist,
        n_arrays=len(program.arrays),
        array_names=names,
        total_array_cells=cells,
        index_signatures=tuple(sorted(signatures)),
    )


def _prod(values: Tuple[int, ...]) -> int:
    out = 1
    for v in values:
        out *= max(1, v)
    return out


# ----------------------------------------------------------------------
# Figure 9 clustering: eight properties, four clusters A-D each
# ----------------------------------------------------------------------
FIG9_PROPERTIES = ("NStmts", "Bound", "Depth", "Schedule",
                   "NDeps", "DepType", "NArrays", "ArraySize")

_CLUSTERS = "ABCD"


def _bucket(value: int, edges: Tuple[int, int, int]) -> str:
    """Cluster by three inclusive upper edges: A<=e0 < B<=e1 < C<=e2 < D."""
    for label, edge in zip(_CLUSTERS, edges):
        if value <= edge:
            return label
    return "D"


def property_cluster(name: str, props: LoopProperties) -> str:
    """Assign one property value to cluster A/B/C/D (Figure 9)."""
    if name == "NStmts":
        return _bucket(props.n_statements, (1, 2, 4))
    if name == "Bound":
        return _bucket(props.bounds_iter_refs, (0, 1, 3))
    if name == "Depth":
        return _bucket(props.loop_depth, (1, 2, 3))
    if name == "Schedule":
        # perfect/imperfect × single/multi statement
        if props.perfect:
            return "A" if props.n_statements == 1 else "B"
        return "C" if props.n_statements <= 2 else "D"
    if name == "NDeps":
        # the paper's own example clustering: 0-2 / 3-5 / 6-10 / 11+
        return _bucket(props.n_dependences, (2, 5, 10))
    if name == "DepType":
        kinds = set(props.dep_types)
        if not kinds:
            return "A"
        if kinds == {"RAW"}:
            return "B"
        if len(kinds) == 2:
            return "C"
        if len(kinds) >= 3:
            return "D"
        return "B"
    if name == "NArrays":
        return _bucket(props.n_arrays, (1, 2, 3))
    if name == "ArraySize":
        return _bucket(props.total_array_cells, (1100, 2200, 4400))
    raise KeyError(name)


def cluster_distribution(programs: Sequence[Program],
                         params_value: int = 32
                         ) -> Dict[str, Dict[str, float]]:
    """Per-property cluster percentage distribution over a corpus."""
    counts: Dict[str, Dict[str, int]] = {
        prop: {c: 0 for c in _CLUSTERS} for prop in FIG9_PROPERTIES}
    for program in programs:
        props = extract_properties(program)
        for prop in FIG9_PROPERTIES:
            counts[prop][property_cluster(prop, props)] += 1
    total = max(1, len(programs))
    return {prop: {c: 100.0 * n / total for c, n in buckets.items()}
            for prop, buckets in counts.items()}


def distribution_spread(distribution: Mapping[str, Mapping[str, float]]
                        ) -> Dict[str, float]:
    """1 - normalized max-cluster share; higher = more uniform (Fig 9)."""
    spread = {}
    for prop, buckets in distribution.items():
        top = max(buckets.values()) if buckets else 100.0
        spread[prop] = 1.0 - (top / 100.0)
    return spread
