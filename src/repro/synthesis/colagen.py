"""COLA-Gen baseline generator (§6.4.1 / Table 4 / Figure 9).

COLA-Gen mutates only loop depth and the number of arrays; under its
default settings it produces a *single statement* inside a *perfect*
depth-2 nest with exactly one array read and a loop-carried dependence.
Because there is never a second statement, its corpus cannot trigger loop
fusion, distribution or shifting, and its property distributions collapse
into one or two clusters — the contrast LOOPRAG's parameter-driven method
is evaluated against.
"""

from __future__ import annotations

import random
from typing import List

from ..ir.affine import aff, var
from ..ir.domain import Domain, IterSpec
from ..ir.expr import Assignment, Bin, Const, Ref
from ..ir.program import ArrayDecl, Program, make_program
from ..ir.schedule import Schedule
from ..ir.statement import Statement
from .parameters import NAME_LIST, LoopParameters

_PARAM = "N"


class ColaGenSynthesizer:
    """Single-statement perfect-nest generator."""

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = base_seed

    def synthesize(self, index: int) -> Program:
        rng = random.Random(f"colagen/{self.base_seed}/{index}")
        params = LoopParameters.colagen_defaults(rng)
        margin = params.dep_distance
        iters = ["i1", "i2"]
        specs = [IterSpec(name, (aff(margin),),
                          (var(_PARAM) - (1 + margin),))
                 for name in iters]
        domain = Domain(tuple(specs))
        schedule = Schedule.canonical(iters, [0, 0, 0])

        target = NAME_LIST[0]
        # a third of the corpus stores transposed, which makes interchange
        # profitable — one of the three kinds COLA-Gen triggers (Table 4)
        transposed = rng.random() < 0.33
        first, second = ("i2", "i1") if transposed else ("i1", "i2")
        lhs = Ref(target, (var(first), var(second)))
        # the loop-carried dependence COLA-Gen always produces; an
        # anti-diagonal distance makes rectangular tiling illegal and
        # triggers PLuTo's skewing fallback (Table 4's skewing column)
        d1 = rng.randint(1, params.dep_distance)
        d2 = rng.choice((-1, 0, 1)) * rng.randint(0, params.dep_distance)
        carried = Ref(target, (var(first) - d1, var(second) + d2))
        rhs = carried
        extra_arrays: List[str] = []
        for extra in range(params.array_list - 1):
            name = NAME_LIST[1 + extra]
            extra_arrays.append(name)
            rhs = Bin("+", rhs, Ref(name, (var("i1"), var("i2"))))
        rhs = Bin("+", rhs, Const(float(rng.randint(1, 9))))

        stmt = Statement(name="S1", domain=domain, schedule=schedule,
                         body=Assignment(lhs, "=", rhs))
        decls = [ArrayDecl(name, (var(_PARAM), var(_PARAM)))
                 for name in [target] + extra_arrays]
        return make_program(f"cola{index:06d}", (_PARAM,), decls, [stmt],
                            outputs=[target])
