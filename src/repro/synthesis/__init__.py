"""Dataset synthesis: the parameter-driven generator and baselines."""

from .colagen import ColaGenSynthesizer
from .dataset import (DATASET_PARAMS, DEFAULT_DATASET_SIZE, Dataset,
                      DatasetEntry, build_dataset, cached_dataset,
                      dataset_signature, transformation_kinds)
from .generator import ExampleSynthesizer, SynthesisError
from .parameters import NAME_LIST, SIZE_LIST, LoopParameters
from .store import (dataset_from_payload, dataset_to_payload,
                    load_dataset, save_dataset)

__all__ = [
    "ColaGenSynthesizer",
    "DATASET_PARAMS", "DEFAULT_DATASET_SIZE", "Dataset", "DatasetEntry",
    "build_dataset", "cached_dataset", "dataset_signature",
    "transformation_kinds",
    "ExampleSynthesizer", "SynthesisError",
    "NAME_LIST", "SIZE_LIST", "LoopParameters",
    "dataset_from_payload", "dataset_to_payload",
    "load_dataset", "save_dataset",
]
