"""Dataset persistence.

The paper publishes its synthesized corpus as an artifact; this module
serialises a :class:`Dataset` to a single JSON file and loads it back.
Programs round-trip through the pseudo-C dialect (the printer emits it,
the Clan-substitute parser reads it), recipes through their argument
dicts — so a stored corpus is human-readable and diffable.

Only *original* example programs are stored as text; the optimized
versions are reconstructed by replaying the stored recipe, which keeps
the file compact and guarantees recipe/optimized consistency.

Format 2 additionally stores, per entry, the *structural* IR of both
programs (``repro.ir.serialize`` — the printer/parser round-trip is
readable but not faithful: schedule constants renumber, so replaying a
recipe against a re-parsed example can fail or drift), the exact
indexed texts (``example_text`` / ``optimized_text``) and the extracted
:class:`~repro.analysis.properties.LoopProperties`.  A loaded corpus is
therefore *bit-identical* to the built one — same fingerprints, same
retrieval ranks, same demonstration prompts — without re-running PLuTo,
recipe replay or property extraction.  This is what lets
``cached_dataset`` persist corpora across processes: the document built
by :func:`dataset_to_payload` is appended to the ``"datasets"`` stream
of the shared artifact store (``.repro_cache/store/datasets/``; see
:mod:`repro.storage`), with pre-sharding ``.repro_cache/datasets/*.json``
files absorbed transparently on first load.  Format-1 files still load
through the legacy parse-and-replay path; their texts and properties
are recomputed.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict, List

from ..analysis.properties import LoopProperties, extract_properties
from ..codegen import scop_body_to_c
from ..ir.parser import parse_scop
from ..ir.serialize import program_from_json, program_to_json
from ..transforms import TransformRecipe, TransformStep
from .dataset import Dataset, DatasetEntry

FORMAT_VERSION = 2
_READABLE_FORMATS = (1, 2)


def _program_source(entry: DatasetEntry) -> str:
    program = entry.example
    decls: List[str] = []
    for name, value in program.scalars:
        decls.append(f"scalars {name}={value};")
    for decl in program.arrays:
        dims = "".join(f"[{d}]" for d in decl.dims)
        out = " output" if decl.name in program.outputs else ""
        decls.append(f"array {decl.name}{dims}{out};")
    return (f"scop {program.name}({', '.join(program.params)}) {{\n"
            + "\n".join(decls) + "\n"
            + scop_body_to_c(program) + "\n}")


def _recipe_to_json(recipe: TransformRecipe) -> List[Dict[str, Any]]:
    return [{"kind": step.kind, "args": step.arg_dict()}
            for step in recipe.steps]


def _recipe_from_json(data: List[Dict[str, Any]]) -> TransformRecipe:
    steps = [TransformStep.make(item["kind"], **item["args"])
             for item in data]
    return TransformRecipe(tuple(steps))


def _properties_to_json(props: LoopProperties) -> Dict[str, Any]:
    payload = asdict(props)
    for name, value in payload.items():
        if isinstance(value, tuple):
            payload[name] = list(value)
    return payload


def _properties_from_json(data: Dict[str, Any]) -> LoopProperties:
    return LoopProperties(
        n_statements=int(data["n_statements"]),
        bounds_iter_refs=int(data["bounds_iter_refs"]),
        loop_depth=int(data["loop_depth"]),
        perfect=bool(data["perfect"]),
        n_dependences=int(data["n_dependences"]),
        dep_types=tuple(str(t) for t in data["dep_types"]),
        max_dep_distance=int(data["max_dep_distance"]),
        n_arrays=int(data["n_arrays"]),
        array_names=tuple(str(n) for n in data["array_names"]),
        total_array_cells=int(data["total_array_cells"]),
        index_signatures=tuple(str(s) for s in data["index_signatures"]),
    )


def dataset_to_payload(dataset: Dataset) -> Dict[str, Any]:
    """The format-2 JSON document for ``dataset``.

    This is both what :func:`save_dataset` writes to standalone files
    and what the persistent corpus cache appends to the ``"datasets"``
    stream of the shared artifact store — one payload format, two
    transports.
    """
    return {
        "format": FORMAT_VERSION,
        "generator": dataset.generator,
        "seed": dataset.seed,
        "entries": [
            {
                "name": entry.name,
                "source": _program_source(entry),  # human-readable view
                "recipe": _recipe_to_json(entry.recipe),
                "program": program_to_json(entry.example),
                "optimized": program_to_json(entry.optimized),
                "example_text": entry.example_text,
                "optimized_text": entry.optimized_text,
                "properties": _properties_to_json(entry.properties),
            }
            for entry in dataset
        ],
    }


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write a dataset to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(dataset_to_payload(dataset), handle, indent=1)


def load_dataset(path: str) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    with open(path) as handle:
        payload = json.load(handle)
    return dataset_from_payload(payload)


def dataset_from_payload(payload: Dict[str, Any]) -> Dataset:
    """Rebuild a :class:`Dataset` from its JSON document (both formats)."""
    if payload.get("format") not in _READABLE_FORMATS:
        raise ValueError(
            f"unsupported dataset format {payload.get('format')!r}")
    entries: List[DatasetEntry] = []
    for item in payload["entries"]:
        recipe = _recipe_from_json(item["recipe"])
        if "program" in item:  # format 2: exact structural round-trip
            example = program_from_json(item["program"])
            optimized = program_from_json(item["optimized"])
        else:  # format 1: parse the pseudo-C, replay the recipe
            example = parse_scop(item["source"]).renamed(item["name"])
            optimized = recipe.apply(example)
        properties = (_properties_from_json(item["properties"])
                      if "properties" in item
                      else extract_properties(example))
        entries.append(DatasetEntry(
            name=item["name"],
            example=example,
            example_text=item.get("example_text",
                                  scop_body_to_c(example)),
            optimized=optimized,
            optimized_text=item.get("optimized_text",
                                    scop_body_to_c(optimized)),
            recipe=recipe,
            properties=properties,
        ))
    return Dataset(entries=tuple(entries),
                   generator=payload["generator"],
                   seed=payload["seed"])
