"""Dataset persistence.

The paper publishes its synthesized corpus as an artifact; this module
serialises a :class:`Dataset` to a single JSON file and loads it back.
Programs round-trip through the pseudo-C dialect (the printer emits it,
the Clan-substitute parser reads it), recipes through their argument
dicts — so a stored corpus is human-readable and diffable.

Only *original* example programs are stored as text; the optimized
versions are reconstructed by replaying the stored recipe, which keeps
the file compact and guarantees recipe/optimized consistency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..analysis.properties import extract_properties
from ..codegen import scop_body_to_c
from ..ir.parser import parse_scop
from ..transforms import TransformRecipe, TransformStep
from .dataset import Dataset, DatasetEntry

FORMAT_VERSION = 1


def _program_source(entry: DatasetEntry) -> str:
    program = entry.example
    decls: List[str] = []
    for name, value in program.scalars:
        decls.append(f"scalars {name}={value};")
    for decl in program.arrays:
        dims = "".join(f"[{d}]" for d in decl.dims)
        out = " output" if decl.name in program.outputs else ""
        decls.append(f"array {decl.name}{dims}{out};")
    return (f"scop {program.name}({', '.join(program.params)}) {{\n"
            + "\n".join(decls) + "\n"
            + scop_body_to_c(program) + "\n}")


def _recipe_to_json(recipe: TransformRecipe) -> List[Dict[str, Any]]:
    return [{"kind": step.kind, "args": step.arg_dict()}
            for step in recipe.steps]


def _recipe_from_json(data: List[Dict[str, Any]]) -> TransformRecipe:
    steps = [TransformStep.make(item["kind"], **item["args"])
             for item in data]
    return TransformRecipe(tuple(steps))


def save_dataset(dataset: Dataset, path: str) -> None:
    """Write a dataset to ``path`` as JSON."""
    payload = {
        "format": FORMAT_VERSION,
        "generator": dataset.generator,
        "seed": dataset.seed,
        "entries": [
            {
                "name": entry.name,
                "source": _program_source(entry),
                "recipe": _recipe_to_json(entry.recipe),
            }
            for entry in dataset
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)


def load_dataset(path: str) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format {payload.get('format')!r}")
    entries: List[DatasetEntry] = []
    for item in payload["entries"]:
        example = parse_scop(item["source"])
        example = example.renamed(item["name"])
        recipe = _recipe_from_json(item["recipe"])
        optimized = recipe.apply(example)
        entries.append(DatasetEntry(
            name=item["name"],
            example=example,
            example_text=scop_body_to_c(example),
            optimized=optimized,
            optimized_text=scop_body_to_c(optimized),
            recipe=recipe,
            properties=extract_properties(example),
        ))
    return Dataset(entries=tuple(entries),
                   generator=payload["generator"],
                   seed=payload["seed"])
