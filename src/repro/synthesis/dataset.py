"""Dataset construction: (example, optimized version, data flow) triples.

Mirrors Figure 5's flow: the code generator synthesizes example codes, the
optimization compiler (PLuTo) produces optimized versions + the applied
recipe, and the analyzers (our dependence/property extraction standing in
for Clan + CAnDL) contribute the data-flow information.  Entries carry the
pseudo-C text of both versions — that text is what BM25 indexes and what
demonstration prompts show.

The paper synthesizes 135,364 examples; the generator here is the same
algorithm, only the default corpus size is scaled down (DESIGN.md) and is
configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..analysis.properties import LoopProperties, extract_properties
from ..codegen import scop_body_to_c
from ..compilers.pluto import Pluto
from ..ir.program import Program
from ..transforms import TransformRecipe
from .colagen import ColaGenSynthesizer
from .generator import ExampleSynthesizer, SynthesisError

#: parameter binding used when PLuTo optimizes examples (the paper's
#: -custom-context global-parameter specification)
DATASET_PARAMS = {"N": 1500}

DEFAULT_DATASET_SIZE = 300


@dataclass(frozen=True)
class DatasetEntry:
    """One (example, optimized, dataflow) triple."""

    name: str
    example: Program
    example_text: str
    optimized: Program
    optimized_text: str
    recipe: TransformRecipe
    properties: LoopProperties


@dataclass(frozen=True)
class Dataset:
    """An indexed corpus of demonstration candidates."""

    entries: tuple
    generator: str
    seed: int

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, idx: int) -> DatasetEntry:
        return self.entries[idx]


def build_dataset(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                  generator: str = "looprag",
                  optimizer: Optional[Pluto] = None,
                  progress: Optional[Callable[[int], None]] = None
                  ) -> Dataset:
    """Synthesize ``size`` examples and optimize each with PLuTo."""
    if generator == "looprag":
        synth = ExampleSynthesizer(base_seed=seed)
        make = synth.synthesize
    elif generator == "colagen":
        cola = ColaGenSynthesizer(base_seed=seed)
        make = cola.synthesize
    else:
        raise ValueError(f"unknown generator {generator!r}")
    pluto = optimizer or Pluto()

    entries: List[DatasetEntry] = []
    index = 0
    while len(entries) < size and index < size * 3:
        index += 1
        try:
            example = make(index)
        except SynthesisError:
            continue
        result = pluto.optimize(example, DATASET_PARAMS)
        if not result.ok:
            continue
        props = extract_properties(example)
        entries.append(DatasetEntry(
            name=example.name,
            example=example,
            example_text=scop_body_to_c(example),
            optimized=result.program,
            optimized_text=scop_body_to_c(result.program),
            recipe=result.recipe,
            properties=props,
        ))
        if progress is not None:
            progress(len(entries))
    return Dataset(entries=tuple(entries), generator=generator, seed=seed)


_DATASET_CACHE = {}


#: artifact-store stream holding persisted corpora (the result store's
#: sibling in the same `<cache-dir>/store/`; see `repro.storage`)
DATASETS_STREAM = "datasets"


def _dataset_cache_key(size: int, seed: int, generator: str) -> str:
    """Stream key of the persisted corpus.

    The key embeds :func:`dataset_signature`, so any edit to a
    corpus-determining module changes the key — stale corpora are
    simply never found again (``make clean-cache`` reclaims them, and
    ``repro store compact`` drops superseded ones).
    """
    sig = dataset_signature(size, seed, generator)
    return f"{generator}-n{size}-s{seed}-{sig}"


def _legacy_cache_file(size: int, seed: int, generator: str):
    """The pre-sharding per-corpus JSON file (migration source)."""
    from ..evaluation.store import cache_dir

    key = _dataset_cache_key(size, seed, generator)
    return cache_dir() / "datasets" / f"{key}.json"


def _load_persistent(size: int, seed: int, generator: str):
    from ..evaluation.store import active_artifacts

    store = active_artifacts()
    if store is None:
        return None
    from .store import dataset_from_payload

    key = _dataset_cache_key(size, seed, generator)
    payload = store.read(DATASETS_STREAM, key)
    if payload is not None:
        try:
            return dataset_from_payload(payload)
        except Exception:
            return None  # foreign/damaged payload: rebuild and rewrite
    # transparent migration: absorb a pre-sharding per-corpus file
    legacy = _legacy_cache_file(size, seed, generator)
    if not legacy.exists():
        return None
    import json

    try:
        with open(legacy) as handle:
            payload = json.load(handle)
        dataset = dataset_from_payload(payload)
    except Exception:
        return None  # corrupt/truncated file: rebuild and rewrite
    store.append(DATASETS_STREAM, key, payload)
    return dataset


def _store_persistent(dataset: Dataset, size: int, seed: int,
                      generator: str) -> None:
    from ..evaluation.store import active_artifacts

    store = active_artifacts()
    if store is None:
        return
    from .store import dataset_to_payload

    # one atomic append: concurrent processes racing on a cold cache
    # each publish a complete record (last write wins) instead of
    # interleaving fragments
    store.append(DATASETS_STREAM,
                 _dataset_cache_key(size, seed, generator),
                 dataset_to_payload(dataset))


def cached_dataset(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                   generator: str = "looprag") -> Dataset:
    """Memoized :func:`build_dataset` with an on-disk layer.

    Corpora are cached at two levels: in-process (experiments share
    corpora) and persistently in the ``"datasets"`` stream of the
    shared artifact store (``<cache-dir>/store/``) keyed by
    :func:`dataset_signature` — the ~tens-of-seconds synthesis +
    PLuTo-optimization build is paid once per machine, not once per
    process.  ``REPRO_CACHE_DIR`` moves the store,
    ``REPRO_STORE_BACKEND`` swaps its backend, and ``REPRO_NO_CACHE``
    disables the disk layer, exactly like the result store; corpora
    persisted by the pre-sharding layout (``<cache-dir>/datasets/``)
    are absorbed on first load.  Loaded corpora are bit-identical to
    built ones (exact
    indexed texts and properties are stored — see
    ``synthesis.store``), so retrieval ranks and demonstrations don't
    depend on which level served the corpus.
    """
    key = (size, seed, generator)
    dataset = _DATASET_CACHE.get(key)
    if dataset is None:
        dataset = _load_persistent(size, seed, generator)
        if dataset is None:
            dataset = build_dataset(size, seed, generator)
            _store_persistent(dataset, size, seed, generator)
        _DATASET_CACHE[key] = dataset
    return dataset


_SIGNATURE_CACHE = {}


def dataset_signature(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                      generator: str = "looprag") -> str:
    """Stable content signature of a synthesized corpus.

    The evaluation layer's persistent result store keys runs on this,
    and the on-disk corpus cache embeds it in its file names: two
    processes get the same signature iff they would build the same
    corpus — the (size, seed, generator) parameters *and* the sources
    of every corpus-determining module agree.  That closure covers the
    synthesizers, PLuTo and the compiler passes it drives, the
    transform implementations recipes replay, the dependence/property
    analyses (both engines), the C printer whose text BM25 indexes, and
    the (de)serialization itself.  Editing any of those changes the
    signature and invalidates stored corpora/results instead of
    silently serving stale ones.
    """
    key = (size, seed, generator)
    if key not in _SIGNATURE_CACHE:
        import hashlib
        import inspect
        import sys

        from ..analysis import dependences as dependences_module
        from ..analysis import properties as properties_module
        from ..analysis import vectorized as vectorized_module
        from ..codegen import cprinter as cprinter_module
        from ..compilers import passes as passes_module
        from ..compilers import pluto as pluto_module
        from ..ir import serialize as serialize_module
        from ..transforms import (fusion, interchange, parallel, recipe,
                                  scalar, skewing, tiling)
        from . import colagen as colagen_module
        from . import generator as generator_module
        from . import parameters as parameters_module
        from . import store as store_module

        digest = hashlib.sha256(repr(key).encode())
        for module in (generator_module, colagen_module,
                       parameters_module, pluto_module, passes_module,
                       dependences_module, vectorized_module,
                       properties_module, cprinter_module,
                       recipe, fusion, interchange, parallel, scalar,
                       skewing, tiling, serialize_module, store_module,
                       sys.modules[__name__]):
            digest.update(inspect.getsource(module).encode())
        _SIGNATURE_CACHE[key] = digest.hexdigest()[:16]
    return _SIGNATURE_CACHE[key]


def transformation_kinds(dataset: Dataset) -> dict:
    """Which transformation kinds the optimized corpus triggers (Table 4)."""
    counts = {}
    for entry in dataset:
        for kind in entry.recipe.kinds():
            counts[kind] = counts.get(kind, 0) + 1
    return counts
