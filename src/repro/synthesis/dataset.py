"""Dataset construction: (example, optimized version, data flow) triples.

Mirrors Figure 5's flow: the code generator synthesizes example codes, the
optimization compiler (PLuTo) produces optimized versions + the applied
recipe, and the analyzers (our dependence/property extraction standing in
for Clan + CAnDL) contribute the data-flow information.  Entries carry the
pseudo-C text of both versions — that text is what BM25 indexes and what
demonstration prompts show.

The paper synthesizes 135,364 examples; the generator here is the same
algorithm, only the default corpus size is scaled down (DESIGN.md) and is
configurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..analysis.properties import LoopProperties, extract_properties
from ..codegen import scop_body_to_c
from ..compilers.pluto import Pluto
from ..ir.program import Program
from ..transforms import TransformRecipe
from .colagen import ColaGenSynthesizer
from .generator import ExampleSynthesizer, SynthesisError

#: parameter binding used when PLuTo optimizes examples (the paper's
#: -custom-context global-parameter specification)
DATASET_PARAMS = {"N": 1500}

DEFAULT_DATASET_SIZE = 300


@dataclass(frozen=True)
class DatasetEntry:
    """One (example, optimized, dataflow) triple."""

    name: str
    example: Program
    example_text: str
    optimized: Program
    optimized_text: str
    recipe: TransformRecipe
    properties: LoopProperties


@dataclass(frozen=True)
class Dataset:
    """An indexed corpus of demonstration candidates."""

    entries: tuple
    generator: str
    seed: int

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, idx: int) -> DatasetEntry:
        return self.entries[idx]


def build_dataset(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                  generator: str = "looprag",
                  optimizer: Optional[Pluto] = None,
                  progress: Optional[Callable[[int], None]] = None
                  ) -> Dataset:
    """Synthesize ``size`` examples and optimize each with PLuTo."""
    if generator == "looprag":
        synth = ExampleSynthesizer(base_seed=seed)
        make = synth.synthesize
    elif generator == "colagen":
        cola = ColaGenSynthesizer(base_seed=seed)
        make = cola.synthesize
    else:
        raise ValueError(f"unknown generator {generator!r}")
    pluto = optimizer or Pluto()

    entries: List[DatasetEntry] = []
    index = 0
    while len(entries) < size and index < size * 3:
        index += 1
        try:
            example = make(index)
        except SynthesisError:
            continue
        result = pluto.optimize(example, DATASET_PARAMS)
        if not result.ok:
            continue
        props = extract_properties(example)
        entries.append(DatasetEntry(
            name=example.name,
            example=example,
            example_text=scop_body_to_c(example),
            optimized=result.program,
            optimized_text=scop_body_to_c(result.program),
            recipe=result.recipe,
            properties=props,
        ))
        if progress is not None:
            progress(len(entries))
    return Dataset(entries=tuple(entries), generator=generator, seed=seed)


_DATASET_CACHE = {}


def cached_dataset(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                   generator: str = "looprag") -> Dataset:
    """Session-cached :func:`build_dataset` (experiments share corpora)."""
    key = (size, seed, generator)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = build_dataset(size, seed, generator)
    return _DATASET_CACHE[key]


_SIGNATURE_CACHE = {}


def dataset_signature(size: int = DEFAULT_DATASET_SIZE, seed: int = 0,
                      generator: str = "looprag") -> str:
    """Stable content signature of a synthesized corpus.

    The evaluation layer's persistent result store keys runs on this:
    two processes get the same signature iff they would build the same
    corpus — the (size, seed, generator) parameters *and* the sources of
    the synthesizers and of PLuTo (which optimizes every entry) agree.
    Editing any of those modules changes the signature and invalidates
    stored results instead of silently serving stale ones.
    """
    key = (size, seed, generator)
    if key not in _SIGNATURE_CACHE:
        import hashlib
        import inspect
        import sys

        from ..compilers import pluto as pluto_module
        from . import colagen as colagen_module
        from . import generator as generator_module
        from . import parameters as parameters_module

        digest = hashlib.sha256(repr(key).encode())
        for module in (generator_module, colagen_module,
                       parameters_module, pluto_module,
                       sys.modules[__name__]):
            digest.update(inspect.getsource(module).encode())
        _SIGNATURE_CACHE[key] = digest.hexdigest()[:16]
    return _SIGNATURE_CACHE[key]


def transformation_kinds(dataset: Dataset) -> dict:
    """Which transformation kinds the optimized corpus triggers (Table 4)."""
    counts = {}
    for entry in dataset:
        for kind in entry.recipe.kinds():
            counts[kind] = counts.get(kind, 0) + 1
    return counts
