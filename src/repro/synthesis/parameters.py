"""The ten loop parameters of the parameter-driven method (Appendix A).

Each parameter controls one or more of the eleven loop properties
(Figure 4).  ``LoopParameters.sample`` draws one configuration with the
paper's ranges; every value is drawn from an explicit seeded RNG so corpora
are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class LoopParameters:
    """One sampled configuration of the ten parameters."""

    iterator_bound: float      # P(iterator appears in a loop bound)
    loop_depth: int            # max loop depth of the SCoP
    statement_index: int       # max loop branches per nesting level
    n_statements: int          # statements in the SCoP
    dep_distance: int          # max |distance| per dimension
    read_dep: int              # max WAR/RAW dependences per statement
    write_dep: float           # P(WAW dependence per statement)
    array_list: int            # alternative arrays per statement
    read_array: int            # max reads per statement
    array_indexes: int         # max |constant| in subscripts

    @staticmethod
    def sample(rng: random.Random) -> "LoopParameters":
        """Draw one configuration with Appendix A's ranges."""
        return LoopParameters(
            iterator_bound=rng.choice((0.2, 0.4, 0.6)),
            loop_depth=rng.randint(2, 4),
            statement_index=rng.randint(1, 3),
            n_statements=rng.randint(1, 6),
            dep_distance=rng.randint(1, 2),
            read_dep=rng.randint(1, 3),
            write_dep=rng.choice((0.2, 0.4, 0.6)),
            array_list=rng.randint(1, 3),
            read_array=rng.choice((1, 3, 5)),
            array_indexes=rng.randint(1, 2),
        )

    @staticmethod
    def colagen_defaults(rng: random.Random) -> "LoopParameters":
        """COLA-Gen's default settings (§6.4.1): depth 2, one read,
        a single statement in a perfect nest."""
        return LoopParameters(
            iterator_bound=0.0,
            loop_depth=2,
            statement_index=1,
            n_statements=1,
            dep_distance=rng.randint(1, 2),
            read_dep=1,
            write_dep=0.0,
            array_list=rng.randint(1, 3),
            read_array=1,
            array_indexes=1,
        )


#: Names available for synthesized arrays (the paper's NameList).
NAME_LIST: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F")

#: Alternative size expressions for arrays (the paper's SizeList), as
#: offsets over the global parameter N.
SIZE_LIST: Tuple[int, ...] = (0, 1, 2)
