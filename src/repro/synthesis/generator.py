"""Parameter-driven example-code synthesis (Algorithm 1, §4.1).

The generator turns one sampled :class:`LoopParameters` configuration into
a *legal* SCoP program:

1. a random loop tree gives the schedule matrix (loop depth / statement
   index / number of statements);
2. iterator bounds come from ``Iterator Bound`` (triangular bounds with the
   sampled probability) with safety margins derived from ``Dep Distance``
   and ``Array Indexes`` — this is the decoupling that prevents the
   "array index out of bounds" contradictions §4.1 describes;
3. arrays are assigned with *priority*: dependence-derived references
   (``Write Dep`` → WAW targets, ``Read Dep`` → WAR/RAW reads) override
   the random ``Array List`` choice;
4. dependence sources are always earlier statements, which together with
   the explicit cycle check makes circular dependences impossible
   (the contradiction-check mechanism);
5. the result is validated and interpreted once at a tiny size — any
   residual contradiction resamples the configuration.

Synthesized programs use one global parameter ``N``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir.affine import Affine, aff, var
from ..ir.domain import Domain, IterSpec
from ..ir.expr import Assignment, Bin, Const, Expr, Ref
from ..ir.program import ArrayDecl, Program, make_program
from ..ir.schedule import Schedule
from ..ir.statement import Statement
from ..ir.validate import check_program
from ..runtime.interpreter import run
from .parameters import NAME_LIST, SIZE_LIST, LoopParameters

_PARAM = "N"
_TINY = {"N": 9}
_MAX_LOOPS = 7
_MAX_ATTEMPTS = 12


class SynthesisError(RuntimeError):
    """The sampled configuration could not be realised legally."""


@dataclass
class _LoopNode:
    iterator: str
    depth: int
    upper_iter: Optional[str]  # triangular bound, when set
    children: List["_LoopNode"] = field(default_factory=list)
    items: List[object] = field(default_factory=list)  # statements + loops


@dataclass
class _StmtDraft:
    index: int
    path: List[_LoopNode]
    positions: List[int]
    lhs: Optional[Ref] = None
    reads: List[Ref] = field(default_factory=list)
    op: str = "="
    #: indices of statements this one's refs derive from (cycle check)
    sources: List[int] = field(default_factory=list)

    def iterators(self) -> List[str]:
        return [node.iterator for node in self.path]


#: loop-bound safety margin; all subscript constants are clamped to ±_MARGIN
#: so every access lands in [0, N-1] by construction (the bounds/indexes
#: decoupling of §4.1).  Small enough that the analysis binding N=6 still
#: yields populated domains for exact dependence concretization.
_MARGIN = 2


def _margin(params: LoopParameters) -> int:
    return _MARGIN


def _clamp_const(expr: Affine) -> Affine:
    """Clamp the constant part of a subscript to the safety margin."""
    if -_MARGIN <= expr.const <= _MARGIN:
        return expr
    clamped = max(-_MARGIN, min(_MARGIN, expr.const))
    return Affine(expr.terms, clamped)


def _build_tree(rng: random.Random, params: LoopParameters
                ) -> Tuple[_LoopNode, List[_LoopNode]]:
    """Random loop tree bounded by LoopDepth / StatementIndex."""
    counter = [0]
    all_nodes: List[_LoopNode] = []

    def make(depth: int, outer: List[str]) -> _LoopNode:
        counter[0] += 1
        name = f"i{counter[0]}"
        upper_iter = None
        if outer and rng.random() < params.iterator_bound:
            upper_iter = rng.choice(outer)
        node = _LoopNode(iterator=name, depth=depth, upper_iter=upper_iter)
        all_nodes.append(node)
        if depth < params.loop_depth and counter[0] < _MAX_LOOPS:
            for _ in range(rng.randint(0, params.statement_index)):
                if counter[0] >= _MAX_LOOPS:
                    break
                child = make(depth + 1, outer + [name])
                node.children.append(child)
        return node

    root = _LoopNode(iterator="<root>", depth=0, upper_iter=None)
    for _ in range(rng.randint(1, params.statement_index)):
        if counter[0] >= _MAX_LOOPS:
            break
        root.children.append(make(1, []))
    if not root.children:
        root.children.append(make(1, []))
    return root, all_nodes


def _paths(root: _LoopNode) -> Dict[str, List[_LoopNode]]:
    out: Dict[str, List[_LoopNode]] = {}

    def walk(node: _LoopNode, path: List[_LoopNode]) -> None:
        for child in node.children:
            out[child.iterator] = path + [child]
            walk(child, path + [child])

    walk(root, [])
    return out


def _common_prefix(a: Sequence[str], b: Sequence[str]) -> List[str]:
    out = []
    for x, y in zip(a, b):
        if x != y:
            break
        out.append(x)
    return out


def _shift_indices(indices: Sequence[Affine], common: Sequence[str],
                   own_iters: Sequence[str], rng: random.Random,
                   max_dist: int, margin: int) -> Tuple[Affine, ...]:
    """Re-express a source reference in the target statement's iterators.

    Common iterators get a bounded distance shift; deeper source iterators
    are replaced by the target's iterator at the same depth when available,
    else pinned to the safe constant ``margin``.
    """
    common_set = set(common)
    out: List[Affine] = []
    for index in indices:
        new = Affine.const_expr(index.const)
        for name, coeff in index.terms:
            if name in common_set:
                delta = rng.randint(-max_dist, max_dist)
                new = new + var(name, coeff) + delta * abs(coeff)
            else:
                depth_sub = own_iters[min(len(own_iters) - 1,
                                          len(common))] if own_iters else None
                if depth_sub is not None:
                    new = new + var(depth_sub, coeff)
                else:
                    new = new + coeff * margin
        out.append(_clamp_const(new))
    return tuple(out)


class ExampleSynthesizer:
    """Synthesizes one legal SCoP per seed."""

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = base_seed

    def synthesize(self, index: int,
                   params: Optional[LoopParameters] = None) -> Program:
        """Generate the ``index``-th example (deterministic per seed)."""
        last_error = "no attempt"
        for attempt in range(_MAX_ATTEMPTS):
            rng = random.Random(f"{self.base_seed}/{index}/{attempt}")
            config = params or LoopParameters.sample(rng)
            try:
                program = self._generate(rng, config, index)
            except SynthesisError as exc:
                last_error = str(exc)
                continue
            errors = check_program(program)
            if errors:
                last_error = errors[0]
                continue
            try:
                result = run(program, _TINY, budget=100_000)
            except Exception as exc:  # OOB / empty bounds -> resample
                last_error = str(exc)
                continue
            # numeric sanity: compounding *= chains grow exponentially,
            # which makes legal reorderings diverge (and would poison
            # differential testing downstream) — resample on any sign of
            # blow-up at the tiny size
            import numpy as np
            tame = all(np.isfinite(arr).all() and
                       np.abs(arr).max() < 1e3
                       for arr in result.outputs.values())
            if not tame:
                last_error = "numerically unstable outputs"
                continue
            return program
        raise SynthesisError(
            f"example {index}: no legal program in {_MAX_ATTEMPTS} "
            f"attempts ({last_error})")

    # ------------------------------------------------------------------
    def _generate(self, rng: random.Random, params: LoopParameters,
                  index: int) -> Program:
        margin = _margin(params)
        root, nodes = _build_tree(rng, params)
        paths = _paths(root)
        placeable = [n for n in nodes if n.depth >= 1]
        if not placeable:
            raise SynthesisError("empty loop tree")

        drafts: List[_StmtDraft] = []
        previous_node = None
        for si in range(params.n_statements):
            # co-locating statements in one loop body is how the fused
            # patterns that trigger fusion/shifting/distribution arise
            if previous_node is not None and rng.random() < 0.4:
                node = previous_node
            else:
                node = rng.choice(placeable)
            previous_node = node
            drafts.append(_StmtDraft(index=si,
                                     path=paths[node.iterator],
                                     positions=[]))
        # statements attach to their node in draft order
        for draft in drafts:
            draft.path[-1].items.append(draft)
        for node in nodes:
            for child in node.children:
                node.items.append(child)
        for child in root.children:
            root.items.append(child)

        arrays: Dict[str, int] = {}     # name -> rank
        writes: List[Tuple[int, Ref]] = []

        def fresh_ref(draft: _StmtDraft) -> Ref:
            name = rng.choice(NAME_LIST[:max(2, params.array_list + 1)])
            iters = draft.iterators()
            rank = arrays.get(name)
            if rank is None:
                rank = min(len(iters), rng.randint(1, 2))
                arrays[name] = rank
            chosen = rng.sample(iters, min(rank, len(iters)))
            while len(chosen) < rank:
                chosen.append(chosen[-1])
            indices = tuple(
                var(it) + rng.randint(-params.array_indexes,
                                      params.array_indexes)
                for it in chosen)
            return Ref(name, indices)

        def dep_ref(draft: _StmtDraft, sources: List[Tuple[int, Ref]]
                    ) -> Optional[Ref]:
            if not sources:
                return None
            src_idx, src_ref = rng.choice(sources)
            if src_idx in self._cycle(drafts, draft.index):
                # contradiction-check: dropping would-be circular deps
                return None
            src_iters = drafts[src_idx].iterators()
            common = _common_prefix(src_iters, draft.iterators())
            indices = _shift_indices(src_ref.indices, common,
                                     draft.iterators(), rng,
                                     params.dep_distance, margin)
            draft.sources.append(src_idx)
            return Ref(src_ref.array, indices)

        for draft in drafts:
            earlier = [(i, r) for i, r in writes if i < draft.index]
            # priority: dependence-related parameters override Array List
            lhs = None
            if rng.random() < params.write_dep:
                lhs = dep_ref(draft, earlier)
            if lhs is None:
                lhs = fresh_ref(draft)
            draft.lhs = lhs
            n_reads = rng.randint(1, params.read_array)
            n_dep_reads = min(n_reads, rng.randint(1, params.read_dep))
            for _ in range(n_dep_reads):
                ref = dep_ref(draft, earlier + [(draft.index, lhs)])
                if ref is not None:
                    draft.reads.append(ref)
            while len(draft.reads) < n_reads:
                draft.reads.append(fresh_ref(draft))
            draft.op = rng.choice(("=", "+=", "-=", "*="))
            writes.append((draft.index, lhs))

        return self._materialise(rng, params, drafts, root, arrays,
                                 margin, index)

    @staticmethod
    def _cycle(drafts: List[_StmtDraft], start: int) -> set:
        """Statements reachable from ``start`` through dep sources."""
        seen = set()
        stack = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(drafts[node].sources)
        return seen

    def _materialise(self, rng: random.Random, params: LoopParameters,
                     drafts: List[_StmtDraft], root: _LoopNode,
                     arrays: Dict[str, int], margin: int,
                     index: int) -> Program:
        # schedule positions from the item order at each node
        positions: Dict[int, List[int]] = {}

        def walk(node: _LoopNode, prefix: List[int]) -> None:
            for pos, item in enumerate(node.items):
                if isinstance(item, _StmtDraft):
                    positions[item.index] = prefix + [pos]
                else:
                    walk(item, prefix + [pos])

        walk(root, [])

        # emit statements in textual (schedule) order so names match what
        # a print→parse round-trip assigns — recipes stored in a dataset
        # stay replayable on the reparsed program
        drafts = sorted(drafts, key=lambda d: positions[d.index])

        statements: List[Statement] = []
        for order, draft in enumerate(drafts):
            specs = []
            for node in draft.path:
                upper = (var(node.upper_iter) if node.upper_iter
                         else var(_PARAM) - (1 + margin))
                specs.append(IterSpec(node.iterator, (aff(margin),),
                                      (upper,)))
            domain = Domain(tuple(specs))
            sched = Schedule.canonical(draft.iterators(),
                                       positions[draft.index])
            rhs: Expr = draft.reads[0]
            for ref in draft.reads[1:]:
                rhs = Bin(rng.choice("+-*"), rhs, ref)
            if rng.random() < 0.3:
                rhs = Bin(rng.choice("+-*"), rhs,
                          Const(float(rng.randint(2, 9))))
            statements.append(Statement(
                name=f"S{order + 1}", domain=domain, schedule=sched,
                body=Assignment(draft.lhs, draft.op, rhs)))

        referenced = set()
        for stmt in statements:
            for ref, _w in stmt.all_refs():
                referenced.add(ref.array)
        decls = []
        for name in sorted(referenced):
            rank = arrays.get(name, 1)
            size = var(_PARAM) + rng.choice(SIZE_LIST)
            decls.append(ArrayDecl(name, tuple([size] * rank)))
        written = sorted({s.write().array for s in statements})
        return make_program(f"ex{index:06d}", (_PARAM,), decls, statements,
                            outputs=written)
