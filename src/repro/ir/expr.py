"""Computation expressions for statement bodies.

SCoP statement bodies are scalar expressions over array references with
affine subscripts, numeric constants and global scalar parameters (e.g.
``alpha``/``beta`` in PolyBench).  The interpreter evaluates these trees;
the cost model counts their operations; the printer renders them as C.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Tuple, Union

from .affine import Affine

_FUNCS: dict = {
    "sqrt": lambda x: math.sqrt(abs(x)),
    "exp": lambda x: math.exp(min(x, 50.0)),
    "fabs": abs,
    "pow2": lambda x: x * x,
}


class Expr:
    """Base class for body expressions."""

    def reads(self) -> Iterator["Ref"]:
        """Yield every array reference in the expression."""
        return iter(())

    def op_count(self) -> int:
        """Number of arithmetic operations (for the cost model)."""
        return 0

    def evaluate(self, env: Mapping[str, int], scalars: Mapping[str, float],
                 storage: Mapping[str, "object"]) -> float:
        raise NotImplementedError

    def rename_iters(self, mapping: Mapping[str, str]) -> "Expr":
        raise NotImplementedError

    def rename_arrays(self, mapping: Mapping[str, str]) -> "Expr":
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    """Numeric literal."""

    value: float

    def evaluate(self, env, scalars, storage):
        return self.value

    def rename_iters(self, mapping):
        return self

    def rename_arrays(self, mapping):
        return self

    def __str__(self) -> str:
        if self.value == int(self.value):
            return str(int(self.value))
        return repr(self.value)


@dataclass(frozen=True)
class Scalar(Expr):
    """Global scalar parameter such as ``alpha``."""

    name: str

    def evaluate(self, env, scalars, storage):
        return scalars[self.name]

    def rename_iters(self, mapping):
        return self

    def rename_arrays(self, mapping):
        return self

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IterExpr(Expr):
    """An affine expression of iterators/parameters used as a value."""

    expr: Affine

    def evaluate(self, env, scalars, storage):
        return float(self.expr.evaluate(env))

    def op_count(self) -> int:
        return max(0, len(self.expr.terms) - 1)

    def rename_iters(self, mapping):
        return IterExpr(self.expr.rename(dict(mapping)))

    def rename_arrays(self, mapping):
        return self

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class Ref(Expr):
    """Array reference ``A[f1(i)][f2(i)]...`` with affine subscripts."""

    array: str
    indices: Tuple[Affine, ...]

    def reads(self):
        yield self

    def op_count(self) -> int:
        return 0

    def index_values(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(ix.evaluate(env) for ix in self.indices)

    def evaluate(self, env, scalars, storage):
        return storage[self.array][self.index_values(env)]

    def rename_iters(self, mapping):
        m = dict(mapping)
        return Ref(self.array, tuple(ix.rename(m) for ix in self.indices))

    def rename_arrays(self, mapping):
        return Ref(mapping.get(self.array, self.array), self.indices)

    def __str__(self) -> str:
        return self.array + "".join(f"[{ix}]" for ix in self.indices)


@dataclass(frozen=True)
class Bin(Expr):
    """Binary arithmetic operation."""

    op: str  # one of + - * /
    lhs: Expr
    rhs: Expr

    def reads(self):
        yield from self.lhs.reads()
        yield from self.rhs.reads()

    def op_count(self) -> int:
        return 1 + self.lhs.op_count() + self.rhs.op_count()

    def evaluate(self, env, scalars, storage):
        a = self.lhs.evaluate(env, scalars, storage)
        b = self.rhs.evaluate(env, scalars, storage)
        if self.op == "+":
            return a + b
        if self.op == "-":
            return a - b
        if self.op == "*":
            return a * b
        if self.op == "/":
            return a / b if b != 0 else 0.0
        raise ValueError(f"unknown operator {self.op!r}")

    def rename_iters(self, mapping):
        return Bin(self.op, self.lhs.rename_iters(mapping),
                   self.rhs.rename_iters(mapping))

    def rename_arrays(self, mapping):
        return Bin(self.op, self.lhs.rename_arrays(mapping),
                   self.rhs.rename_arrays(mapping))

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class Neg(Expr):
    """Unary negation."""

    operand: Expr

    def reads(self):
        yield from self.operand.reads()

    def op_count(self) -> int:
        return 1 + self.operand.op_count()

    def evaluate(self, env, scalars, storage):
        return -self.operand.evaluate(env, scalars, storage)

    def rename_iters(self, mapping):
        return Neg(self.operand.rename_iters(mapping))

    def rename_arrays(self, mapping):
        return Neg(self.operand.rename_arrays(mapping))

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Expr):
    """Pure math function call (sqrt/exp/fabs) — side-effect free per SCoP."""

    func: str
    arg: Expr

    def reads(self):
        yield from self.arg.reads()

    def op_count(self) -> int:
        return 4 + self.arg.op_count()  # transcendental ops cost a few flops

    def evaluate(self, env, scalars, storage):
        fn: Callable[[float], float] = _FUNCS[self.func]
        return fn(self.arg.evaluate(env, scalars, storage))

    def rename_iters(self, mapping):
        return Call(self.func, self.arg.rename_iters(mapping))

    def rename_arrays(self, mapping):
        return Call(self.func, self.arg.rename_arrays(mapping))

    def __str__(self) -> str:
        return f"{self.func}({self.arg})"


#: Assignment operators supported by statement bodies.
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


@dataclass(frozen=True)
class Assignment:
    """``lhs op rhs`` where lhs is an array reference.

    Compound operators make the lhs an implicit read as well, which is how
    WAR/RAW dependences on the written array arise (the ``syrk`` example of
    the paper, §2.1).
    """

    lhs: Ref
    op: str
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in ASSIGN_OPS:
            raise ValueError(f"unsupported assignment operator {self.op!r}")

    def read_refs(self) -> Tuple[Ref, ...]:
        reads = tuple(self.rhs.reads())
        if self.op != "=":
            reads = (self.lhs,) + reads
        return reads

    def write_ref(self) -> Ref:
        return self.lhs

    def op_count(self) -> int:
        extra = 0 if self.op == "=" else 1
        return self.rhs.op_count() + extra

    def rename_iters(self, mapping: Mapping[str, str]) -> "Assignment":
        return Assignment(self.lhs.rename_iters(mapping), self.op,
                          self.rhs.rename_iters(mapping))

    def rename_arrays(self, mapping: Mapping[str, str]) -> "Assignment":
        return Assignment(self.lhs.rename_arrays(mapping), self.op,
                          self.rhs.rename_arrays(mapping))

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs};"


def add(lhs: Expr, rhs: Expr) -> Bin:
    return Bin("+", lhs, rhs)


def sub(lhs: Expr, rhs: Expr) -> Bin:
    return Bin("-", lhs, rhs)


def mul(lhs: Expr, rhs: Expr) -> Bin:
    return Bin("*", lhs, rhs)


def div(lhs: Expr, rhs: Expr) -> Bin:
    return Bin("/", lhs, rhs)
