"""Schedule trees — the hierarchical view of 2d+1 schedules (§2.1).

The paper notes that loop schedules "can be represented in various forms
(e.g., 2d+1 form and schedule tree)".  This module converts between the
flat 2d+1 vectors the IR stores and an explicit tree:

* a :class:`BandNode` is one loop dimension shared by its subtree,
* a :class:`SequenceNode` orders children by their text constant,
* a :class:`LeafNode` is one statement.

The tree makes the program's fusion structure visible at a glance (which
statements share which loops) and is what the property extractor's
perfect/imperfect classification and the pretty-printer reason about
implicitly; here it is a first-class, testable structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from .program import Program
from .schedule import ConstDim, SchedDim, TileDim


@dataclass(frozen=True)
class LeafNode:
    """A single statement."""

    statement: str

    def statements(self) -> Tuple[str, ...]:
        return (self.statement,)

    def render(self, indent: int = 0) -> List[str]:
        return [" " * indent + f"leaf {self.statement}"]


@dataclass(frozen=True)
class BandNode:
    """One loop dimension (a band of width 1) over a subtree."""

    expr: str
    is_tile: bool
    child: "TreeNode"

    def statements(self) -> Tuple[str, ...]:
        return self.child.statements()

    def render(self, indent: int = 0) -> List[str]:
        tag = "tile-band" if self.is_tile else "band"
        return ([" " * indent + f"{tag} [{self.expr}]"]
                + self.child.render(indent + 2))


@dataclass(frozen=True)
class SequenceNode:
    """Children executed in order (the text constants of 2d+1)."""

    children: Tuple["TreeNode", ...]

    def statements(self) -> Tuple[str, ...]:
        out: List[str] = []
        for child in self.children:
            out.extend(child.statements())
        return tuple(out)

    def render(self, indent: int = 0) -> List[str]:
        lines = [" " * indent + "sequence"]
        for child in self.children:
            lines.extend(child.render(indent + 2))
        return lines


TreeNode = Union[LeafNode, BandNode, SequenceNode]


def _signature(dim: SchedDim) -> Tuple[str, str]:
    if isinstance(dim, ConstDim):
        return ("const", str(dim.value))
    if isinstance(dim, TileDim):
        return ("tile", f"{dim.expr}/{dim.size}")
    return ("loop", str(dim.expr))


def schedule_tree(program: Program) -> TreeNode:
    """Build the schedule tree of a program.

    Statements sharing equal dimensions up to a level share that subtree;
    differing constants open a sequence, differing loop expressions open
    sibling bands.
    """
    schedules = program.aligned_schedules()
    members = list(range(len(program.statements)))
    return _build(program, schedules, members, 0)


def _build(program: Program, schedules, members: List[int],
           col: int) -> TreeNode:
    width = program.schedule_width
    if len(members) == 1 and col >= len(schedules[members[0]].dims):
        return LeafNode(program.statements[members[0]].name)
    if col >= width:
        if len(members) == 1:
            return LeafNode(program.statements[members[0]].name)
        return SequenceNode(tuple(
            LeafNode(program.statements[si].name) for si in members))

    dims = [schedules[si].dims[col] for si in members]
    signatures = [_signature(d) for d in dims]

    if all(kind == "const" for kind, _ in signatures):
        groups: Dict[int, List[int]] = {}
        for si, dim in zip(members, dims):
            groups.setdefault(dim.value, []).append(si)
        if len(groups) == 1:
            return _build(program, schedules, members, col + 1)
        children = tuple(
            _build(program, schedules, groups[value], col + 1)
            for value in sorted(groups))
        return SequenceNode(children)

    if len(set(signatures)) == 1 and signatures[0][0] != "const":
        kind, text = signatures[0]
        child = _build(program, schedules, members, col + 1)
        return BandNode(expr=text, is_tile=(kind == "tile"), child=child)

    # mixed signatures at one level: group consecutive runs in list order
    runs: List[Tuple[Tuple[str, str], List[int]]] = []
    for si, sig in zip(members, signatures):
        if runs and runs[-1][0] == sig:
            runs[-1][1].append(si)
        else:
            runs.append((sig, [si]))
    children = tuple(_build_run(program, schedules, run, sig, col)
                     for sig, run in runs)
    if len(children) == 1:
        return children[0]
    return SequenceNode(children)


def _build_run(program: Program, schedules, members: List[int],
               sig: Tuple[str, str], col: int) -> TreeNode:
    kind, text = sig
    if kind == "const":
        return _build(program, schedules, members, col + 1)
    child = _build(program, schedules, members, col + 1)
    return BandNode(expr=text, is_tile=(kind == "tile"), child=child)


def render_tree(program: Program) -> str:
    """Human-readable schedule tree."""
    return "\n".join(schedule_tree(program).render())


def fusion_partners(program: Program) -> Dict[str, Tuple[str, ...]]:
    """For each statement, the statements sharing its innermost band."""
    tree = schedule_tree(program)
    partners: Dict[str, Tuple[str, ...]] = {}

    def walk(node: TreeNode, band_members: Tuple[str, ...]) -> None:
        if isinstance(node, LeafNode):
            partners[node.statement] = band_members
        elif isinstance(node, BandNode):
            walk(node.child, node.statements())
        else:
            for child in node.children:
                walk(child, band_members)

    walk(tree, tree.statements())
    return partners


def tree_depth(program: Program, statement: str) -> int:
    """Number of bands above one statement (its loop depth in the tree)."""
    tree = schedule_tree(program)

    def walk(node: TreeNode, depth: int) -> int:
        if isinstance(node, LeafNode):
            return depth if node.statement == statement else -1
        if isinstance(node, BandNode):
            return walk(node.child, depth + 1)
        for child in node.children:
            found = walk(child, depth)
            if found >= 0:
                return found
        return -1

    found = walk(tree, 0)
    if found < 0:
        raise KeyError(statement)
    return found
