"""Iteration domains for SCoP statements.

A domain is an ordered list of iterators, each bounded below by the max of
a set of affine expressions and above by the min of another set — exactly
the loop nests a SCoP permits.  Bounds of iterator ``k`` may mention global
parameters and iterators declared before ``k`` (triangular, skewed and
shifted spaces are all expressible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .affine import Affine, AffineLike, aff


@dataclass(frozen=True)
class IterSpec:
    """One loop iterator: ``max(lowers) <= name <= min(uppers)`` (inclusive)."""

    name: str
    lowers: Tuple[Affine, ...]
    uppers: Tuple[Affine, ...]

    @staticmethod
    def bounded(name: str, lower: AffineLike, upper: AffineLike) -> "IterSpec":
        return IterSpec(name, (aff(lower),), (aff(upper),))

    def lower_value(self, env: Mapping[str, int]) -> int:
        return max(e.evaluate(env) for e in self.lowers)

    def upper_value(self, env: Mapping[str, int]) -> int:
        return min(e.evaluate(env) for e in self.uppers)

    def rename(self, mapping: Mapping[str, str]) -> "IterSpec":
        m = dict(mapping)
        return IterSpec(m.get(self.name, self.name),
                        tuple(e.rename(m) for e in self.lowers),
                        tuple(e.rename(m) for e in self.uppers))

    def __str__(self) -> str:
        lo = " ,".join(str(e) for e in self.lowers)
        hi = ", ".join(str(e) for e in self.uppers)
        if len(self.lowers) > 1:
            lo = f"max({lo})"
        if len(self.uppers) > 1:
            hi = f"min({hi})"
        return f"{lo} <= {self.name} <= {hi}"


@dataclass(frozen=True)
class Domain:
    """Ordered iterator list forming a (possibly non-rectangular) space."""

    iters: Tuple[IterSpec, ...]

    @staticmethod
    def of(*specs: IterSpec) -> "Domain":
        return Domain(tuple(specs))

    @property
    def depth(self) -> int:
        return len(self.iters)

    @property
    def iterator_names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.iters)

    def spec(self, name: str) -> IterSpec:
        for s in self.iters:
            if s.name == name:
                return s
        raise KeyError(name)

    def validate(self, params: Sequence[str]) -> None:
        """Check the SCoP well-formedness rule on bound references."""
        visible = set(params)
        for spec in self.iters:
            for bound in spec.lowers + spec.uppers:
                unknown = set(bound.variables()) - visible
                if unknown:
                    raise ValueError(
                        f"bound of {spec.name} references undefined "
                        f"names {sorted(unknown)}")
            visible.add(spec.name)

    def enumerate(self, params: Mapping[str, int]) -> Iterator[Dict[str, int]]:
        """Yield every point of the domain as an ``{iterator: value}`` dict.

        Points are produced in original (source) lexicographic order; the
        interpreter re-sorts them by schedule, so this order carries no
        semantic weight.
        """
        env: Dict[str, int] = dict(params)

        def walk(level: int) -> Iterator[Dict[str, int]]:
            if level == len(self.iters):
                yield {s.name: env[s.name] for s in self.iters}
                return
            spec = self.iters[level]
            lo = spec.lower_value(env)
            hi = spec.upper_value(env)
            for value in range(lo, hi + 1):
                env[spec.name] = value
                yield from walk(level + 1)
            env.pop(spec.name, None)

        yield from walk(0)

    def point_count(self, params: Mapping[str, int]) -> int:
        """Exact number of points (by enumeration of the outer levels)."""
        return sum(1 for _ in self.enumerate(params))

    def contains(self, env: Mapping[str, int]) -> bool:
        """True when ``env`` (iterators + params) lies inside the domain."""
        for spec in self.iters:
            value = env[spec.name]
            if value < spec.lower_value(env) or value > spec.upper_value(env):
                return False
        return True

    def extent_hint(self, name: str, params: Mapping[str, int]) -> int:
        """Approximate trip count of one iterator for the cost model.

        Bounds referencing outer iterators are estimated by substituting the
        midpoint of those iterators' own (recursively estimated) ranges —
        i.e. a triangular loop gets roughly half the rectangular extent.
        """
        mids: Dict[str, int] = dict(params)
        for spec in self.iters:
            lo = max(e.evaluate(mids) for e in spec.lowers)
            hi = min(e.evaluate(mids) for e in spec.uppers)
            mids[spec.name] = (lo + hi) // 2
            if spec.name == name:
                return max(0, hi - lo + 1)
        raise KeyError(name)

    def rename(self, mapping: Mapping[str, str]) -> "Domain":
        return Domain(tuple(s.rename(mapping) for s in self.iters))

    def __str__(self) -> str:
        return "{ " + " and ".join(str(s) for s in self.iters) + " }"


def rectangular(names: Sequence[str],
                uppers: Sequence[AffineLike],
                lowers: Optional[Sequence[AffineLike]] = None) -> Domain:
    """Convenience constructor for a rectangular domain ``lo <= i <= hi``."""
    if lowers is None:
        lowers = [0] * len(names)
    specs: List[IterSpec] = []
    for name, lo, hi in zip(names, lowers, uppers):
        specs.append(IterSpec.bounded(name, lo, hi))
    return Domain(tuple(specs))
