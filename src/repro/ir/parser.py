"""Parser for a C-like SCoP language (the Clan substitute).

Benchmark kernels and synthesized example codes are written in a small
C-like dialect and parsed into :class:`~repro.ir.program.Program`.  This
plays the role of Clan in the paper's implementation (§5): extracting
statements, domains, canonical 2d+1 schedules and array accesses from
source text.

Grammar (informal)::

    scop NAME '(' param (',' param)* ')' '{' decl* stmt* '}'
    decl  := 'scalars' (ID '=' NUM)+ ';'
           | 'array' ID ('[' affine ']')+ ('init' ID)? ('output')? ';'
    stmt  := for | if | assign
    for   := 'for' '(' ID '=' lo ';' ID ('<='|'<') hi ';' ID '++' ')' body
    if    := 'if' '(' cond ('&&' cond)* ')' body
    assign:= ref ('='|'+='|'-='|'*='|'/=') expr ';'
    lo    := affine | 'max' '(' affine ',' affine ')'
    hi    := affine | 'min' '(' affine ',' affine ')'

Bounds and subscripts must be affine in parameters and surrounding
iterators; anything else raises :class:`ScopSyntaxError` — the same class
of rejection Clan performs on non-SCoP inputs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .affine import Affine, aff
from .domain import Domain, IterSpec
from .expr import (Assignment, Bin, Call, Const, Expr, IterExpr, Neg, Ref,
                   Scalar)
from .program import ArrayDecl, Program, make_program
from .schedule import ConstDim, LoopDim, Schedule
from .statement import Statement


class ScopSyntaxError(ValueError):
    """Raised on malformed or non-SCoP input."""


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|//[^\n]*|/\*.*?\*/)
  | (?P<num>\d+\.\d+|\d+)
  | (?P<id>[A-Za-z_]\w*)
  | (?P<op><=|>=|==|\+\+|\+=|-=|\*=|/=|&&|[-+*/%(){}\[\];,=<>])
""", re.VERBOSE | re.DOTALL)

_KEYWORDS = {"scop", "for", "if", "array", "scalars", "init", "output",
             "min", "max"}
_FUNCS = {"sqrt", "exp", "fabs", "pow2"}


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise ScopSyntaxError(f"bad character {text[pos]!r} at {pos}")
        pos = m.end()
        if m.lastgroup != "ws":
            tokens.append(m.group())
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.pos = 0
        self.params: Tuple[str, ...] = ()
        self.scalars: Dict[str, float] = {}
        self.arrays: List[ArrayDecl] = []
        self.outputs: List[str] = []
        self.statements: List[Statement] = []
        self._stmt_counter = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> Optional[str]:
        idx = self.pos + ahead
        return self.tokens[idx] if idx < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise ScopSyntaxError("unexpected end of input")
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ScopSyntaxError(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Program:
        self.expect("scop")
        name = self.next()
        self.expect("(")
        params: List[str] = []
        if not self.accept(")"):
            params.append(self.next())
            while self.accept(","):
                params.append(self.next())
            self.expect(")")
        self.params = tuple(params)
        self.expect("{")
        while self.peek() in ("array", "scalars"):
            self.parse_decl()
        body: List[Statement] = []
        position = [0]
        while self.peek() != "}":
            self.parse_stmt((), (), position)
        self.expect("}")
        if self.pos != len(self.tokens):
            raise ScopSyntaxError(f"trailing tokens after scop: "
                                  f"{self.tokens[self.pos:][:5]}")
        if not self.statements:
            raise ScopSyntaxError("scop contains no statements")
        # output markers on arrays this kernel never writes are inert for
        # differential testing; drop them so outputs == checked arrays
        written = {s.write().array for s in self.statements}
        outputs = [o for o in self.outputs if o in written] or None
        return make_program(name, self.params, self.arrays, self.statements,
                            scalars=self.scalars, outputs=outputs)

    def parse_decl(self) -> None:
        kw = self.next()
        if kw == "scalars":
            while self.peek() != ";":
                sname = self.next()
                self.expect("=")
                self.scalars[sname] = float(self._number())
            self.expect(";")
            return
        # array decl
        aname = self.next()
        dims: List[Affine] = []
        while self.accept("["):
            dims.append(self.parse_affine())
            self.expect("]")
        if not dims:
            raise ScopSyntaxError(f"array {aname} needs dimensions")
        init = "poly"
        if self.accept("init"):
            init = self.next()
        if self.accept("output"):
            self.outputs.append(aname)
        self.expect(";")
        self.arrays.append(ArrayDecl(aname, tuple(dims), init))

    def _number(self) -> str:
        tok = self.next()
        neg = False
        if tok == "-":
            neg = True
            tok = self.next()
        if not re.fullmatch(r"\d+(\.\d+)?", tok):
            raise ScopSyntaxError(f"expected number, got {tok!r}")
        return "-" + tok if neg else tok

    # -- statements -------------------------------------------------------
    def parse_stmt(self, iters: Tuple[IterSpec, ...],
                   guards: Tuple[Affine, ...],
                   position: List[int]) -> None:
        tok = self.peek()
        if tok == "for":
            self.parse_for(iters, guards, position)
        elif tok == "if":
            self.parse_if(iters, guards, position)
        elif tok == "{":
            self.next()
            while self.peek() != "}":
                self.parse_stmt(iters, guards, position)
            self.expect("}")
        else:
            self.parse_assign(iters, guards, position)

    def parse_for(self, iters: Tuple[IterSpec, ...],
                  guards: Tuple[Affine, ...],
                  position: List[int]) -> None:
        self.expect("for")
        self.expect("(")
        iname = self.next()
        if iname in {s.name for s in iters}:
            raise ScopSyntaxError(f"iterator {iname} shadows outer loop")
        self.expect("=")
        lowers = self.parse_bound("max")
        self.expect(";")
        cname = self.next()
        if cname != iname:
            raise ScopSyntaxError(
                f"loop condition on {cname!r}, expected {iname!r}")
        cmp_op = self.next()
        uppers = self.parse_bound("min")
        if cmp_op == "<":
            uppers = tuple(u - 1 for u in uppers)
        elif cmp_op != "<=":
            raise ScopSyntaxError(f"unsupported loop comparison {cmp_op!r}")
        self.expect(";")
        stepname = self.next()
        if stepname != iname:
            raise ScopSyntaxError("loop increment must update the iterator")
        self.expect("++")
        self.expect(")")
        spec = IterSpec(iname, lowers, uppers)
        inner_position = position + [0]
        if self.accept("{"):
            while self.peek() != "}":
                self.parse_stmt(iters + (spec,), guards, inner_position)
            self.expect("}")
        else:
            self.parse_stmt(iters + (spec,), guards, inner_position)
        position[-1] += 1

    def parse_bound(self, kind: str) -> Tuple[Affine, ...]:
        if self.peek() == kind:
            self.next()
            self.expect("(")
            exprs = [self.parse_affine()]
            while self.accept(","):
                exprs.append(self.parse_affine())
            self.expect(")")
            return tuple(exprs)
        return (self.parse_affine(),)

    def parse_if(self, iters: Tuple[IterSpec, ...],
                 guards: Tuple[Affine, ...],
                 position: List[int]) -> None:
        self.expect("if")
        self.expect("(")
        new_guards = list(guards)
        new_guards.extend(self.parse_cond())
        while self.accept("&&"):
            new_guards.extend(self.parse_cond())
        self.expect(")")
        if self.accept("{"):
            while self.peek() != "}":
                self.parse_stmt(iters, tuple(new_guards), position)
            self.expect("}")
        else:
            self.parse_stmt(iters, tuple(new_guards), position)

    def parse_cond(self) -> List[Affine]:
        """Parse ``a CMP b`` into guard expressions ``g >= 0``."""
        lhs = self.parse_affine()
        op = self.next()
        rhs = self.parse_affine()
        if op == "<=":
            return [rhs - lhs]
        if op == "<":
            return [rhs - lhs - 1]
        if op == ">=":
            return [lhs - rhs]
        if op == ">":
            return [lhs - rhs - 1]
        if op == "==":
            return [lhs - rhs, rhs - lhs]
        raise ScopSyntaxError(f"unsupported condition operator {op!r}")

    def parse_assign(self, iters: Tuple[IterSpec, ...],
                     guards: Tuple[Affine, ...],
                     position: List[int]) -> None:
        lhs = self.parse_ref()
        op = self.next()
        if op not in ("=", "+=", "-=", "*=", "/="):
            raise ScopSyntaxError(f"expected assignment, got {op!r}")
        rhs = self.parse_expr({s.name for s in iters})
        self.expect(";")
        self._stmt_counter += 1
        sname = f"S{self._stmt_counter}"
        domain = Domain(iters)
        schedule = Schedule.canonical(
            [s.name for s in iters], position)
        self.statements.append(Statement(
            name=sname, domain=domain, schedule=schedule,
            body=Assignment(lhs, op, rhs), guards=guards))
        position[-1] += 1

    # -- expressions ------------------------------------------------------
    def parse_ref(self) -> Ref:
        aname = self.next()
        indices: List[Affine] = []
        while self.accept("["):
            indices.append(self.parse_affine())
            self.expect("]")
        if not indices:
            raise ScopSyntaxError(f"scalar write to {aname!r} not allowed "
                                  "in a SCoP body (use an array)")
        return Ref(aname, tuple(indices))

    def parse_affine(self) -> Affine:
        """Parse an affine expression (used in bounds/subscripts/guards)."""
        expr = self._affine_term()
        while self.peek() in ("+", "-"):
            op = self.next()
            term = self._affine_term()
            expr = expr + term if op == "+" else expr - term
        return expr

    def _affine_term(self) -> Affine:
        factor = 1
        tok = self.peek()
        if tok == "-":
            self.next()
            factor = -1
            tok = self.peek()
        if tok is None:
            raise ScopSyntaxError("unexpected end of affine expression")
        if re.fullmatch(r"\d+", tok):
            self.next()
            value = int(tok)
            if self.accept("*"):
                name = self.next()
                self._check_affine_var(name)
                return Affine.var(name, factor * value)
            return Affine.const_expr(factor * value)
        if re.fullmatch(r"[A-Za-z_]\w*", tok):
            self.next()
            self._check_affine_var(tok)
            if self.accept("*"):
                nxt = self.next()
                if not re.fullmatch(r"\d+", nxt):
                    raise ScopSyntaxError(
                        f"non-affine product {tok}*{nxt} in affine context")
                return Affine.var(tok, factor * int(nxt))
            return Affine.var(tok, factor)
        if tok == "(":
            self.next()
            inner = self.parse_affine()
            self.expect(")")
            return inner * factor
        raise ScopSyntaxError(f"bad token {tok!r} in affine expression")

    def _check_affine_var(self, name: str) -> None:
        if name in _KEYWORDS:
            raise ScopSyntaxError(f"keyword {name!r} used as variable")
        if name in self.scalars:
            raise ScopSyntaxError(
                f"scalar {name!r} is not affine (floats cannot index)")

    def parse_expr(self, iter_names: set) -> Expr:
        expr = self.parse_term(iter_names)
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.parse_term(iter_names)
            expr = Bin(op, expr, rhs)
        return expr

    def parse_term(self, iter_names: set) -> Expr:
        expr = self.parse_factor(iter_names)
        while self.peek() in ("*", "/"):
            op = self.next()
            rhs = self.parse_factor(iter_names)
            expr = Bin(op, expr, rhs)
        return expr

    def parse_factor(self, iter_names: set) -> Expr:
        tok = self.peek()
        if tok == "-":
            self.next()
            return Neg(self.parse_factor(iter_names))
        if tok == "(":
            self.next()
            inner = self.parse_expr(iter_names)
            self.expect(")")
            return inner
        if tok is None:
            raise ScopSyntaxError("unexpected end of expression")
        if re.fullmatch(r"\d+(\.\d+)?", tok):
            self.next()
            return Const(float(tok))
        if re.fullmatch(r"[A-Za-z_]\w*", tok):
            name = self.next()
            if name in _FUNCS:
                self.expect("(")
                arg = self.parse_expr(iter_names)
                self.expect(")")
                return Call(name, arg)
            if self.peek() == "[":
                indices: List[Affine] = []
                while self.accept("["):
                    indices.append(self.parse_affine())
                    self.expect("]")
                return Ref(name, tuple(indices))
            if name in self.scalars:
                return Scalar(name)
            if name in iter_names or name in self.params:
                return IterExpr(Affine.var(name))
            raise ScopSyntaxError(f"unknown identifier {name!r} in body")
        raise ScopSyntaxError(f"bad token {tok!r} in expression")


def parse_scop(text: str) -> Program:
    """Parse SCoP source text into a :class:`Program`."""
    return _Parser(_tokenize(text)).parse()
