"""SCoP statements."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Tuple

from .affine import Affine
from .domain import Domain
from .expr import Assignment, Ref
from .schedule import Schedule


@dataclass(frozen=True)
class Statement:
    """One assignment statement with its domain and schedule.

    ``guards`` are extra affine conditions ``expr >= 0`` that must hold for
    an instance to execute.  Transformations such as loop shifting introduce
    them; the interpreter honours them and the coverage tracker counts their
    branch outcomes.

    ``reg_accum`` marks an accumulation whose running value is held in a
    register across the innermost loop (the scalar-renaming auxiliary
    technique §6.3 credits LLMs with); it changes cost, not semantics.
    """

    name: str
    domain: Domain
    schedule: Schedule
    body: Assignment
    guards: Tuple[Affine, ...] = ()
    reg_accum: bool = False

    # ------------------------------------------------------------------
    def reads(self) -> Tuple[Ref, ...]:
        return self.body.read_refs()

    def write(self) -> Ref:
        return self.body.write_ref()

    def all_refs(self) -> Tuple[Tuple[Ref, bool], ...]:
        """Every access as ``(ref, is_write)`` — the write listed last."""
        pairs = tuple((r, False) for r in self.reads())
        return pairs + ((self.write(), True),)

    def guards_hold(self, env: Mapping[str, int]) -> bool:
        return all(g.evaluate(env) >= 0 for g in self.guards)

    # ------------------------------------------------------------------
    def with_schedule(self, schedule: Schedule) -> "Statement":
        return replace(self, schedule=schedule)

    def with_domain(self, domain: Domain) -> "Statement":
        return replace(self, domain=domain)

    def with_body(self, body: Assignment) -> "Statement":
        return replace(self, body=body)

    def with_guards(self, guards: Tuple[Affine, ...]) -> "Statement":
        return replace(self, guards=guards)

    def with_reg_accum(self, flag: bool) -> "Statement":
        return replace(self, reg_accum=flag)

    def rename_iters(self, mapping: Mapping[str, str]) -> "Statement":
        m = dict(mapping)
        return Statement(
            name=self.name,
            domain=self.domain.rename(m),
            schedule=self.schedule.rename(m),
            body=self.body.rename_iters(m),
            guards=tuple(g.rename(m) for g in self.guards),
            reg_accum=self.reg_accum,
        )

    def __str__(self) -> str:
        guard = ""
        if self.guards:
            guard = " if " + " and ".join(f"{g}>=0" for g in self.guards)
        return (f"{self.name}: {self.domain} sched={self.schedule}"
                f"{guard} :: {self.body}")
