"""2d+1 schedules.

A statement's schedule maps each domain point to an integer vector; global
execution order is the lexicographic order of those vectors across all
statements (schedule-tree semantics flattened to vectors, §2.1).

Dimensions come in three kinds:

* :class:`ConstDim` — static "text" dimensions separating statements,
* :class:`LoopDim` — an affine function of the original iterators
  (interchange permutes these, skewing/shifting rewrite their expression),
* :class:`TileDim` — ``floor(expr / size)``, the block dimension introduced
  by loop tiling.  Using an explicit floor keeps the executed order exact
  without re-deriving tile-local domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Sequence, Tuple, Union

import numpy as np

from .affine import Affine, aff, affine_column


@dataclass(frozen=True)
class ConstDim:
    """Static dimension: orders statements textually."""

    value: int

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def rename(self, mapping: Mapping[str, str]) -> "ConstDim":
        return self

    @property
    def is_dynamic(self) -> bool:
        return False

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class LoopDim:
    """Dynamic dimension: an affine function of iterators."""

    expr: Affine

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env)

    def rename(self, mapping: Mapping[str, str]) -> "LoopDim":
        return LoopDim(self.expr.rename(dict(mapping)))

    @property
    def is_dynamic(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.expr)


@dataclass(frozen=True)
class TileDim:
    """Dynamic block dimension ``floor(expr / size)`` from loop tiling."""

    expr: Affine
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"tile size must be positive, got {self.size}")

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.expr.evaluate(env) // self.size

    def rename(self, mapping: Mapping[str, str]) -> "TileDim":
        return TileDim(self.expr.rename(dict(mapping)), self.size)

    @property
    def is_dynamic(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"floor(({self.expr})/{self.size})"


SchedDim = Union[ConstDim, LoopDim, TileDim]


@dataclass(frozen=True)
class Schedule:
    """A statement schedule: a tuple of dimensions."""

    dims: Tuple[SchedDim, ...]

    @staticmethod
    def canonical(iterators: Sequence[str],
                  positions: Sequence[int]) -> "Schedule":
        """Build the 2d+1 form ``[c0, i1, c1, i2, ..., id, cd]``.

        ``positions`` has ``d+1`` entries: the textual position at each
        nesting level (the constants of the 2d+1 vector).
        """
        if len(positions) != len(iterators) + 1:
            raise ValueError("need d+1 textual positions for d iterators")
        dims: List[SchedDim] = []
        for pos, name in zip(positions, iterators):
            dims.append(ConstDim(pos))
            dims.append(LoopDim(aff(Affine.var(name))))
        dims.append(ConstDim(positions[-1]))
        return Schedule(tuple(dims))

    def evaluate(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(dim.evaluate(env) for dim in self.dims)

    def evaluate_columns(self, columns: Mapping[str, "np.ndarray"],
                         params: Mapping[str, int],
                         length: int) -> "np.ndarray":
        """Batch :meth:`evaluate`: one ``(length, len(dims))`` int64 row
        of schedule keys per environment row.

        Iterators resolve through ``columns``, parameters through
        ``params`` — the same precedence (and the same ``KeyError`` on
        unbound names) as the scalar evaluator.
        """
        keys = np.empty((length, len(self.dims)), dtype=np.int64)
        for d, dim in enumerate(self.dims):
            keys[:, d] = dim_column(dim, columns, params, length)
        return keys

    @property
    def depth(self) -> int:
        """Number of dynamic dimensions."""
        return sum(1 for d in self.dims if d.is_dynamic)

    def dynamic_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, d in enumerate(self.dims) if d.is_dynamic)

    def padded(self, length: int) -> "Schedule":
        """Pad with trailing zero constants (schedules compare elementwise)."""
        if len(self.dims) >= length:
            return self
        return Schedule(self.dims + tuple(
            ConstDim(0) for _ in range(length - len(self.dims))))

    def with_dim(self, index: int, dim: SchedDim) -> "Schedule":
        dims = list(self.dims)
        dims[index] = dim
        return Schedule(tuple(dims))

    def insert_dims(self, index: int,
                    new_dims: Sequence[SchedDim]) -> "Schedule":
        dims = list(self.dims)
        dims[index:index] = list(new_dims)
        return Schedule(tuple(dims))

    def rename(self, mapping: Mapping[str, str]) -> "Schedule":
        return Schedule(tuple(d.rename(mapping) for d in self.dims))

    def __str__(self) -> str:
        return "[" + ", ".join(str(d) for d in self.dims) + "]"


def dim_column(dim: SchedDim, columns: Mapping[str, "np.ndarray"],
               params: Mapping[str, int], length: int) -> "np.ndarray":
    """One schedule dimension evaluated over column vectors.

    ``TileDim`` uses int64 floor division, which matches Python ``//``
    semantics for negatives — block indices of shifted/skewed spaces
    stay exact.
    """
    if isinstance(dim, ConstDim):
        return np.full(length, dim.value, dtype=np.int64)
    col = affine_column(dim.expr, columns, params, length)
    if isinstance(dim, TileDim):
        return col // dim.size
    return col


def align_schedules(schedules: Sequence[Schedule]) -> List[Schedule]:
    """Pad a set of schedules to a common length for lexicographic order."""
    width = max(len(s.dims) for s in schedules)
    return [s.padded(width) for s in schedules]
