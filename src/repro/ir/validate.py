"""Static validation of SCoP programs — the "compilation" surface.

The feedback pipeline (§4.3) classifies failures into CE / IA / RE / ET /
IC.  ``validate_program`` is what produces CE: a candidate emitted by an
LLM persona that references undeclared arrays, uses wrong subscript ranks,
scopes iterators incorrectly or carries malformed schedules fails here with
a compiler-style message that is fed back verbatim in the prompt.
"""

from __future__ import annotations

from typing import List

from .program import Program
from .schedule import TileDim


class CompileError(ValueError):
    """A candidate that does not "compile"."""

    def __init__(self, messages: List[str]) -> None:
        super().__init__("; ".join(messages))
        self.messages = list(messages)


def check_program(program: Program) -> List[str]:
    """Return the list of diagnostics (empty when the program is valid)."""
    errors: List[str] = []
    declared = {a.name: a for a in program.arrays}
    scalar_names = {name for name, _ in program.scalars}
    params = set(program.params)

    if not program.statements:
        errors.append("error: empty SCoP")

    for array in program.arrays:
        for dim in array.dims:
            bad = set(dim.variables()) - params
            if bad:
                errors.append(
                    f"error: size of array '{array.name}' references "
                    f"non-parameter names {sorted(bad)}")

    for out in program.outputs:
        if out not in declared:
            errors.append(f"error: output array '{out}' is not declared")

    for stmt in program.statements:
        try:
            stmt.domain.validate(program.params)
        except ValueError as exc:
            errors.append(f"error: in '{stmt.name}': {exc}")
        iter_names = set(stmt.domain.iterator_names)
        visible = iter_names | params

        for ref, is_write in stmt.all_refs():
            decl = declared.get(ref.array)
            if decl is None:
                errors.append(
                    f"error: '{ref.array}' undeclared in '{stmt.name}'")
                continue
            if len(ref.indices) != decl.rank:
                errors.append(
                    f"error: '{ref.array}' has rank {decl.rank} but "
                    f"'{stmt.name}' subscripts it with {len(ref.indices)} "
                    "indices")
            for ix in ref.indices:
                bad = set(ix.variables()) - visible
                if bad:
                    errors.append(
                        f"error: subscript of '{ref.array}' in "
                        f"'{stmt.name}' uses undefined names {sorted(bad)}")

        for guard in stmt.guards:
            bad = set(guard.variables()) - visible
            if bad:
                errors.append(
                    f"error: guard in '{stmt.name}' uses undefined names "
                    f"{sorted(bad)}")

        for dim in stmt.schedule.dims:
            if isinstance(dim, TileDim) and dim.size <= 0:
                errors.append(
                    f"error: non-positive tile size in '{stmt.name}'")
            if dim.is_dynamic:
                expr = dim.expr  # type: ignore[union-attr]
                bad = set(expr.variables()) - visible
                if bad:
                    errors.append(
                        f"error: schedule of '{stmt.name}' uses undefined "
                        f"names {sorted(bad)}")

    seen = set()
    for stmt in program.statements:
        if stmt.name in seen:
            errors.append(f"error: duplicate statement name '{stmt.name}'")
        seen.add(stmt.name)

    width = program.schedule_width
    for dim_index in program.parallel_dims | program.vector_dims:
        if not 0 <= dim_index < width:
            errors.append(
                f"error: pragma on schedule dimension {dim_index} out of "
                f"range [0, {width})")
    return errors


def validate_program(program: Program) -> None:
    """Raise :class:`CompileError` when the program is malformed."""
    errors = check_program(program)
    if errors:
        raise CompileError(errors)
