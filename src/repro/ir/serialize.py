"""Exact structural (de)serialization of the IR to JSON-able dicts.

The pseudo-C printer/parser round-trip is *readable* but not faithful:
schedule constants renumber, tile dimensions re-derive, pragmas drop —
good enough for humans, not for caches that must reproduce a `Program`
bit-for-bit.  This module encodes the IR itself: affine expressions by
their terms, domains by their bound lists, schedules dimension by
dimension, bodies as tagged expression trees.  ``program_from_json ∘
program_to_json`` is the identity on every field that feeds
``Program.fingerprint()`` (and on provenance, which doesn't), so the
persistent corpus cache can round-trip synthesized *and* transformed
programs without replaying recipes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .affine import Affine
from .domain import Domain, IterSpec
from .expr import Assignment, Bin, Call, Const, Expr, IterExpr, Neg, Ref, Scalar
from .program import ArrayDecl, Program
from .schedule import ConstDim, LoopDim, Schedule, SchedDim, TileDim
from .statement import Statement


# ----------------------------------------------------------------------
# Affine
# ----------------------------------------------------------------------
def affine_to_json(expr: Affine) -> Dict[str, Any]:
    return {"terms": [[name, coeff] for name, coeff in expr.terms],
            "const": expr.const}


def affine_from_json(data: Dict[str, Any]) -> Affine:
    return Affine(tuple((str(name), int(coeff))
                        for name, coeff in data["terms"]),
                  int(data["const"]))


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def expr_to_json(expr: Expr) -> Dict[str, Any]:
    if isinstance(expr, Const):
        return {"node": "const", "value": expr.value}
    if isinstance(expr, Scalar):
        return {"node": "scalar", "name": expr.name}
    if isinstance(expr, IterExpr):
        return {"node": "iter", "expr": affine_to_json(expr.expr)}
    if isinstance(expr, Ref):
        return {"node": "ref", "array": expr.array,
                "indices": [affine_to_json(ix) for ix in expr.indices]}
    if isinstance(expr, Bin):
        return {"node": "bin", "op": expr.op,
                "lhs": expr_to_json(expr.lhs),
                "rhs": expr_to_json(expr.rhs)}
    if isinstance(expr, Neg):
        return {"node": "neg", "operand": expr_to_json(expr.operand)}
    if isinstance(expr, Call):
        return {"node": "call", "func": expr.func,
                "arg": expr_to_json(expr.arg)}
    raise TypeError(f"unserializable expression {type(expr).__name__}")


def expr_from_json(data: Dict[str, Any]) -> Expr:
    node = data["node"]
    if node == "const":
        return Const(float(data["value"]))
    if node == "scalar":
        return Scalar(str(data["name"]))
    if node == "iter":
        return IterExpr(affine_from_json(data["expr"]))
    if node == "ref":
        return Ref(str(data["array"]),
                   tuple(affine_from_json(ix) for ix in data["indices"]))
    if node == "bin":
        return Bin(str(data["op"]), expr_from_json(data["lhs"]),
                   expr_from_json(data["rhs"]))
    if node == "neg":
        return Neg(expr_from_json(data["operand"]))
    if node == "call":
        return Call(str(data["func"]), expr_from_json(data["arg"]))
    raise ValueError(f"unknown expression node {node!r}")


# ----------------------------------------------------------------------
# Domains, schedules, statements
# ----------------------------------------------------------------------
def _domain_to_json(domain: Domain) -> List[Dict[str, Any]]:
    return [{"name": spec.name,
             "lowers": [affine_to_json(e) for e in spec.lowers],
             "uppers": [affine_to_json(e) for e in spec.uppers]}
            for spec in domain.iters]


def _domain_from_json(data: List[Dict[str, Any]]) -> Domain:
    return Domain(tuple(
        IterSpec(str(item["name"]),
                 tuple(affine_from_json(e) for e in item["lowers"]),
                 tuple(affine_from_json(e) for e in item["uppers"]))
        for item in data))


def _dim_to_json(dim: SchedDim) -> Dict[str, Any]:
    if isinstance(dim, ConstDim):
        return {"dim": "const", "value": dim.value}
    if isinstance(dim, TileDim):
        return {"dim": "tile", "expr": affine_to_json(dim.expr),
                "size": dim.size}
    return {"dim": "loop", "expr": affine_to_json(dim.expr)}


def _dim_from_json(data: Dict[str, Any]) -> SchedDim:
    kind = data["dim"]
    if kind == "const":
        return ConstDim(int(data["value"]))
    if kind == "tile":
        return TileDim(affine_from_json(data["expr"]), int(data["size"]))
    if kind == "loop":
        return LoopDim(affine_from_json(data["expr"]))
    raise ValueError(f"unknown schedule dimension {kind!r}")


def _statement_to_json(stmt: Statement) -> Dict[str, Any]:
    return {
        "name": stmt.name,
        "domain": _domain_to_json(stmt.domain),
        "schedule": [_dim_to_json(d) for d in stmt.schedule.dims],
        "lhs": expr_to_json(stmt.body.lhs),
        "op": stmt.body.op,
        "rhs": expr_to_json(stmt.body.rhs),
        "guards": [affine_to_json(g) for g in stmt.guards],
        "reg_accum": stmt.reg_accum,
    }


def _statement_from_json(data: Dict[str, Any]) -> Statement:
    return Statement(
        name=str(data["name"]),
        domain=_domain_from_json(data["domain"]),
        schedule=Schedule(tuple(_dim_from_json(d)
                                for d in data["schedule"])),
        body=Assignment(expr_from_json(data["lhs"]), str(data["op"]),
                        expr_from_json(data["rhs"])),
        guards=tuple(affine_from_json(g) for g in data["guards"]),
        reg_accum=bool(data["reg_accum"]),
    )


# ----------------------------------------------------------------------
# Programs
# ----------------------------------------------------------------------
def program_to_json(program: Program) -> Dict[str, Any]:
    return {
        "name": program.name,
        "params": list(program.params),
        "arrays": [{"name": a.name,
                    "dims": [affine_to_json(d) for d in a.dims],
                    "init": a.init}
                   for a in program.arrays],
        "statements": [_statement_to_json(s) for s in program.statements],
        "scalars": [[name, value] for name, value in program.scalars],
        "outputs": list(program.outputs),
        "parallel_dims": sorted(program.parallel_dims),
        "vector_dims": sorted(program.vector_dims),
        "provenance": list(program.provenance),
        "tags": sorted(program.tags),
    }


def program_from_json(data: Dict[str, Any]) -> Program:
    return Program(
        name=str(data["name"]),
        params=tuple(str(p) for p in data["params"]),
        arrays=tuple(
            ArrayDecl(str(a["name"]),
                      tuple(affine_from_json(d) for d in a["dims"]),
                      str(a["init"]))
            for a in data["arrays"]),
        statements=tuple(_statement_from_json(s)
                         for s in data["statements"]),
        scalars=tuple((str(n), float(v)) for n, v in data["scalars"]),
        outputs=tuple(str(o) for o in data["outputs"]),
        parallel_dims=frozenset(int(d) for d in data["parallel_dims"]),
        vector_dims=frozenset(int(d) for d in data["vector_dims"]),
        provenance=tuple(str(p) for p in data["provenance"]),
        tags=frozenset(str(t) for t in data["tags"]),
    )
