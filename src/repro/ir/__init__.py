"""Polyhedral-lite IR for Static Control Parts (SCoPs).

The IR models everything §2.1 of the paper calls a loop property: loop
structure (domains + 2d+1 schedules), data dependence (derived by
``repro.analysis``) and array access (affine references).
"""

from .affine import Affine, aff, var
from .domain import Domain, IterSpec, rectangular
from .expr import (Assignment, Bin, Call, Const, Expr, IterExpr, Neg, Ref,
                   Scalar, add, div, mul, sub)
from .parser import ScopSyntaxError, parse_scop
from .program import ArrayDecl, Program, make_program
from .schedule import (ConstDim, LoopDim, Schedule, SchedDim, TileDim,
                       align_schedules)
from .statement import Statement
from .validate import CompileError, check_program, validate_program

__all__ = [
    "Affine", "aff", "var",
    "Domain", "IterSpec", "rectangular",
    "Assignment", "Bin", "Call", "Const", "Expr", "IterExpr", "Neg", "Ref",
    "Scalar", "add", "div", "mul", "sub",
    "ScopSyntaxError", "parse_scop",
    "ArrayDecl", "Program", "make_program",
    "ConstDim", "LoopDim", "Schedule", "SchedDim", "TileDim",
    "align_schedules",
    "Statement",
    "CompileError", "check_program", "validate_program",
]
