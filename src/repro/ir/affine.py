"""Affine expressions over iterators and global parameters.

An :class:`Affine` is an immutable integer-coefficient linear expression
``c0 + c1*x1 + ... + cn*xn`` where the ``xi`` are iterator or parameter
names.  Affine expressions are the currency of the whole IR: loop bounds,
array subscripts, schedule dimensions and guards are all affine, which is
exactly the SCoP restriction the paper works under (§2.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple, Union

import numpy as np

Number = int
AffineLike = Union["Affine", int]


@dataclass(frozen=True)
class Affine:
    """Immutable affine expression: ``const + sum(coeff * var)``.

    ``terms`` is kept sorted by variable name so that structurally equal
    expressions compare and hash equal.
    """

    terms: Tuple[Tuple[str, int], ...] = ()
    const: int = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def const_expr(value: int) -> "Affine":
        """Return the constant affine expression ``value``."""
        return Affine((), int(value))

    @staticmethod
    def var(name: str, coeff: int = 1) -> "Affine":
        """Return ``coeff * name``."""
        if coeff == 0:
            return Affine()
        return Affine(((name, int(coeff)),), 0)

    @staticmethod
    def from_terms(terms: Mapping[str, int], const: int = 0) -> "Affine":
        """Build from a ``{var: coeff}`` mapping, dropping zero coefficients."""
        cleaned = tuple(sorted((v, int(c)) for v, c in terms.items() if c != 0))
        return Affine(cleaned, int(const))

    @staticmethod
    def coerce(value: AffineLike) -> "Affine":
        """Accept either an :class:`Affine` or a plain integer."""
        if isinstance(value, Affine):
            return value
        return Affine.const_expr(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def coeff(self, name: str) -> int:
        """Coefficient of ``name`` (0 when absent)."""
        for var, c in self.terms:
            if var == name:
                return c
        return 0

    def variables(self) -> Tuple[str, ...]:
        """Names with non-zero coefficient, sorted."""
        return tuple(v for v, _ in self.terms)

    @property
    def is_constant(self) -> bool:
        return not self.terms

    def as_dict(self) -> Dict[str, int]:
        return dict(self.terms)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: AffineLike) -> "Affine":
        other = Affine.coerce(other)
        merged = dict(self.terms)
        for var, c in other.terms:
            merged[var] = merged.get(var, 0) + c
        return Affine.from_terms(merged, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "Affine":
        return Affine(tuple((v, -c) for v, c in self.terms), -self.const)

    def __sub__(self, other: AffineLike) -> "Affine":
        return self + (-Affine.coerce(other))

    def __rsub__(self, other: AffineLike) -> "Affine":
        return Affine.coerce(other) + (-self)

    def __mul__(self, scalar: int) -> "Affine":
        if not isinstance(scalar, int):
            raise TypeError("affine expressions only scale by integers")
        if scalar == 0:
            return Affine()
        return Affine(tuple((v, c * scalar) for v, c in self.terms),
                      self.const * scalar)

    __rmul__ = __mul__

    # ------------------------------------------------------------------
    # Substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, AffineLike]) -> "Affine":
        """Replace variables by affine expressions (non-mentioned kept)."""
        result = Affine.const_expr(self.const)
        for var, c in self.terms:
            if var in mapping:
                result = result + Affine.coerce(mapping[var]) * c
            else:
                result = result + Affine.var(var, c)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "Affine":
        """Rename variables."""
        return Affine.from_terms(
            {mapping.get(v, v): c for v, c in self.terms}, self.const)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate with concrete variable bindings.

        Raises ``KeyError`` when a variable is unbound, which is the
        behaviour the validator relies on to flag malformed programs.
        """
        total = self.const
        for var, c in self.terms:
            total += c * env[var]
        return total

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.terms:
            return str(self.const)
        parts = []
        for var, c in self.terms:
            if c == 1:
                term = var
            elif c == -1:
                term = f"-{var}"
            else:
                term = f"{c}*{var}"
            if parts and not term.startswith("-"):
                parts.append(f"+{term}")
            else:
                parts.append(term)
        if self.const > 0:
            parts.append(f"+{self.const}")
        elif self.const < 0:
            parts.append(str(self.const))
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Affine({self})"


ZERO = Affine.const_expr(0)
ONE = Affine.const_expr(1)


def aff(value: AffineLike) -> Affine:
    """Shorthand used throughout the code base."""
    return Affine.coerce(value)


def var(name: str, coeff: int = 1) -> Affine:
    """Shorthand for :meth:`Affine.var`."""
    return Affine.var(name, coeff)


def affine_column(expr: Affine, columns: Mapping[str, "np.ndarray"],
                  params: Mapping[str, int], length: int) -> "np.ndarray":
    """Evaluate an affine expression over int64 column vectors.

    The batch counterpart of :meth:`Affine.evaluate`: names resolve
    through ``columns`` first (one value per row) and fall back to the
    scalar ``params`` binding; an unbound name raises the same
    ``KeyError`` the scalar evaluator does.  Shared by the batched
    instance enumeration (``runtime.instances``), the trace simulator
    and the vectorized dependence engine.
    """
    out = np.full(length, expr.const, dtype=np.int64)
    for name, coeff in expr.terms:
        col = columns.get(name)
        if col is None:
            out += coeff * int(params[name])
        else:
            out += coeff * col
    return out


def max_eval(exprs: Iterable[Affine], env: Mapping[str, int]) -> int:
    """Evaluate ``max`` of several affine expressions."""
    return max(e.evaluate(env) for e in exprs)


def min_eval(exprs: Iterable[Affine], env: Mapping[str, int]) -> int:
    """Evaluate ``min`` of several affine expressions."""
    return min(e.evaluate(env) for e in exprs)
