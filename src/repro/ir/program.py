"""SCoP programs.

A :class:`Program` is the unit everything else operates on: the synthesizer
emits them, compilers transform them, the interpreter executes them, the
cost model prices them and the pipeline optimizes them.  It corresponds to
the region between ``#pragma scop`` / ``#pragma endscop`` in the paper plus
the PolyBench-style surroundings (array declarations, init spec, outputs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .affine import Affine, AffineLike, aff
from .schedule import Schedule, align_schedules
from .statement import Statement

#: Built-in deterministic array initialisation patterns (runtime.data).
INIT_KINDS = ("poly", "zeros", "ones", "ramp", "alt", "identity")


@dataclass(frozen=True)
class ArrayDecl:
    """Array declaration: name, per-dimension sizes (affine in params)."""

    name: str
    dims: Tuple[Affine, ...]
    init: str = "poly"

    def __post_init__(self) -> None:
        if self.init not in INIT_KINDS:
            raise ValueError(f"unknown init kind {self.init!r}")

    @property
    def rank(self) -> int:
        return len(self.dims)

    def shape(self, params: Mapping[str, int]) -> Tuple[int, ...]:
        return tuple(d.evaluate(params) for d in self.dims)

    def __str__(self) -> str:
        return self.name + "".join(f"[{d}]" for d in self.dims)


@dataclass(frozen=True)
class Program:
    """A complete SCoP program.

    ``parallel_dims`` / ``vector_dims`` are schedule dimension indices (on
    the aligned schedule width) marked ``#pragma omp parallel for`` and
    vectorized, respectively.  They carry no semantics — the interpreter
    ignores them — but the machine model prices them, and legality checking
    validates them the same way it validates schedule rewrites.
    """

    name: str
    params: Tuple[str, ...]
    arrays: Tuple[ArrayDecl, ...]
    statements: Tuple[Statement, ...]
    scalars: Tuple[Tuple[str, float], ...] = ()
    outputs: Tuple[str, ...] = ()
    parallel_dims: FrozenSet[int] = frozenset()
    vector_dims: FrozenSet[int] = frozenset()
    provenance: Tuple[str, ...] = ()
    #: free-form markers such as "dummy-call" (TSVC kernels call an opaque
    #: ``dummy()`` per outer iteration) or "pure-annotated" (the
    #: ``__attribute__((pure))`` fix of Appendix C); compilers key SCoP
    #: detection behaviour off these.
    tags: FrozenSet[str] = frozenset()

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(name)

    def array_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.arrays)

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise KeyError(name)

    def scalar_values(self) -> Dict[str, float]:
        return dict(self.scalars)

    @property
    def max_depth(self) -> int:
        return max((s.domain.depth for s in self.statements), default=0)

    def aligned_schedules(self) -> List[Schedule]:
        return align_schedules([s.schedule for s in self.statements])

    @property
    def schedule_width(self) -> int:
        return max((len(s.schedule.dims) for s in self.statements), default=0)

    # ------------------------------------------------------------------
    # Rebuilding
    # ------------------------------------------------------------------
    def with_statements(self, statements: Sequence[Statement]) -> "Program":
        return replace(self, statements=tuple(statements))

    def with_statement(self, name: str, new: Statement) -> "Program":
        return self.with_statements(
            tuple(new if s.name == name else s for s in self.statements))

    def with_parallel(self, dims: FrozenSet[int]) -> "Program":
        return replace(self, parallel_dims=frozenset(dims))

    def with_vector(self, dims: FrozenSet[int]) -> "Program":
        return replace(self, vector_dims=frozenset(dims))

    def with_provenance(self, *notes: str) -> "Program":
        return replace(self, provenance=self.provenance + tuple(notes))

    def with_tags(self, *tags: str) -> "Program":
        return replace(self, tags=self.tags | frozenset(tags))

    def renamed(self, name: str) -> "Program":
        return replace(self, name=name)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash — the cache key for testing/cost results.

        Memoized on the instance (the class is frozen, so the content can
        never change): every cache keyed on a fingerprint — dependence
        memoization, equivalence verdicts, the compiled-kernel cache,
        branch-coverage registration — pays the hash once per program
        object instead of once per lookup.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        text = "|".join([
            ",".join(self.params),
            ";".join(str(a) + ":" + a.init for a in self.arrays),
            ";".join(str(s) for s in self.statements),
            ",".join(f"{k}={v}" for k, v in self.scalars),
            ",".join(self.outputs),
            ",".join(map(str, sorted(self.parallel_dims))),
            ",".join(map(str, sorted(self.vector_dims))),
            ",".join(sorted(self.tags)),
        ])
        digest = hashlib.sha256(text.encode()).hexdigest()[:16]
        object.__setattr__(self, "_fingerprint", digest)
        return digest

    def __str__(self) -> str:
        lines = [f"program {self.name}({', '.join(self.params)})"]
        for a in self.arrays:
            lines.append(f"  array {a}")
        for s in self.statements:
            lines.append(f"  {s}")
        return "\n".join(lines)


def make_program(name: str,
                 params: Sequence[str],
                 arrays: Sequence[ArrayDecl],
                 statements: Sequence[Statement],
                 scalars: Optional[Mapping[str, float]] = None,
                 outputs: Optional[Sequence[str]] = None) -> Program:
    """Construct a program, defaulting outputs to every written array."""
    if outputs is None:
        outputs = sorted({s.write().array for s in statements})
    return Program(
        name=name,
        params=tuple(params),
        arrays=tuple(arrays),
        statements=tuple(statements),
        scalars=tuple(sorted((scalars or {}).items())),
        outputs=tuple(outputs),
    )
