"""The artifact-store backend registry (the PR-4 registry pattern).

``STORE_BACKENDS`` maps backend names to factories
``(root: str) -> ArtifactStore``.  The evaluation result store and the
persistent corpus cache both resolve their backend here, so a remote /
object-store backend registers exactly the way compilers and retrieval
methods do — one ``STORE_BACKENDS.register(...)`` call — and is
immediately driven by the same conformance suite
(``tests/test_artifact_store_conformance.py``).

Environment switches
--------------------
``REPRO_STORE_BACKEND``  backend name (default ``local``)
``REPRO_STORE_SHARDS``   shard count for the local backend (default 16;
                         pinned per stream in ``meta.json`` on first
                         create, so changing it later is safe)
``REPRO_STORE_MIRRORS``  child backends for the mirrored backend
                         (comma-separated names or a bare replica
                         count; default ``local,local``)
"""

from __future__ import annotations

import os
from typing import Optional

from ..registry import Registry
from .base import ArtifactStore
from .local import DEFAULT_SHARDS, LocalShardedStore
from .memory import InMemoryStore
from .mirrored import MirroredStore

ENV_STORE_BACKEND = "REPRO_STORE_BACKEND"
ENV_STORE_SHARDS = "REPRO_STORE_SHARDS"
DEFAULT_BACKEND = "local"

STORE_BACKENDS = Registry("artifact store backend")


@STORE_BACKENDS.register_as("local")
def _local_backend(root: str) -> LocalShardedStore:
    shards = int(os.environ.get(ENV_STORE_SHARDS) or DEFAULT_SHARDS)
    return LocalShardedStore(root, shards=shards)


@STORE_BACKENDS.register_as("memory")
def _memory_backend(root: str) -> InMemoryStore:
    return InMemoryStore(root)


@STORE_BACKENDS.register_as("mirrored")
def _mirrored_backend(root: str) -> MirroredStore:
    return MirroredStore(root)


def backend_name() -> str:
    """The configured backend name (``REPRO_STORE_BACKEND`` or local)."""
    return os.environ.get(ENV_STORE_BACKEND) or DEFAULT_BACKEND


def open_store(root, backend: Optional[str] = None) -> ArtifactStore:
    """Instantiate the named (or configured) backend over ``root``.

    Unknown names raise :class:`repro.registry.UnknownComponentError`
    listing every registered backend.
    """
    return STORE_BACKENDS.get(backend or backend_name())(str(root))
