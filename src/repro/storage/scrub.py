"""The storage fsck: line-level verification and repair.

``repro store verify`` drives :func:`verify_store` over every stream of
the active backend (the serve journal is just another stream, so it is
covered) plus :func:`scrub_kernels` over the compiled-kernel cache, and
reports each damaged record with shard + byte-offset diagnostics.
``--repair`` then drives :func:`repair_store`: for a local store,
compaction rewrites every shard and the damage is dropped (an earlier
valid put for the same key survives); for a mirrored store, every key
is read-repaired from a healthy replica first, so damaged records are
*restored*, not just purged.

Unlike the read path, the scrubber always verifies checksums — it is an
explicit integrity operation, so ``REPRO_STORE_VERIFY=off`` does not
apply to detection (repair temporarily forces verification on so a
compaction can never rewrite a record that fails its crc).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .base import (ENV_STORE_VERIFY, INTEGRITY, ArtifactStore,
                   record_crc_ok, verify_mode)
from .local import LocalShardedStore, decode_record, exclusive_lock
from .mirrored import MirroredStore


@dataclass(frozen=True)
class ScrubIssue:
    """One damaged record/file, pinpointed for the operator."""

    stream: str
    location: str          # shard or kernel file name
    offset: Optional[int]  # byte offset of the damaged line, if any
    kind: str              # corrupt | torn | mismatched | divergent | ...
    detail: str

    def to_dict(self) -> Dict[str, Any]:
        return {"stream": self.stream, "location": self.location,
                "offset": self.offset, "kind": self.kind,
                "detail": self.detail}

    def render(self) -> str:
        at = f" @{self.offset}" if self.offset is not None else ""
        return (f"{self.stream}/{self.location}{at}: "
                f"{self.kind} ({self.detail})")


@dataclass
class StreamScrubReport:
    """Verification outcome for one stream."""

    stream: str
    records: int = 0     # decodable record lines seen
    live: int = 0        # keys a reader would serve
    legacy: int = 0      # valid records without a crc field
    corrupt: int = 0
    torn: int = 0
    mismatched: int = 0
    issues: List[ScrubIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def to_dict(self) -> Dict[str, Any]:
        return {"stream": self.stream, "records": self.records,
                "live": self.live, "legacy": self.legacy,
                "corrupt": self.corrupt, "torn": self.torn,
                "mismatched": self.mismatched,
                "issues": [i.to_dict() for i in self.issues]}


@dataclass
class VerifyReport:
    """Whole-store verification outcome (one level per replica)."""

    backend: str
    root: str
    streams: List[StreamScrubReport] = field(default_factory=list)
    kernels: Optional[Dict[str, Any]] = None
    replicas: List["VerifyReport"] = field(default_factory=list)

    def issues(self) -> Iterator[ScrubIssue]:
        for report in self.streams:
            yield from report.issues
        if self.kernels:
            yield from self.kernels.get("issues", [])
        for replica in self.replicas:
            yield from replica.issues()

    @property
    def flagged(self) -> int:
        return sum(1 for _ in self.issues())

    @property
    def clean(self) -> bool:
        return next(self.issues(), None) is None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "backend": self.backend, "root": self.root,
            "clean": self.clean, "flagged": self.flagged,
            "streams": [s.to_dict() for s in self.streams]}
        if self.kernels is not None:
            kernels = dict(self.kernels)
            kernels["issues"] = [i.to_dict()
                                 for i in kernels.get("issues", [])]
            doc["kernels"] = kernels
        if self.replicas:
            doc["replicas"] = [r.to_dict() for r in self.replicas]
        return doc


@dataclass
class RepairReport:
    """What one ``--repair`` pass restored and purged."""

    read_repairs: int = 0
    dropped: int = 0          # damaged lines compacted away
    kernels_removed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"read_repairs": self.read_repairs,
                "dropped": self.dropped,
                "kernels_removed": self.kernels_removed}


# ----------------------------------------------------------------------
# detection
# ----------------------------------------------------------------------
def scrub_stream(store: LocalShardedStore,
                 stream: str) -> StreamScrubReport:
    """Walk every shard line of one local stream, verifying each crc.

    Operates on the raw files (no index mutation, nothing healed), so
    it is safe to run against a live store.
    """
    report = StreamScrubReport(stream=stream)
    live: Dict[str, bool] = {}
    for path in store.shard_paths(stream):
        data = path.read_bytes()
        offset = 0
        total = len(data)
        while offset < total:
            newline = data.find(b"\n", offset)
            if newline < 0:
                report.torn += 1
                report.issues.append(ScrubIssue(
                    stream, path.name, offset, "torn",
                    f"final line has no newline "
                    f"({total - offset} bytes)"))
                break
            raw = data[offset:newline]
            line_at = offset
            offset = newline + 1
            if not raw.strip():
                continue
            record = decode_record(raw)
            if record is None:
                report.corrupt += 1
                report.issues.append(ScrubIssue(
                    stream, path.name, line_at, "corrupt",
                    f"undecodable line ({len(raw)} bytes)"))
                continue
            report.records += 1
            if "crc" not in record:
                report.legacy += 1
            elif not record_crc_ok(record):
                report.mismatched += 1
                report.issues.append(ScrubIssue(
                    stream, path.name, line_at, "mismatched",
                    f"crc mismatch for key {record.get('key')!r}"))
                continue  # a damaged record never wins ordering here
            key = record["key"]
            if record.get("tombstone"):
                live.pop(key, None)
            else:
                live[key] = True
    report.live = len(live)
    return report


def _scrub_generic(store: ArtifactStore,
                   stream: str) -> StreamScrubReport:
    """Fallback for backends without shard files (e.g. in-memory)."""
    keys = store.list(stream)
    return StreamScrubReport(stream=stream, records=len(keys),
                             live=len(keys))


def _divergence(store: MirroredStore,
                stream: str) -> StreamScrubReport:
    """Cross-replica comparison for one stream of a mirrored store."""
    report = StreamScrubReport(stream=stream)
    keys = store.list(stream)
    report.live = len(keys)
    for key in keys:
        probes = [MirroredStore._probe(child, stream, key)
                  for child in store.children]
        if len({(has, json.dumps(value, sort_keys=True))
                for has, value in probes}) > 1:
            missing = [i for i, (has, _) in enumerate(probes)
                       if not has]
            detail = (f"replicas disagree on key {key!r}"
                      + (f" (missing from replica(s) {missing})"
                         if missing else ""))
            report.issues.append(ScrubIssue(
                stream, "replicas", None, "divergent", detail))
    return report


def verify_store(store: ArtifactStore,
                 streams: Optional[Tuple[str, ...]] = None,
                 kernels_root: Optional[Path] = None,
                 _count: bool = True) -> VerifyReport:
    """Verify every stream (and optionally the kernel cache) of a store.

    Detection only — nothing on disk changes.  For a mirrored store the
    report carries one nested :class:`VerifyReport` per replica plus
    per-stream cross-replica divergence findings.
    """
    if streams is None:
        streams = store.streams()
    report = VerifyReport(backend=store.describe(), root=store.root)
    if isinstance(store, MirroredStore):
        report.streams = [_divergence(store, s) for s in streams]
        report.replicas = [
            verify_store(child, streams, _count=False)
            for child in store.children]
    elif isinstance(store, LocalShardedStore):
        report.streams = [scrub_stream(store, s) for s in streams]
    else:
        report.streams = [_scrub_generic(store, s) for s in streams]
    if kernels_root is not None:
        report.kernels = scrub_kernels(kernels_root)
    if _count:
        INTEGRITY.inc("scrub_runs")
        flagged = report.flagged
        if flagged:
            INTEGRITY.inc("scrub_flagged", flagged)
    return report


# ----------------------------------------------------------------------
# repair
# ----------------------------------------------------------------------
@contextmanager
def _forced_verification() -> Iterator[None]:
    """Repair must never rewrite a record that fails its crc, even
    under ``REPRO_STORE_VERIFY=off``."""
    previous = os.environ.get(ENV_STORE_VERIFY)
    if verify_mode() == "off":
        os.environ[ENV_STORE_VERIFY] = "read"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(ENV_STORE_VERIFY, None)
        else:
            os.environ[ENV_STORE_VERIFY] = previous


def repair_store(store: ArtifactStore,
                 streams: Optional[Tuple[str, ...]] = None,
                 kernels_root: Optional[Path] = None) -> RepairReport:
    """Heal what :func:`verify_store` flagged.

    Mirrored stores first read-repair every key (restoring damaged
    records from a healthy replica), then every backend compacts, which
    rewrites each shard without its corrupt/torn/mismatched lines.
    Flagged kernel-cache entries are evicted (they recompile lazily).
    """
    if streams is None:
        streams = store.streams()
    report = RepairReport()
    with _forced_verification():
        if isinstance(store, MirroredStore):
            for stream in streams:
                report.read_repairs += store.repair_stream(stream)
        for stream in streams:
            compaction = store.compact(stream)
            report.dropped += (compaction.dropped_corrupt
                               + compaction.dropped_mismatched)
    if kernels_root is not None:
        report.kernels_removed = repair_kernels(kernels_root)
    repaired = (report.read_repairs + report.dropped
                + report.kernels_removed)
    if repaired:
        INTEGRITY.inc("scrub_repaired", repaired)
    return report


# ----------------------------------------------------------------------
# the compiled-kernel cache
# ----------------------------------------------------------------------
def _kernel_entries(root: Path) -> List[Path]:
    if not root.is_dir():
        return []
    return sorted(so for so in root.glob("*.so")
                  if ".tmp." not in so.name)


def _kernel_issues(so: Path) -> List[ScrubIssue]:
    issues: List[ScrubIssue] = []

    def flag(kind: str, detail: str) -> None:
        issues.append(ScrubIssue("kernels", so.name, None, kind,
                                 detail))

    src = so.with_suffix(".c")
    meta_path = so.with_suffix(".json")
    meta: Dict[str, Any] = {}
    if not meta_path.exists():
        flag("incomplete", "missing .json metadata")
    else:
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, json.JSONDecodeError):
            meta = {}
            flag("corrupt", "unreadable .json metadata")
    if not src.exists():
        flag("incomplete", "missing .c source")
    so_sha = meta.get("so_sha256")
    if isinstance(so_sha, str):
        actual = hashlib.sha256(so.read_bytes()).hexdigest()
        if actual != so_sha:
            flag("mismatched", "binary hash differs from metadata")
    signature = meta.get("signature")
    if src.exists() and isinstance(signature, str):
        digest = hashlib.sha256()
        digest.update(src.read_text().encode())
        digest.update(signature.encode())
        if digest.hexdigest()[:32] != so.stem:
            flag("mismatched", "source no longer matches cache key")
    return issues


def scrub_kernels(root: Path) -> Dict[str, Any]:
    """Verify the compiled-kernel cache under ``root``.

    Every installed ``.so`` must have its ``.c`` source and ``.json``
    metadata, the recorded binary hash must match the file (metas
    written before the hash existed are legacy, never flagged), and the
    source + toolchain signature must still hash to the cache key.
    """
    root = Path(root)
    issues: List[ScrubIssue] = []
    entries = _kernel_entries(root)
    for so in entries:
        issues.extend(_kernel_issues(so))
    return {"path": str(root), "checked": len(entries),
            "flagged": len(issues), "issues": issues}


def repair_kernels(root: Path) -> int:
    """Evict every flagged kernel-cache entry; returns entries removed.

    Eviction is safe: a missing kernel recompiles lazily on next use,
    and removal happens under the entry's install lock.
    """
    root = Path(root)
    removed = 0
    for so in _kernel_entries(root):
        if not _kernel_issues(so):
            continue
        with exclusive_lock(so.with_suffix(".lock")):
            for suffix in (".so", ".c", ".json"):
                try:
                    so.with_suffix(suffix).unlink()
                except OSError:
                    pass
        try:
            so.with_suffix(".lock").unlink()
        except OSError:
            pass
        removed += 1
    return removed
