"""The artifact-store contract: named streams of keyed JSON payloads.

An :class:`ArtifactStore` holds independent *streams* (``"results"``,
``"datasets"``, ...).  Each stream is a last-write-wins mapping from
string keys to JSON payloads, built out of *appends*: a ``put`` appends
a record, a ``delete`` appends a tombstone, and readers see only the
final record per key.  Appends never rewrite existing data, so any
number of writers can share a store; :meth:`ArtifactStore.compact`
reclaims the space superseded records leave behind.

The contract is executable: every backend registered in
:data:`repro.storage.STORE_BACKENDS` runs through the same conformance
suite (``tests/test_artifact_store_conformance.py``), with the
in-memory backend acting as the specification the file-backed ones are
compared against.

Payloads must be JSON-serializable; a backend may hand back an equal
copy rather than the object that was appended (they round-trip through
JSON), which keeps every backend observationally identical to the
in-memory spec.
"""

from __future__ import annotations

import abc
import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: stored-line format version shared by the file backends; lines with a
#: different version are treated as corrupt (skipped + counted) instead
#: of mis-read
STORAGE_SCHEMA = 1

#: how aggressively readers check record checksums (see verify_mode())
ENV_STORE_VERIFY = "REPRO_STORE_VERIFY"
VERIFY_MODES = ("off", "read", "paranoid")


def verify_mode() -> str:
    """Checksum-verification mode for file-backed reads.

    ``off``       never recompute crcs (fastest; corruption containment
                  falls back to JSON/torn-line detection only).
    ``read``      verify the record served by every ``read()`` and every
                  record rewritten by compaction (the default).
    ``paranoid``  additionally verify every line during index scans, so
                  a damaged record is skipped before it can win
                  last-write-wins ordering.
    """
    mode = os.environ.get(ENV_STORE_VERIFY, "read").strip().lower()
    return mode if mode in VERIFY_MODES else "read"


def record_crc(key: str, payload: Any = None,
               tombstone: bool = False) -> int:
    """crc32 of the canonical key+payload bytes of one record.

    The checksum covers what the record *means* (key and payload after a
    canonical JSON dump), not the stored line itself, so it survives
    byte-identical compaction rewrites and stays recomputable from the
    parsed record.  Tombstones checksum a fixed marker in place of the
    payload.
    """
    body = b"tombstone" if tombstone else json.dumps(
        payload, separators=(",", ":")).encode()
    head = json.dumps(key, separators=(",", ":")).encode()
    return zlib.crc32(head + b"\x00" + body) & 0xFFFFFFFF


def record_crc_ok(record: Dict[str, Any]) -> bool:
    """Does a decoded record's ``crc`` match its contents?

    Records without a ``crc`` field are legacy (written before the
    integrity envelope existed) and never fail verification.
    """
    stored = record.get("crc")
    if stored is None:
        return True
    if not isinstance(stored, int):
        return False
    if record.get("tombstone"):
        expected = record_crc(record.get("key", ""), tombstone=True)
    else:
        expected = record_crc(record.get("key", ""),
                              record.get("payload"))
    return stored == expected


class IntegrityCounters:
    """Process-wide integrity telemetry (thread-safe).

    Exposed on ``repro store stats`` and as an ``integrity`` gauge on
    the serve ``/metrics`` endpoint.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(sorted(self._counts.items()))

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


#: shared by every store instance in the process: crc mismatches seen
#: by readers, read-repairs performed by the mirrored backend, scrub
#: runs/findings/repairs
INTEGRITY = IntegrityCounters()


class StoreError(Exception):
    """A backend violated its own invariants (torn append, bad shard)."""


@dataclass(frozen=True)
class StreamStats:
    """Point-in-time shape of one stream.

    ``superseded`` and ``tombstones`` measure reclaimable appends;
    ``corrupt`` counts undecodable or foreign lines skipped during the
    scan; ``mismatched`` counts records whose stored crc failed
    verification.  All of them drop to zero after
    :meth:`ArtifactStore.compact`.
    """

    entries: int = 0
    superseded: int = 0
    tombstones: int = 0
    corrupt: int = 0
    shards: int = 0
    bytes: int = 0
    mismatched: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"entries": self.entries, "superseded": self.superseded,
                "tombstones": self.tombstones, "corrupt": self.corrupt,
                "shards": self.shards, "bytes": self.bytes,
                "mismatched": self.mismatched}


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ArtifactStore.compact` call dropped and kept."""

    stream: str
    kept: int = 0
    dropped_superseded: int = 0
    dropped_tombstones: int = 0
    dropped_corrupt: int = 0
    dropped_mismatched: int = 0

    @property
    def dropped(self) -> int:
        return (self.dropped_superseded + self.dropped_tombstones
                + self.dropped_corrupt + self.dropped_mismatched)

    def to_dict(self) -> Dict[str, Any]:
        return {"stream": self.stream, "kept": self.kept,
                "dropped_superseded": self.dropped_superseded,
                "dropped_tombstones": self.dropped_tombstones,
                "dropped_corrupt": self.dropped_corrupt,
                "dropped_mismatched": self.dropped_mismatched}


class ArtifactStore(abc.ABC):
    """Open/append/read/list/delete over named streams (see module doc).

    Class attributes describe backend capabilities, which the
    conformance suite keys scenarios on:

    ``persistent``
        a second instance over the same root observes the first one's
        data (within one process at minimum).
    ``on_disk``
        entries live in real files — crash/corruption scenarios (torn
        tails, hand-edited shards, cross-process writers) apply.
    """

    name: str = "?"
    persistent: bool = False
    on_disk: bool = False

    def __init__(self, root: str) -> None:
        self.root = str(root)

    # -- the stream contract -------------------------------------------
    @abc.abstractmethod
    def open(self, stream: str) -> StreamStats:
        """Ensure ``stream``'s index is loaded; returns its stats."""

    @abc.abstractmethod
    def append(self, stream: str, key: str, payload: Any) -> None:
        """Upsert ``key`` (last write wins).  Atomic per record."""

    @abc.abstractmethod
    def read(self, stream: str, key: str) -> Optional[Any]:
        """The live payload for ``key``, or None."""

    @abc.abstractmethod
    def delete(self, stream: str, key: str) -> bool:
        """Append a tombstone; True iff ``key`` was live."""

    @abc.abstractmethod
    def list(self, stream: str) -> Tuple[str, ...]:
        """Live keys, sorted."""

    @abc.abstractmethod
    def streams(self) -> Tuple[str, ...]:
        """Streams with any on-record data, sorted."""

    @abc.abstractmethod
    def compact(self, stream: str) -> CompactionReport:
        """Drop superseded/tombstoned/corrupt records from ``stream``."""

    @abc.abstractmethod
    def stream_stats(self, stream: str) -> StreamStats:
        """Current :class:`StreamStats` for ``stream``."""

    @abc.abstractmethod
    def drop(self, stream: str) -> None:
        """Remove ``stream`` entirely (entries and backing files)."""

    @abc.abstractmethod
    def refresh(self, stream: str) -> None:
        """Invalidate any cached index so the next access rescans."""

    # -- conveniences shared by every backend --------------------------
    def contains(self, stream: str, key: str) -> bool:
        """Key liveness.  Backends whose payloads may be JSON null must
        override this to answer from key membership, not read()."""
        return key in self.list(stream)

    def describe(self) -> str:
        """Human-readable location, e.g. ``local:.repro_cache/store``."""
        return f"{self.name}:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.root!r})"
