"""The artifact-store contract: named streams of keyed JSON payloads.

An :class:`ArtifactStore` holds independent *streams* (``"results"``,
``"datasets"``, ...).  Each stream is a last-write-wins mapping from
string keys to JSON payloads, built out of *appends*: a ``put`` appends
a record, a ``delete`` appends a tombstone, and readers see only the
final record per key.  Appends never rewrite existing data, so any
number of writers can share a store; :meth:`ArtifactStore.compact`
reclaims the space superseded records leave behind.

The contract is executable: every backend registered in
:data:`repro.storage.STORE_BACKENDS` runs through the same conformance
suite (``tests/test_artifact_store_conformance.py``), with the
in-memory backend acting as the specification the file-backed ones are
compared against.

Payloads must be JSON-serializable; a backend may hand back an equal
copy rather than the object that was appended (they round-trip through
JSON), which keeps every backend observationally identical to the
in-memory spec.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

#: stored-line format version shared by the file backends; lines with a
#: different version are treated as corrupt (skipped + counted) instead
#: of mis-read
STORAGE_SCHEMA = 1


class StoreError(Exception):
    """A backend violated its own invariants (torn append, bad shard)."""


@dataclass(frozen=True)
class StreamStats:
    """Point-in-time shape of one stream.

    ``superseded`` and ``tombstones`` measure reclaimable appends;
    ``corrupt`` counts undecodable or foreign lines skipped during the
    scan.  All three drop to zero after :meth:`ArtifactStore.compact`.
    """

    entries: int = 0
    superseded: int = 0
    tombstones: int = 0
    corrupt: int = 0
    shards: int = 0
    bytes: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"entries": self.entries, "superseded": self.superseded,
                "tombstones": self.tombstones, "corrupt": self.corrupt,
                "shards": self.shards, "bytes": self.bytes}


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`ArtifactStore.compact` call dropped and kept."""

    stream: str
    kept: int = 0
    dropped_superseded: int = 0
    dropped_tombstones: int = 0
    dropped_corrupt: int = 0

    @property
    def dropped(self) -> int:
        return (self.dropped_superseded + self.dropped_tombstones
                + self.dropped_corrupt)

    def to_dict(self) -> Dict[str, Any]:
        return {"stream": self.stream, "kept": self.kept,
                "dropped_superseded": self.dropped_superseded,
                "dropped_tombstones": self.dropped_tombstones,
                "dropped_corrupt": self.dropped_corrupt}


class ArtifactStore(abc.ABC):
    """Open/append/read/list/delete over named streams (see module doc).

    Class attributes describe backend capabilities, which the
    conformance suite keys scenarios on:

    ``persistent``
        a second instance over the same root observes the first one's
        data (within one process at minimum).
    ``on_disk``
        entries live in real files — crash/corruption scenarios (torn
        tails, hand-edited shards, cross-process writers) apply.
    """

    name: str = "?"
    persistent: bool = False
    on_disk: bool = False

    def __init__(self, root: str) -> None:
        self.root = str(root)

    # -- the stream contract -------------------------------------------
    @abc.abstractmethod
    def open(self, stream: str) -> StreamStats:
        """Ensure ``stream``'s index is loaded; returns its stats."""

    @abc.abstractmethod
    def append(self, stream: str, key: str, payload: Any) -> None:
        """Upsert ``key`` (last write wins).  Atomic per record."""

    @abc.abstractmethod
    def read(self, stream: str, key: str) -> Optional[Any]:
        """The live payload for ``key``, or None."""

    @abc.abstractmethod
    def delete(self, stream: str, key: str) -> bool:
        """Append a tombstone; True iff ``key`` was live."""

    @abc.abstractmethod
    def list(self, stream: str) -> Tuple[str, ...]:
        """Live keys, sorted."""

    @abc.abstractmethod
    def streams(self) -> Tuple[str, ...]:
        """Streams with any on-record data, sorted."""

    @abc.abstractmethod
    def compact(self, stream: str) -> CompactionReport:
        """Drop superseded/tombstoned/corrupt records from ``stream``."""

    @abc.abstractmethod
    def stream_stats(self, stream: str) -> StreamStats:
        """Current :class:`StreamStats` for ``stream``."""

    @abc.abstractmethod
    def drop(self, stream: str) -> None:
        """Remove ``stream`` entirely (entries and backing files)."""

    @abc.abstractmethod
    def refresh(self, stream: str) -> None:
        """Invalidate any cached index so the next access rescans."""

    # -- conveniences shared by every backend --------------------------
    def contains(self, stream: str, key: str) -> bool:
        """Key liveness.  Backends whose payloads may be JSON null must
        override this to answer from key membership, not read()."""
        return key in self.list(stream)

    def describe(self) -> str:
        """Human-readable location, e.g. ``local:.repro_cache/store``."""
        return f"{self.name}:{self.root}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.root!r})"
