"""The in-memory artifact store: the executable specification.

Every conformance scenario that does not require real files runs the
file-backed backends *and* this one and expects identical observations
(``tests/test_artifact_store_conformance.py``; the hypothesis suite in
``tests/test_storage_property.py`` drives random op interleavings
through both).  To keep the semantics honest the backend stores each
payload as its canonical JSON encoding and decodes on read — appends
fail on non-serializable payloads and reads return fresh copies,
exactly like a backend with real I/O.

Worlds are shared per root *within the process* (a class-level table),
so two instances over the same root observe each other — the same
visibility a file backend provides — while distinct roots stay
isolated.  Nothing survives the process; selecting this backend
(``REPRO_STORE_BACKEND=memory``) trades durability for zero disk I/O,
which is also what makes it the fastest honest double in tests.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Optional, Tuple

from .base import ArtifactStore, CompactionReport, StreamStats


class _Stream:
    """One stream's live entries plus its reclaimable-append counters."""

    def __init__(self) -> None:
        self.entries: Dict[str, str] = {}  # key -> canonical JSON text
        self.superseded = 0
        self.tombstones = 0


class InMemoryStore(ArtifactStore):
    """Process-local :class:`ArtifactStore` (see module docstring)."""

    name = "memory"
    persistent = True   # per root, within this process
    on_disk = False

    _WORLDS: Dict[str, Dict[str, _Stream]] = {}
    _LOCK = threading.Lock()

    def __init__(self, root: str) -> None:
        super().__init__(root)
        with self._LOCK:
            self._streams = self._WORLDS.setdefault(self.root, {})

    # ------------------------------------------------------------------
    def _stream(self, stream: str, create: bool = True
                ) -> Optional[_Stream]:
        got = self._streams.get(stream)
        if got is None and create:
            got = self._streams.setdefault(stream, _Stream())
        return got

    # ------------------------------------------------------------------
    def open(self, stream: str) -> StreamStats:
        with self._LOCK:
            self._stream(stream)
        return self.stream_stats(stream)

    def append(self, stream: str, key: str, payload: Any) -> None:
        text = json.dumps(payload, separators=(",", ":"))
        with self._LOCK:
            state = self._stream(stream)
            if key in state.entries:
                state.superseded += 1
            state.entries[key] = text

    def read(self, stream: str, key: str) -> Optional[Any]:
        with self._LOCK:
            state = self._stream(stream, create=False)
            text = state.entries.get(key) if state else None
        return None if text is None else json.loads(text)

    def delete(self, stream: str, key: str) -> bool:
        with self._LOCK:
            state = self._stream(stream)
            was_live = state.entries.pop(key, None) is not None
            if was_live:  # deleting a missing key appends nothing
                state.superseded += 1  # the put the tombstone shadows
                state.tombstones += 1
        return was_live

    def contains(self, stream: str, key: str) -> bool:
        # key membership, not read() is None — a stored JSON null is a
        # live entry (the sharded backend answers from its index too)
        with self._LOCK:
            state = self._stream(stream, create=False)
            return bool(state) and key in state.entries

    def list(self, stream: str) -> Tuple[str, ...]:
        with self._LOCK:
            state = self._stream(stream, create=False)
            return tuple(sorted(state.entries)) if state else ()

    def streams(self) -> Tuple[str, ...]:
        with self._LOCK:
            return tuple(sorted(self._streams))

    def compact(self, stream: str) -> CompactionReport:
        with self._LOCK:
            state = self._stream(stream)
            report = CompactionReport(
                stream=stream, kept=len(state.entries),
                dropped_superseded=state.superseded,
                dropped_tombstones=state.tombstones)
            state.superseded = 0
            state.tombstones = 0
        return report

    def stream_stats(self, stream: str) -> StreamStats:
        with self._LOCK:
            state = self._stream(stream, create=False)
            if state is None:
                return StreamStats()
            size = sum(len(k) + len(v)
                       for k, v in state.entries.items())
            return StreamStats(entries=len(state.entries),
                               superseded=state.superseded,
                               tombstones=state.tombstones,
                               corrupt=0, shards=1, bytes=size)

    def drop(self, stream: str) -> None:
        with self._LOCK:
            self._streams.pop(stream, None)

    def refresh(self, stream: str) -> None:
        pass  # the world IS the index; nothing to rescan
