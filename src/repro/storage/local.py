"""The default artifact store: sharded, append-only, compacting files.

Layout (one directory per stream under the store root)::

    <root>/<stream>/meta.json        # {"schema": 1, "shards": N}
    <root>/<stream>/shard-03.jsonl   # append-only records
    <root>/<stream>/shard-03.lock    # flock target (never replaced)

Each record is one JSON line — ``{"schema": 1, "key": ..., "payload":
..., "crc": ...}`` for a put, ``{"schema": 1, "key": ...,
"tombstone": true, "crc": ...}`` for a delete.  ``crc`` is the crc32
integrity envelope from :func:`repro.storage.base.record_crc`; lines
written before it existed simply lack the field and are accepted as
legacy.  A key always lands in the shard named by a prefix of its
SHA-256 digest (mod the stream's shard count, pinned in ``meta.json``
so reconfigured stores keep finding old keys), which means last-write-
wins ordering only ever needs the order *within* one file.

Safety model
------------
* **Appends are atomic.**  Every record goes down as exactly one
  ``os.write`` on an ``O_APPEND`` descriptor while holding the shard's
  ``flock``; a short write raises :class:`StoreError` instead of
  leaving a torn prefix.  Concurrent sessions and fork-pool workers
  therefore interleave whole lines, never fragments.
* **Reads are index + seek.**  A scan of the shard files builds an
  in-memory ``key -> (shard, offset, length)`` index; payloads are read
  back on demand.  If another process compacted a shard underneath us
  the record at the remembered offset no longer matches its key and the
  reader rescans once before answering.
* **Corruption is contained.**  Undecodable lines, foreign schemas and
  torn tails (a final line with no newline — impossible under the
  atomic-append rule, so always a crash artifact) are skipped and
  counted, never served.  Records that parse but fail their crc are
  counted as ``mismatched`` and reported missing rather than served
  (``REPRO_STORE_VERIFY``: verify on every read by default, on every
  scanned line under ``paranoid``, never under ``off``).
* **Compaction repairs.**  :meth:`LocalShardedStore.compact` rewrites
  each shard under its lock via write-temp-then-rename, keeping only
  the winning put per live key (byte-identical lines) and dropping
  superseded records, tombstones and corrupt lines.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .base import (INTEGRITY, STORAGE_SCHEMA, ArtifactStore,
                   CompactionReport, StoreError, StreamStats,
                   record_crc, record_crc_ok, verify_mode)

DEFAULT_SHARDS = 16
META_FILE = "meta.json"

#: default fault-injection site for appends; the mirrored backend
#: overrides per replica (``store.append.0``, ``store.append.1``, ...)
#: so a test can corrupt exactly one copy
APPEND_FAULT_SITE = "store.append"

_corrupt_bytes = None  # resolved lazily; see _apply_write_faults


def _apply_write_faults(site: str, data: bytes) -> bytes:
    """Run ``data`` through any scheduled store-write fault.

    Imported lazily so the storage plane never drags the testing
    package in at import time; with no active fault plan this is a
    cached-attribute lookup and one function call.
    """
    global _corrupt_bytes
    if _corrupt_bytes is None:
        from ..testing.faults import corrupt_bytes
        _corrupt_bytes = corrupt_bytes
    return _corrupt_bytes(site, data)

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


@contextmanager
def exclusive_lock(path) -> Iterator[None]:
    """An advisory cross-process lock on ``path`` (no-op without fcntl).

    The lock file itself is never replaced or deleted, so every process
    flocks the same inode — unlike the shard files, which compaction
    swaps out via rename.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield
        return
    fd = os.open(str(path), os.O_RDWR | os.O_CREAT, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)  # closing drops the flock


def shard_of(key: str, shards: int) -> int:
    """Deterministic shard id: a prefix of the key's SHA-256 digest."""
    prefix = hashlib.sha256(key.encode()).hexdigest()[:8]
    return int(prefix, 16) % shards


class _Loc:
    """Where one live record sits: (shard id, byte offset, byte length)."""

    __slots__ = ("shard", "offset", "length")

    def __init__(self, shard: int, offset: int, length: int) -> None:
        self.shard = shard
        self.offset = offset
        self.length = length


class _StreamState:
    """Index + reclaimable-append counters for one loaded stream."""

    def __init__(self, shards: int) -> None:
        self.shards = shards
        self.index: Dict[str, _Loc] = {}
        self.superseded = 0
        self.tombstones = 0
        self.corrupt = 0
        self.mismatched = 0


class LocalShardedStore(ArtifactStore):
    """Sharded append-only file backend (see module docstring)."""

    name = "local"
    persistent = True
    on_disk = True

    def __init__(self, root: str, shards: int = DEFAULT_SHARDS) -> None:
        super().__init__(root)
        if shards < 1 or shards > 256:
            raise ValueError(f"shard count must be in 1..256, "
                             f"got {shards}")
        self.default_shards = shards
        self._states: Dict[str, _StreamState] = {}
        self._lock = threading.RLock()

    # -- paths ---------------------------------------------------------
    def stream_dir(self, stream: str) -> Path:
        if not stream or "/" in stream or stream.startswith("."):
            raise ValueError(f"bad stream name {stream!r}")
        return Path(self.root) / stream

    def shard_path(self, stream: str, shard: int) -> Path:
        return self.stream_dir(stream) / f"shard-{shard:02x}.jsonl"

    def _lock_path(self, stream: str, shard: int) -> Path:
        return self.stream_dir(stream) / f"shard-{shard:02x}.lock"

    def shard_paths(self, stream: str) -> List[Path]:
        """Existing shard files, sorted (conformance/corruption hooks)."""
        return sorted(self.stream_dir(stream).glob("shard-*.jsonl"))

    # -- stream bootstrap ----------------------------------------------
    def _ensure_dir(self, stream: str, create: bool = False) -> int:
        """Shard count for ``stream``, creating dir + meta if asked.

        Reads (readers, ``streams()``, stats) never create directories;
        the first append pins the configured shard count in
        ``meta.json`` so later reconfiguration can't re-home keys.
        """
        sdir = self.stream_dir(stream)
        meta = sdir / META_FILE
        if meta.exists():
            try:
                return int(json.loads(meta.read_text())["shards"])
            except (ValueError, KeyError, TypeError, json.JSONDecodeError):
                return self.default_shards  # damaged meta: best effort
        if not create:
            return self.default_shards
        sdir.mkdir(parents=True, exist_ok=True)
        tmp = sdir / f"{META_FILE}.tmp.{os.getpid()}"
        tmp.write_text(json.dumps(
            {"schema": STORAGE_SCHEMA, "shards": self.default_shards}))
        os.replace(tmp, meta)  # racing creators write identical content
        return self.default_shards

    def _state(self, stream: str) -> _StreamState:
        state = self._states.get(stream)
        if state is None:
            state = self._scan(stream)
            self._states[stream] = state
        return state

    # -- scanning ------------------------------------------------------
    def _scan(self, stream: str) -> _StreamState:
        state = _StreamState(self._ensure_dir(stream))
        self._gc_stale_tmps(stream)
        verify = verify_mode() == "paranoid"
        for path in self.shard_paths(stream):
            try:
                shard = int(path.stem.split("-", 1)[1], 16)
            except (IndexError, ValueError):
                continue  # foreign file; never written by us
            self._scan_shard(state, path, shard, verify)
        return state

    def _gc_stale_tmps(self, stream: str) -> None:
        """Reap compaction temp files orphaned by a crash.

        A crash between write-temp and rename leaves
        ``shard-XX.jsonl.tmp.<pid>`` behind forever.  Each orphan is
        removed under its shard's lock: a live compactor holds that
        lock across write+rename, so by the time we acquire it either
        the rename happened (the temp is gone) or the temp really is
        an orphan.
        """
        sdir = self.stream_dir(stream)
        if not sdir.is_dir():
            return
        for tmp in sdir.glob("shard-*.jsonl.tmp.*"):
            try:
                shard = int(tmp.name.split("-", 1)[1].split(".", 1)[0],
                            16)
            except (IndexError, ValueError):
                continue
            with exclusive_lock(self._lock_path(stream, shard)):
                if tmp.exists():
                    try:
                        tmp.unlink()
                    except OSError:  # pragma: no cover - racing unlink
                        pass

    def _scan_shard(self, state: _StreamState, path: Path,
                    shard: int, verify: bool = False) -> None:
        data = path.read_bytes()
        offset = 0
        total = len(data)
        while offset < total:
            newline = data.find(b"\n", offset)
            if newline < 0:
                state.corrupt += 1  # torn tail from a mid-line crash
                break
            raw = data[offset:newline]
            length = newline + 1 - offset
            self._scan_line(state, raw, shard, offset, length, verify)
            offset = newline + 1

    def _scan_line(self, state: _StreamState, raw: bytes, shard: int,
                   offset: int, length: int,
                   verify: bool = False) -> None:
        record = decode_record(raw)
        if record is None:
            if raw.strip():  # blank lines are noise, not corruption
                state.corrupt += 1
            return
        if verify and not record_crc_ok(record):
            # paranoid scans refuse to let a damaged record win
            # last-write-wins ordering; an earlier valid put survives
            state.mismatched += 1
            INTEGRITY.inc("crc_mismatches")
            return
        key = record["key"]
        if record.get("tombstone"):
            if state.index.pop(key, None) is not None:
                state.superseded += 1  # the put this tombstone shadows
            state.tombstones += 1
            return
        if key in state.index:
            state.superseded += 1
        state.index[key] = _Loc(shard, offset, length)

    # -- the stream contract -------------------------------------------
    def open(self, stream: str) -> StreamStats:
        with self._lock:
            self._state(stream)
        return self.stream_stats(stream)

    def append(self, stream: str, key: str, payload: Any) -> None:
        record = {"schema": STORAGE_SCHEMA, "key": key,
                  "payload": payload,
                  "crc": record_crc(key, payload)}
        self._append_record(stream, key, record, live=True)

    def delete(self, stream: str, key: str) -> bool:
        with self._lock:
            if key not in self._state(stream).index:
                return False  # deleting a missing key appends nothing
            record = {"schema": STORAGE_SCHEMA, "key": key,
                      "tombstone": True,
                      "crc": record_crc(key, tombstone=True)}
            self._append_record(stream, key, record, live=False)
        return True

    def _append_record(self, stream: str, key: str, record: dict,
                       live: bool) -> None:
        line = json.dumps(record, separators=(",", ":")) + "\n"
        data = line.encode()
        if b"\n" in data[:-1]:
            raise StoreError(f"payload for {key!r} encodes to multiple "
                             f"lines; not appendable")
        # scheduled corruption faults (bitflip/truncate/garbage) hit the
        # encoded line here, before it reaches the shard, so scrub and
        # read-repair paths are exercised against real on-disk damage
        data = _apply_write_faults(
            getattr(self, "fault_site", APPEND_FAULT_SITE), data)
        with self._lock:
            state = self._state(stream)
            # the first append pins the shard count; later appends
            # follow whatever meta.json pinned, even if another process
            # created it with a different configuration
            state.shards = self._ensure_dir(stream, create=True)
            shard = shard_of(key, state.shards)
            path = self.shard_path(stream, shard)
            with exclusive_lock(self._lock_path(stream, shard)):
                fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND,
                             0o644)
                try:
                    size = os.fstat(fd).st_size
                    # a crash can leave the shard without its trailing
                    # newline; heal it here or the new record would fuse
                    # with the torn fragment into one corrupt line
                    record_len = len(data)
                    if size and os.pread(fd, 1, size - 1) != b"\n":
                        data = b"\n" + data
                    offset = size + len(data) - record_len
                    written = os.write(fd, data)
                finally:
                    os.close(fd)
            if written != len(data):
                raise StoreError(
                    f"torn append on {path}: wrote {written} of "
                    f"{len(data)} bytes for key {key!r}")
            old = state.index.pop(key, None)
            if old is not None:
                state.superseded += 1
            if live:
                state.index[key] = _Loc(shard, offset, record_len)
            else:
                state.tombstones += 1

    def read(self, stream: str, key: str) -> Optional[Any]:
        with self._lock:
            for attempt in range(2):
                state = self._state(stream)
                loc = state.index.get(key)
                if loc is None:
                    return None
                record = self._record_at(stream, loc)
                if (record is not None and record["key"] == key
                        and not record.get("tombstone")):
                    if (verify_mode() != "off"
                            and not record_crc_ok(record)):
                        # damaged payload: report the key missing and
                        # count it rather than serve altered data
                        state.mismatched += 1
                        INTEGRITY.inc("crc_mismatches")
                        state.index.pop(key, None)
                        return None
                    return record["payload"]
                # another process compacted this shard: offsets moved
                self._states.pop(stream, None)
        raise StoreError(f"index for stream {stream!r} is unstable; "
                         f"key {key!r} moved during both read attempts")

    def _record_at(self, stream: str, loc: _Loc) -> Optional[dict]:
        path = self.shard_path(stream, loc.shard)
        try:
            with open(path, "rb") as handle:
                handle.seek(loc.offset)
                raw = handle.read(loc.length)
        except OSError:
            return None
        if not raw.endswith(b"\n"):
            return None
        return decode_record(raw[:-1])

    def list(self, stream: str) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._state(stream).index))

    def contains(self, stream: str, key: str) -> bool:
        with self._lock:
            return key in self._state(stream).index

    def streams(self) -> Tuple[str, ...]:
        root = Path(self.root)
        if not root.is_dir():
            return ()
        found = []
        for child in root.iterdir():
            if child.is_dir() and ((child / META_FILE).exists()
                                   or list(child.glob("shard-*.jsonl"))):
                found.append(child.name)
        return tuple(sorted(found))

    def compact(self, stream: str) -> CompactionReport:
        kept = superseded = tombstones = corrupt = mismatched = 0
        verify = verify_mode() != "off"
        with self._lock:
            state = self._state(stream)
            for shard in range(state.shards):
                path = self.shard_path(stream, shard)
                if not path.exists():
                    continue
                with exclusive_lock(self._lock_path(stream, shard)):
                    k, s, t, c, m = self._compact_shard(path, verify)
                kept += k
                superseded += s
                tombstones += t
                corrupt += c
                mismatched += m
            self._states.pop(stream, None)  # offsets moved: rescan
            self._state(stream)
        return CompactionReport(stream=stream, kept=kept,
                                dropped_superseded=superseded,
                                dropped_tombstones=tombstones,
                                dropped_corrupt=corrupt,
                                dropped_mismatched=mismatched)

    @staticmethod
    def _compact_shard(path: Path,
                       verify: bool = True) -> Tuple[int, int, int,
                                                     int, int]:
        """Rewrite one shard keeping only winning puts (byte-identical).

        Caller holds the shard lock.  Returns (kept, superseded,
        tombstones, corrupt, mismatched) line counts.  With ``verify``
        a record whose crc fails is dropped like a corrupt line — an
        earlier valid put for the same key survives the rewrite.
        """
        superseded = tombstones = corrupt = mismatched = 0
        live: "Dict[str, bytes]" = {}
        data = path.read_bytes()
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                corrupt += 1  # torn tail
                break
            raw = data[offset:newline]
            offset = newline + 1
            record = decode_record(raw)
            if record is None:
                if raw.strip():
                    corrupt += 1
                continue
            if verify and not record_crc_ok(record):
                mismatched += 1  # damage compacted away, not kept
                continue
            key = record["key"]
            if record.get("tombstone"):
                if live.pop(key, None) is not None:
                    superseded += 1
                tombstones += 1
                continue
            if live.pop(key, None) is not None:
                superseded += 1
            live[key] = raw  # re-insert: file keeps last-write order
        if not live:
            path.unlink()
            return 0, superseded, tombstones, corrupt, mismatched
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with open(tmp, "wb") as handle:
            handle.write(b"".join(raw + b"\n" for raw in live.values()))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(live), superseded, tombstones, corrupt, mismatched

    def stream_stats(self, stream: str) -> StreamStats:
        with self._lock:
            state = self._state(stream)
            paths = self.shard_paths(stream)
            size = sum(p.stat().st_size for p in paths if p.exists())
            return StreamStats(entries=len(state.index),
                               superseded=state.superseded,
                               tombstones=state.tombstones,
                               corrupt=state.corrupt,
                               shards=len(paths), bytes=size,
                               mismatched=state.mismatched)

    def drop(self, stream: str) -> None:
        with self._lock:
            self._states.pop(stream, None)
            sdir = self.stream_dir(stream)
            if sdir.exists():
                shutil.rmtree(sdir)

    def refresh(self, stream: str) -> None:
        with self._lock:
            self._states.pop(stream, None)


def decode_record(raw: bytes) -> Optional[dict]:
    """Parse one stored line; None for corrupt/foreign lines.

    A valid record is a JSON object with our schema version, a string
    key, and either a payload or a tombstone marker.
    """
    try:
        record = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if (not isinstance(record, dict)
            or record.get("schema") != STORAGE_SCHEMA
            or not isinstance(record.get("key"), str)):
        return None
    if not record.get("tombstone") and "payload" not in record:
        return None
    return record
