"""Pluggable artifact storage: named streams of keyed JSON payloads.

The service-scale persistence layer (ROADMAP: "Sharded, compacting
result store with pluggable backends").  :class:`ArtifactStore` is the
contract — open/append/read/list/delete over named streams with
last-write-wins keys, plus compaction — :class:`LocalShardedStore` is
the default file backend (per-shard append-only files, in-memory key
index, per-shard locks, crash-tolerant scans), and
:class:`InMemoryStore` is the executable specification every backend is
conformance-tested against.  Backends register in
:data:`STORE_BACKENDS` and are selected with ``REPRO_STORE_BACKEND``.

The evaluation result store (:mod:`repro.evaluation.store`) and the
persistent corpus cache (:mod:`repro.synthesis.dataset`) are both thin
clients of this package; ``repro store stats`` / ``repro store
compact`` are the operational front end.
"""

from .base import (INTEGRITY, STORAGE_SCHEMA, ArtifactStore,
                   CompactionReport, StoreError, StreamStats,
                   record_crc, record_crc_ok, verify_mode)
from .local import (DEFAULT_SHARDS, LocalShardedStore, exclusive_lock,
                    shard_of)
from .memory import InMemoryStore
from .mirrored import ENV_STORE_MIRRORS, MirroredStore
from .registry import (DEFAULT_BACKEND, ENV_STORE_BACKEND,
                       ENV_STORE_SHARDS, STORE_BACKENDS, backend_name,
                       open_store)
from .scrub import (RepairReport, ScrubIssue, StreamScrubReport,
                    VerifyReport, repair_store, scrub_kernels,
                    verify_store)

__all__ = [
    "ArtifactStore", "CompactionReport", "StoreError", "StreamStats",
    "STORAGE_SCHEMA", "INTEGRITY",
    "record_crc", "record_crc_ok", "verify_mode",
    "LocalShardedStore", "InMemoryStore", "MirroredStore",
    "DEFAULT_SHARDS", "exclusive_lock", "shard_of",
    "STORE_BACKENDS", "DEFAULT_BACKEND", "ENV_STORE_BACKEND",
    "ENV_STORE_SHARDS", "ENV_STORE_MIRRORS", "backend_name",
    "open_store",
    "ScrubIssue", "StreamScrubReport", "VerifyReport", "RepairReport",
    "verify_store", "repair_store", "scrub_kernels",
]
