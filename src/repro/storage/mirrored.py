"""A replicated artifact store: N child backends with read-repair.

``MirroredStore`` composes child backends from the same
:data:`repro.storage.STORE_BACKENDS` registry (``REPRO_STORE_MIRRORS``
names them, default ``local,local``), each rooted at
``<root>/replica-<i>``.  Child 0 is the *primary*.

Semantics
---------
* **Writes fan out.**  ``append``/``delete``/``compact``/``drop`` go to
  every replica; a write is complete when all replicas took it.
* **Reads verify and heal.**  ``read`` probes the primary first (child
  backends already contain corruption: a record that fails its crc is
  reported missing, see :mod:`repro.storage.local`).  When the primary
  holds the key, its value wins — any replica whose copy is missing or
  differs is *read-repaired* by re-appending the primary's value.  When
  the primary lost the key (corruption, torn shard) but a replica still
  holds a verified copy, the record is restored to the primary — and to
  every other damaged replica — before being served.  Divergence is
  therefore resolved checksum-first (a copy failing its crc never
  competes), then last-write-wins with the primary as the ordering
  authority.
* **Observationally a single store.**  The mirrored backend runs
  through the same conformance + hypothesis spec-equivalence suites as
  every other backend; with no corruption its behaviour is
  indistinguishable from its primary.

Stats/compaction reports take entry accounting from the primary and sum
damage counters (``corrupt``/``mismatched``) plus ``shards``/``bytes``
across replicas, so one scrub report covers every copy.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple

from .base import (INTEGRITY, ArtifactStore, CompactionReport,
                   StreamStats)

#: comma-separated child backend names (or a bare replica count, which
#: means that many ``local`` children)
ENV_STORE_MIRRORS = "REPRO_STORE_MIRRORS"
DEFAULT_MIRRORS = "local,local"


def mirror_spec(spec: Optional[str] = None) -> Tuple[str, ...]:
    """Child backend names from ``spec`` / the environment."""
    if spec is None:
        spec = os.environ.get(ENV_STORE_MIRRORS, "") or DEFAULT_MIRRORS
    spec = spec.strip()
    if spec.isdigit():
        count = int(spec)
        if count < 2:
            raise ValueError("a mirrored store needs >= 2 replicas, "
                             f"got {count}")
        return ("local",) * count
    names = tuple(part.strip() for part in spec.split(",")
                  if part.strip())
    if len(names) < 2:
        raise ValueError(f"bad {ENV_STORE_MIRRORS} spec {spec!r}: "
                         f"need >= 2 child backends")
    if "mirrored" in names:
        raise ValueError("mirrored stores do not nest")
    return names


class MirroredStore(ArtifactStore):
    """Replicated store with primary-wins read-repair (module doc)."""

    name = "mirrored"
    persistent = True
    on_disk = True

    def __init__(self, root: str,
                 children: Optional[Sequence[ArtifactStore]] = None,
                 spec: Optional[str] = None) -> None:
        super().__init__(root)
        if children is None:
            from .registry import STORE_BACKENDS
            children = [
                STORE_BACKENDS.get(name_)(
                    str(Path(root) / f"replica-{i}"))
                for i, name_ in enumerate(mirror_spec(spec))]
        self.children: List[ArtifactStore] = list(children)
        if len(self.children) < 2:
            raise ValueError("a mirrored store needs >= 2 replicas")
        # capability flags reflect the weakest child: one volatile
        # replica makes the whole mirror volatile
        self.persistent = all(c.persistent for c in self.children)
        self.on_disk = all(c.on_disk for c in self.children)
        for i, child in enumerate(self.children):
            # per-replica fault-injection site, so a test can corrupt
            # exactly one copy (see repro.testing.faults)
            child.fault_site = f"store.append.{i}"
        self._lock = threading.RLock()
        self.read_repairs = 0

    @property
    def primary(self) -> ArtifactStore:
        return self.children[0]

    # -- the stream contract -------------------------------------------
    def open(self, stream: str) -> StreamStats:
        with self._lock:
            for child in self.children:
                child.open(stream)
        return self.stream_stats(stream)

    def append(self, stream: str, key: str, payload: Any) -> None:
        with self._lock:
            for child in self.children:
                child.append(stream, key, payload)

    def delete(self, stream: str, key: str) -> bool:
        with self._lock:
            return any([child.delete(stream, key)
                        for child in self.children])

    @staticmethod
    def _probe(child: ArtifactStore, stream: str,
               key: str) -> Tuple[bool, Any]:
        """(has a verified live copy, its value) for one replica.

        ``read`` alone cannot distinguish a JSON-null payload from a
        missing key, and a crc-failing record is only discovered *by*
        the read (which then drops the key) — so liveness is re-checked
        after the read.
        """
        if not child.contains(stream, key):
            return False, None
        value = child.read(stream, key)
        if value is None and not child.contains(stream, key):
            return False, None  # the read flagged a damaged record
        return True, value

    def read(self, stream: str, key: str) -> Optional[Any]:
        with self._lock:
            primary, *replicas = self.children
            has, value = self._probe(primary, stream, key)
            if has:
                for child in replicas:
                    child_has, child_value = self._probe(child, stream,
                                                         key)
                    if not child_has or child_value != value:
                        child.append(stream, key, value)
                        self._note_repair()
                return value
            # the primary lost this key: restore from the first replica
            # that still holds a verified copy
            for i, child in enumerate(replicas):
                child_has, child_value = self._probe(child, stream, key)
                if not child_has:
                    continue
                primary.append(stream, key, child_value)
                self._note_repair()
                for other in replicas[i + 1:]:
                    other_has, other_value = self._probe(other, stream,
                                                         key)
                    if not other_has or other_value != child_value:
                        other.append(stream, key, child_value)
                        self._note_repair()
                return child_value
            return None

    def _note_repair(self) -> None:
        self.read_repairs += 1
        INTEGRITY.inc("read_repairs")

    def contains(self, stream: str, key: str) -> bool:
        with self._lock:
            return any(child.contains(stream, key)
                       for child in self.children)

    def list(self, stream: str) -> Tuple[str, ...]:
        with self._lock:
            keys = set()
            for child in self.children:
                keys.update(child.list(stream))
            return tuple(sorted(keys))

    def streams(self) -> Tuple[str, ...]:
        with self._lock:
            found = set()
            for child in self.children:
                found.update(child.streams())
            return tuple(sorted(found))

    def compact(self, stream: str) -> CompactionReport:
        with self._lock:
            reports = [child.compact(stream)
                       for child in self.children]
        head = reports[0]
        return CompactionReport(
            stream=stream, kept=head.kept,
            dropped_superseded=head.dropped_superseded,
            dropped_tombstones=head.dropped_tombstones,
            dropped_corrupt=sum(r.dropped_corrupt for r in reports),
            dropped_mismatched=sum(r.dropped_mismatched
                                   for r in reports))

    def stream_stats(self, stream: str) -> StreamStats:
        with self._lock:
            stats = [child.stream_stats(stream)
                     for child in self.children]
        head = stats[0]
        return StreamStats(
            entries=head.entries, superseded=head.superseded,
            tombstones=head.tombstones,
            corrupt=sum(s.corrupt for s in stats),
            mismatched=sum(s.mismatched for s in stats),
            shards=sum(s.shards for s in stats),
            bytes=sum(s.bytes for s in stats))

    def drop(self, stream: str) -> None:
        with self._lock:
            for child in self.children:
                child.drop(stream)

    def refresh(self, stream: str) -> None:
        with self._lock:
            for child in self.children:
                child.refresh(stream)

    # -- repair / conformance hooks ------------------------------------
    def repair_stream(self, stream: str) -> int:
        """Read-repair every key of ``stream`` across all replicas.

        Returns the number of repairs performed; follow with
        :meth:`compact` to purge the damaged lines themselves.
        """
        with self._lock:
            before = self.read_repairs
            for key in self.list(stream):
                self.read(stream, key)
            return self.read_repairs - before

    def shard_paths(self, stream: str) -> List[Path]:
        """The *primary's* shard files (conformance/corruption hooks)."""
        return self.primary.shard_paths(stream)

    def describe(self) -> str:
        inner = ",".join(c.name for c in self.children)
        return f"mirrored[{inner}]:{self.root}"
