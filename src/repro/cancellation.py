"""Cooperative cancellation and deadlines.

The service front door (:mod:`repro.serve`) accepts requests with
per-request deadlines and must be able to abandon work mid-flight —
on deadline expiry, on client disconnect, and during graceful drain.
Python threads cannot be killed, so cancellation is *cooperative*: the
long-running layers (the feedback pipeline, fault-injected backends,
retry sleeps) call :func:`checkpoint` at their natural step boundaries,
and the call raises :class:`Cancelled` as soon as the active
:class:`CancelToken` has been cancelled or its deadline has passed.

This module is dependency-free on purpose (like :mod:`repro.registry`)
so the low-level pipeline package can import it without pulling in the
service API.

Usage::

    token = CancelToken.with_timeout(5.0)
    with cancel_scope(token):
        session.optimize(request)       # pipeline checkpoints now fire

Without an active scope every checkpoint is a no-op, so batch and
library callers pay nothing.  Scopes are thread-local: each daemon
worker thread runs its own request under its own token.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional


class Cancelled(Exception):
    """The active request was cancelled; unwind cooperatively."""

    #: machine-readable reason ("cancelled", "deadline", "drain", ...)
    reason = "cancelled"

    def __init__(self, message: str = "request cancelled",
                 reason: str = "cancelled") -> None:
        super().__init__(message)
        self.reason = reason


class DeadlineExceeded(Cancelled):
    """The active request ran past its deadline."""

    def __init__(self, message: str = "deadline exceeded") -> None:
        super().__init__(message, reason="deadline")


def cancelled_from(reason: str, message: str) -> Cancelled:
    """Rebuild the right cancellation exception from its wire form.

    A supervised worker reports cancellation across a pipe as
    ``(reason, message)``; the daemon re-raises it in the request
    thread with the original type so the existing 503-vs-504 error
    mapping keeps working.
    """
    if reason == "deadline":
        return DeadlineExceeded(message)
    return Cancelled(message, reason=reason)


class CancelToken:
    """One request's cancellation state: an event plus a deadline.

    ``deadline`` is an absolute :func:`time.monotonic` instant (or
    ``None``).  Tokens are thread-safe; any thread may :meth:`cancel`
    while the worker thread checkpoints.
    """

    def __init__(self, deadline: Optional[float] = None,
                 clock=time.monotonic) -> None:
        self._clock = clock
        self.deadline = deadline
        self._event = threading.Event()
        self._reason = "cancelled"

    @staticmethod
    def with_timeout(seconds: Optional[float],
                     clock=time.monotonic) -> "CancelToken":
        """A token expiring ``seconds`` from now (``None``/0 = never)."""
        if seconds is None or seconds <= 0:
            return CancelToken(clock=clock)
        return CancelToken(deadline=clock() + seconds, clock=clock)

    # ------------------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        self._reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def expired(self) -> bool:
        return self.deadline is not None and self._clock() >= self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds left before the deadline (``None`` = unbounded)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def check(self) -> None:
        """Raise :class:`Cancelled`/:class:`DeadlineExceeded` if due."""
        if self._event.is_set():
            raise Cancelled(f"request {self._reason}", reason=self._reason)
        if self.expired():
            raise DeadlineExceeded()


# ----------------------------------------------------------------------
# thread-local active scope
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def current_token() -> Optional[CancelToken]:
    return getattr(_ACTIVE, "token", None)


@contextmanager
def cancel_scope(token: Optional[CancelToken]) -> Iterator[None]:
    """Install ``token`` as this thread's active cancellation scope."""
    previous = current_token()
    _ACTIVE.token = token
    try:
        yield
    finally:
        _ACTIVE.token = previous


def checkpoint() -> None:
    """Raise if the calling thread's active token is due; else no-op."""
    token = current_token()
    if token is not None:
        token.check()


def sleep_interruptible(seconds: float, slice_s: float = 0.02) -> None:
    """Sleep that honors the active token.

    Sleeps in short slices and checkpoints between them, so injected
    delays and retry backoffs wake up promptly on cancellation instead
    of pinning a drain or deadline to the full sleep duration.
    """
    end = time.monotonic() + seconds
    checkpoint()
    while True:
        left = end - time.monotonic()
        if left <= 0:
            return
        time.sleep(min(slice_s, left))
        checkpoint()
