"""Seed-input generation and mutation (§4.3).

The paper has GPT-4 read the ground-truth program and write initialisation
functions as seed inputs, then diversifies them with value-, operator- and
statement-based mutations.  Here the seed role is played by the
deterministic init variants of ``repro.runtime.data`` (each variant is
"one initialisation function"); the three mutation classes operate on
the materialised arrays exactly as described:

* value-based   — perturb individual elements,
* operator-based — apply a whole-array operator (scale / negate / shift),
* statement-based — overwrite a block region (as if an init statement
  changed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from ..ir.program import Program
from ..runtime.data import Storage, allocate

MUTATION_KINDS = ("value", "operator", "statement")


@dataclass(frozen=True)
class TestInput:
    """A reproducible input: seed variant + mutation descriptors."""

    variant: int
    mutations: Tuple[Tuple[str, int], ...] = ()

    def describe(self) -> str:
        if not self.mutations:
            return f"seed(variant={self.variant})"
        ops = ",".join(f"{k}#{s}" for k, s in self.mutations)
        return f"seed(variant={self.variant})+{ops}"


def materialize_input(program: Program, params: Mapping[str, int],
                      test_input: TestInput) -> Storage:
    """Build the concrete arrays for one test input."""
    storage = allocate(program, params, test_input.variant)
    for kind, seed in test_input.mutations:
        _apply_mutation(storage, kind, seed)
    return storage


def _apply_mutation(storage: Storage, kind: str, seed: int) -> None:
    rng = random.Random(seed)
    names = sorted(storage)
    name = names[rng.randrange(len(names))]
    arr = storage[name]
    if kind == "value":
        flat = arr.reshape(-1)
        for _ in range(min(4, flat.size)):
            flat[rng.randrange(flat.size)] += rng.uniform(-2.0, 2.0)
    elif kind == "operator":
        op = rng.choice(("scale", "negate", "shift"))
        if op == "scale":
            arr *= rng.uniform(0.25, 2.5)
        elif op == "negate":
            np.negative(arr, out=arr)
        else:
            arr += rng.uniform(-1.5, 1.5)
    elif kind == "statement":
        flat = arr.reshape(-1)
        lo = rng.randrange(max(1, flat.size // 2))
        hi = min(flat.size, lo + max(1, flat.size // 4))
        flat[lo:hi] = rng.uniform(-1.0, 1.0)
    else:  # pragma: no cover
        raise ValueError(f"unknown mutation kind {kind!r}")


def input_pool(max_seeds: int = 4, mutations_per_seed: int = 8,
               seed: int = 0) -> List[TestInput]:
    """The candidate pool the coverage-guided selector draws from."""
    rng = random.Random(seed)
    pool: List[TestInput] = []
    for variant in range(max_seeds):
        pool.append(TestInput(variant=variant))
        for m in range(mutations_per_seed):
            kind = MUTATION_KINDS[m % len(MUTATION_KINDS)]
            pool.append(TestInput(
                variant=variant,
                mutations=((kind, rng.randrange(1_000_000)),)))
    return pool
