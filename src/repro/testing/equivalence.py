"""Equivalence checking: coverage-guided differential testing (§4.3).

For one target program at one parameter binding, an
:class:`EquivalenceChecker`:

1. selects test inputs *coverage-guided*: inputs are taken from the
   mutation pool until branch coverage of the ground truth saturates
   (the paper's 500+ → ~25 reduction; our pool is proportionally
   smaller), with a minimum floor so differential power remains;
2. runs the ground truth once per selected input and caches outputs;
3. checks each candidate with **checksum testing** first (the quick
   filter) and **element-wise testing** second, with FP tolerance —
   legal reorderings change floating-point rounding, so exact equality
   would reject legal transformations.

Two *audits* complement interpretation, standing in for effects that only
manifest at full problem scale or under true concurrency (the paper's
tests run the real binaries at EXTRALARGE sizes on 96 threads, where both
effects appear):

* **order audit** — a candidate whose schedule reorders a recorded
  dependence witness is wrong at any size where its tile boundaries are
  crossed, even if the small differential size hides it (a size-32 tile
  never crosses a boundary at N=8);
* **race audit** — the interpreter is sequential, so an ``omp parallel``
  mark on a dependence-carrying loop cannot corrupt outputs here, but
  would on the testbed; the audit rejects it the way a real run's
  nondeterministic output mismatch would.

Verdicts map onto the paper's failure classes: IA (wrong answer),
RE (runtime error), ET (instance budget / modeled timeout elsewhere).
Results are memoized by candidate fingerprint — identical candidate
programs across pipeline rounds and configurations test once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..ir.program import Program
from ..runtime.data import Storage, checksum, clone_storage
from ..runtime.interpreter import (BranchCoverage, BudgetExceededError,
                                   RuntimeExecutionError, execute)
from .inputs import TestInput, input_pool, materialize_input

VERDICT_PASS = "pass"
VERDICT_IA = "IA"   # incorrect answer
VERDICT_RE = "RE"   # runtime error
VERDICT_ET = "ET"   # execution timeout (instance budget)

_RTOL = 1e-6
_ATOL = 1e-9

#: coverage-guided selection floor/ceiling
_MIN_INPUTS = 3
_MAX_INPUTS = 12
_SATURATION_PATIENCE = 2


@dataclass(frozen=True)
class TestReport:
    """Outcome of testing one candidate."""

    verdict: str
    detail: str = ""
    inputs_used: int = 0

    @property
    def passed(self) -> bool:
        return self.verdict == VERDICT_PASS


def _checksum(outputs: Mapping[str, np.ndarray]) -> float:
    """Quick-filter checksum — ``runtime.data.checksum`` over the outputs."""
    return checksum(outputs, tuple(outputs))


class EquivalenceChecker:
    """Differential tester for one (program, params) pair."""

    def __init__(self, original: Program, params: Mapping[str, int],
                 budget: int = 400_000, seed: int = 0) -> None:
        self.original = original
        self.params = dict(params)
        self.budget = budget
        self._inputs: List[TestInput] = []
        self._storages: List[Storage] = []
        self._expected: List[Dict[str, np.ndarray]] = []
        self._checksums: List[float] = []
        self._verdict_cache: Dict[str, TestReport] = {}
        self._select_inputs(seed)

    # ------------------------------------------------------------------
    def _select_inputs(self, seed: int) -> None:
        coverage = BranchCoverage()
        stale = 0
        for candidate in input_pool(seed=seed):
            if len(self._inputs) >= _MAX_INPUTS:
                break
            if stale >= _SATURATION_PATIENCE and \
                    len(self._inputs) >= _MIN_INPUTS:
                break
            storage = materialize_input(self.original, self.params,
                                        candidate)
            pristine = clone_storage(storage)
            before = coverage.ratio()
            execute(self.original, self.params, storage,
                    coverage=coverage, budget=self.budget)
            improved = coverage.ratio() > before
            keep = improved or len(self._inputs) < _MIN_INPUTS
            if keep:
                self._inputs.append(candidate)
                self._storages.append(pristine)
                outputs = {name: storage[name].copy()
                           for name in self.original.outputs}
                self._expected.append(outputs)
                self._checksums.append(_checksum(outputs))
            stale = 0 if improved else stale + 1
        self.coverage = coverage.ratio()

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    # ------------------------------------------------------------------
    def check(self, candidate: Program) -> TestReport:
        """Differentially test one candidate against the ground truth."""
        key = candidate.fingerprint()
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached
        report = self._check_uncached(candidate)
        self._verdict_cache[key] = report
        return report

    def _check_uncached(self, candidate: Program) -> TestReport:
        audit = self._audits(candidate)
        if audit is not None:
            return audit
        used = 0
        for idx, pristine in enumerate(self._storages):
            storage = clone_storage(pristine)
            used += 1
            try:
                execute(candidate, self.params, storage,
                        budget=self.budget)
            except RuntimeExecutionError as exc:
                return TestReport(VERDICT_RE, str(exc), used)
            except BudgetExceededError as exc:
                return TestReport(VERDICT_ET, str(exc), used)
            except Exception as exc:  # defensive: malformed candidates
                return TestReport(VERDICT_RE, repr(exc), used)
            outputs = {name: storage.get(name)
                       for name in self.original.outputs}
            if any(arr is None for arr in outputs.values()):
                return TestReport(VERDICT_IA,
                                  "missing output array", used)
            # quick filter: checksum testing, then element-wise testing
            got_sum = _checksum(outputs)
            want_sum = self._checksums[idx]
            if math.isclose(got_sum, want_sum, rel_tol=1e-5, abs_tol=1e-6):
                continue
            if not self._elementwise(outputs, idx):
                return TestReport(
                    VERDICT_IA,
                    f"output mismatch on {self._inputs[idx].describe()}",
                    used)
        return TestReport(VERDICT_PASS, "", used)

    def _audits(self, candidate: Program) -> Optional[TestReport]:
        """Full-scale order audit + concurrency race audit (see module doc)."""
        from ..analysis.dependences import dependences, schedule_violations
        try:
            deps = dependences(self.original)
        except Exception:
            return None
        own = {s.name for s in self.original.statements}
        cand_names = {s.name for s in candidate.statements}
        if own - cand_names:
            return None  # structure diverged; leave it to interpretation
        try:
            reordered = schedule_violations(candidate, deps)
        except Exception:
            return None
        if reordered:
            dep = reordered[0]
            return TestReport(
                VERDICT_IA,
                f"reordered dependence {dep} (manifests at full size)", 0)
        from ..compilers.base import concurrency_violations
        for col in sorted(candidate.parallel_dims | candidate.vector_dims):
            kind = ("parallel" if col in candidate.parallel_dims
                    else "simd")
            try:
                racy = concurrency_violations(candidate, deps, col,
                                              forgive_reductions=True)
            except Exception:
                return None
            if racy:
                return TestReport(
                    VERDICT_IA,
                    f"data race: {kind} loop at column {col} carries "
                    f"{racy[0]}", 0)
        return None

    def _elementwise(self, outputs: Mapping[str, np.ndarray],
                     idx: int) -> bool:
        expected = self._expected[idx]
        for name, want in expected.items():
            got = outputs[name]
            if got.shape != want.shape:
                return False
            if not np.allclose(got, want, rtol=_RTOL, atol=_ATOL,
                               equal_nan=True):
                return False
        return True


_CHECKER_CACHE: Dict[Tuple[str, Tuple[Tuple[str, int], ...]],
                     EquivalenceChecker] = {}


def checker_for(original: Program, params: Mapping[str, int],
                seed: int = 0) -> EquivalenceChecker:
    """Session-cached checker (the ground truth runs only once)."""
    key = (original.fingerprint(), tuple(sorted(params.items())))
    checker = _CHECKER_CACHE.get(key)
    if checker is None:
        checker = EquivalenceChecker(original, params, seed=seed)
        if len(_CHECKER_CACHE) > 512:
            _CHECKER_CACHE.clear()
        _CHECKER_CACHE[key] = checker
    return checker
