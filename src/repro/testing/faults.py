"""Deterministic fault injection (``REPRO_FAULTS``).

Every robustness claim the serve daemon makes — retries recover from
flaky backends, breakers trip on persistent failure, deadlines cancel
stalls — is exercised against *injected* faults, not asserted.  A
fault plan is a seeded, counted schedule of failures keyed by call
site, so every test run sees exactly the same faults in exactly the
same order.

Spec grammar (``REPRO_FAULTS`` or :func:`FaultPlan.parse`)::

    clause[;clause...]
    clause  := site:kind[:key=value...]
    site    := llm.generate | compiler.optimize | <any string>
    kind    := raise | timeout | malformed | delay

    keys: times=N    inject on the first N matching calls (default: 1)
          always     inject on every matching call
          every=K    inject on every Kth matching call (1-based)
          after=N    skip the first N matching calls
          seconds=S  sleep S seconds (kind delay; default 0.05)

Examples::

    REPRO_FAULTS="llm.generate:raise:times=2"
    REPRO_FAULTS="llm.generate:delay:seconds=0.2:always"
    REPRO_FAULTS="llm.generate:malformed:every=3;compiler.optimize:raise:times=1"

Faults raised here carry ``transient = True`` so the resilience layer
(:mod:`repro.api.resilience`) retries them; ``delay`` sleeps through
:func:`repro.cancellation.sleep_interruptible` so deadlines and drain
interrupt an injected stall.

The injected LLM backend registers in ``LLM_BACKENDS`` as ``"faulty"``
(see :func:`register_fault_backends`): it wraps the ``simulated``
backend and consults the active plan before each ``generate`` call —
faults fire *before* the inner model consumes any randomness, so a
retried call returns the byte-identical response a fault-free run
produces.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cancellation import sleep_interruptible

KINDS = ("raise", "timeout", "malformed", "delay")


class FaultInjected(ConnectionError):
    """An injected transient backend failure."""

    transient = True


class FaultTimeout(TimeoutError):
    """An injected backend timeout."""

    transient = True


class MalformedReply(ValueError):
    """An injected unparseable/garbage backend reply."""

    transient = True

    def __init__(self, site: str, payload: str) -> None:
        super().__init__(f"malformed reply from {site}: {payload!r}")
        self.payload = payload


@dataclass(frozen=True)
class FaultClause:
    """One parsed ``site:kind[:opts]`` clause."""

    site: str
    kind: str
    times: Optional[int] = 1   # None = always
    every: Optional[int] = None
    after: int = 0
    seconds: float = 0.05

    def fires(self, call_index: int, injected_so_far: int) -> bool:
        """Decide for the ``call_index``-th (0-based) matching call."""
        if call_index < self.after:
            return False
        if self.every is not None:
            return (call_index - self.after + 1) % self.every == 0
        if self.times is None:
            return True
        return injected_so_far < self.times


def _parse_clause(text: str) -> FaultClause:
    parts = [p for p in text.strip().split(":") if p]
    if len(parts) < 2:
        raise ValueError(
            f"fault clause {text!r} needs at least site:kind")
    site, kind = parts[0], parts[1]
    if kind not in KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {', '.join(KINDS)}")
    options: Dict[str, Any] = {}
    for opt in parts[2:]:
        key, sep, value = opt.partition("=")
        if not sep:
            if key == "always":
                options["times"] = None
                continue
            raise ValueError(f"bad fault option {opt!r} in {text!r}")
        if key == "times":
            options["times"] = int(value)
        elif key == "every":
            options["every"] = int(value)
        elif key == "after":
            options["after"] = int(value)
        elif key == "seconds":
            options["seconds"] = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {text!r}")
    return FaultClause(site=site, kind=kind, **options)


class FaultPlan:
    """A parsed spec plus per-clause call/injection counters.

    Counters are plan-global and lock-guarded: with a deterministic
    call order the injected faults are deterministic too, which is the
    whole point — ``repro serve`` under ``REPRO_FAULTS`` replays the
    same failure schedule on every run.
    """

    def __init__(self, clauses: List[FaultClause]) -> None:
        self.clauses = list(clauses)
        self._lock = threading.Lock()
        self._calls: Dict[int, int] = {i: 0 for i in range(len(clauses))}
        self._injected: Dict[int, int] = dict(self._calls)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        clauses = [_parse_clause(c) for c in spec.split(";")
                   if c.strip()]
        return FaultPlan(clauses)

    def describe(self) -> List[dict]:
        return [{"site": c.site, "kind": c.kind, "times": c.times,
                 "every": c.every, "after": c.after,
                 "seconds": c.seconds} for c in self.clauses]

    # ------------------------------------------------------------------
    def _due(self, site: str) -> List[FaultClause]:
        due: List[FaultClause] = []
        with self._lock:
            for i, clause in enumerate(self.clauses):
                if clause.site != site:
                    continue
                index = self._calls[i]
                self._calls[i] += 1
                if clause.fires(index, self._injected[i]):
                    self._injected[i] += 1
                    due.append(clause)
        return due

    def check(self, site: str) -> None:
        """Inject whatever the plan owes this ``site`` call.

        ``delay`` clauses sleep (interruptibly) and fall through; the
        raising kinds abort the call with their transient exception.
        """
        for clause in self._due(site):
            if clause.kind == "delay":
                sleep_interruptible(clause.seconds)
            elif clause.kind == "timeout":
                raise FaultTimeout(
                    f"injected timeout at {site}")
            elif clause.kind == "malformed":
                raise MalformedReply(site, "<<<garbage reply 0xDEAD")
            else:
                raise FaultInjected(
                    f"injected failure at {site}")

    def counts(self) -> Tuple[Tuple[str, int, int], ...]:
        """(site/kind, calls seen, faults injected) per clause."""
        with self._lock:
            return tuple(
                (f"{c.site}:{c.kind}", self._calls[i], self._injected[i])
                for i, c in enumerate(self.clauses))


# ----------------------------------------------------------------------
# the active plan: explicit install beats the environment
# ----------------------------------------------------------------------
_ACTIVE_LOCK = threading.Lock()
_ACTIVE_PLAN: Optional[FaultPlan] = None
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Pin the active plan (tests); ``None`` returns to the env spec."""
    global _ACTIVE_PLAN
    with _ACTIVE_LOCK:
        _ACTIVE_PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS``.

    The env-derived plan is cached per spec string so its counters
    persist across calls (a fresh parse per call would reset ``times``
    budgets and make every call the "first").
    """
    global _ENV_CACHE
    with _ACTIVE_LOCK:
        if _ACTIVE_PLAN is not None:
            return _ACTIVE_PLAN
        spec = os.environ.get("REPRO_FAULTS")
        if not spec:
            return None
        cached_spec, cached_plan = _ENV_CACHE
        if cached_spec != spec:
            _ENV_CACHE = (spec, FaultPlan.parse(spec))
        return _ENV_CACHE[1]


def maybe_fault(site: str) -> None:
    """Checkpoint for injectable call sites: no active plan = no-op."""
    plan = active_plan()
    if plan is not None:
        plan.check(site)


# ----------------------------------------------------------------------
# injected components
# ----------------------------------------------------------------------
class FaultyLLM:
    """The ``simulated`` backend behind a fault-injection valve.

    Faults fire before the inner session is touched, so whenever a call
    does go through, its response — and all downstream pipeline state —
    is byte-identical to a fault-free run.
    """

    SITE = "llm.generate"

    def __init__(self, inner: Any) -> None:
        self._inner = inner

    def generate(self, prompt: Any, k: int, round_tag: str = "r0") -> Any:
        maybe_fault(self.SITE)
        return self._inner.generate(prompt, k, round_tag)

    def note_result(self, k: int, passed: bool) -> None:
        self._inner.note_result(k, passed)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultyOptimizer:
    """An optimizing-compiler baseline behind the same valve."""

    SITE = "compiler.optimize"

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    def optimize(self, program: Any, params: Any) -> Any:
        maybe_fault(self.SITE)
        return self._inner.optimize(program, params)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def register_fault_backends() -> None:
    """Register the injected components (idempotent).

    * LLM backend ``"faulty"`` — ``simulated`` behind the valve;
    * optimizer ``"faulty-pluto"`` — ``pluto`` behind the valve.

    Called lazily (serve daemon startup, tests) rather than at import
    time so the default registries list only real components.
    """
    from ..api.registry import LLM_BACKENDS, OPTIMIZER_REGISTRY
    from ..compilers import OPTIMIZER_BASE

    def faulty_backend(persona: Any, seed: int) -> FaultyLLM:
        inner_factory = LLM_BACKENDS.get("simulated")
        return FaultyLLM(inner_factory(persona, seed))

    LLM_BACKENDS.register("faulty", faulty_backend, overwrite=True)

    inner_cls = OPTIMIZER_REGISTRY.get("pluto")

    def faulty_pluto() -> FaultyOptimizer:
        wrapper = FaultyOptimizer(inner_cls(), name="faulty-pluto")
        wrapper.base_compiler = OPTIMIZER_BASE["pluto"]
        return wrapper

    OPTIMIZER_REGISTRY.register("faulty-pluto", faulty_pluto,
                                overwrite=True)
