"""Deterministic fault injection (``REPRO_FAULTS``).

Every robustness claim the serve daemon makes — retries recover from
flaky backends, breakers trip on persistent failure, deadlines cancel
stalls — is exercised against *injected* faults, not asserted.  A
fault plan is a seeded, counted schedule of failures keyed by call
site, so every test run sees exactly the same faults in exactly the
same order.

Spec grammar (``REPRO_FAULTS`` or :func:`FaultPlan.parse`)::

    clause[;clause...]
    clause  := site:kind[:key=value...]
    site    := llm.generate | compiler.optimize | worker.execute | <any string>
    kind    := raise | timeout | malformed | delay      (in-process)
             | kill | oom | hang | exit                 (process-level)
             | bitflip | truncate | garbage             (data corruption)

    keys: times=N    inject on the first N matching calls (default: 1)
          always     inject on every matching call
          every=K    inject on every Kth matching call (1-based)
          after=N    skip the first N matching calls
          seconds=S  sleep S seconds (delay default 0.05; hang 3600)
          code=N     exit status for kind exit (default 3)
          mb=N       allocation target for kind oom (default 512)
          bytes=N    bytes chopped off by kind truncate (default 4)

Examples::

    REPRO_FAULTS="llm.generate:raise:times=2"
    REPRO_FAULTS="llm.generate:delay:seconds=0.2:always"
    REPRO_FAULTS="worker.execute:kill:after=1;worker.execute:oom:mb=64"
    REPRO_FAULTS="store.append:bitflip:times=1"

The data-corruption kinds (:data:`DATA_KINDS`) transform bytes in
flight rather than failing a call: store-write sites pass each encoded
record through :func:`corrupt_bytes` so a scheduled ``bitflip`` /
``truncate`` / ``garbage`` clause damages exactly the bytes that reach
the shard file — deterministically (the flip offset derives from the
record's own crc32), which is how the scrub/read-repair paths are
exercised end to end.  The mirrored store backend gives each replica
its own site (``store.append.0``, ``store.append.1``, ...) so a test
can corrupt a single copy.

Faults raised here carry ``transient = True`` so the resilience layer
(:mod:`repro.api.resilience`) retries them; ``delay`` sleeps through
:func:`repro.cancellation.sleep_interruptible` so deadlines and drain
interrupt an injected stall.

The process-level kinds (:data:`PROCESS_KINDS`) take the whole process
down — SIGKILL itself, allocate until ``MemoryError``, sleep
uninterruptibly, or ``os._exit``.  :meth:`FaultPlan.check` deliberately
*skips* them so an in-process call site can never kill the daemon or a
test runner: they only fire inside supervised worker processes, where
the parent (:mod:`repro.serve.supervisor`) decides what is due at
dispatch time via :meth:`FaultPlan.due` and ships the clauses to the
worker, which executes them with :func:`apply_clause`.  Keeping the
schedule accounting on the parent side makes the schedule deterministic
across worker crashes and restarts — a replacement worker does not
restart the counters.

The injected LLM backend registers in ``LLM_BACKENDS`` as ``"faulty"``
(see :func:`register_fault_backends`): it wraps the ``simulated``
backend and consults the active plan before each ``generate`` call —
faults fire *before* the inner model consumes any randomness, so a
retried call returns the byte-identical response a fault-free run
produces.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..cancellation import sleep_interruptible

#: kinds that fail the *call* (raise/sleep in the calling process)
INPROCESS_KINDS = ("raise", "timeout", "malformed", "delay")
#: kinds that take the *process* down; executed only inside supervised
#: worker processes (see module docstring)
PROCESS_KINDS = ("kill", "oom", "hang", "exit")
#: kinds that corrupt bytes in flight at store-write sites
DATA_KINDS = ("bitflip", "truncate", "garbage")
KINDS = INPROCESS_KINDS + PROCESS_KINDS + DATA_KINDS

#: exit status a worker uses to report death by memory exhaustion
#: (injected oom or a real MemoryError under RLIMIT_AS)
EXIT_OOM = 86


class FaultInjected(ConnectionError):
    """An injected transient backend failure."""

    transient = True


class FaultTimeout(TimeoutError):
    """An injected backend timeout."""

    transient = True


class MalformedReply(ValueError):
    """An injected unparseable/garbage backend reply."""

    transient = True

    def __init__(self, site: str, payload: str) -> None:
        super().__init__(f"malformed reply from {site}: {payload!r}")
        self.payload = payload


@dataclass(frozen=True)
class FaultClause:
    """One parsed ``site:kind[:opts]`` clause."""

    site: str
    kind: str
    times: Optional[int] = 1   # None = always
    every: Optional[int] = None
    after: int = 0
    seconds: float = 0.05
    code: int = 3              # kind exit
    megabytes: int = 512       # kind oom
    nbytes: int = 4            # kind truncate

    def fires(self, call_index: int, injected_so_far: int) -> bool:
        """Decide for the ``call_index``-th (0-based) matching call."""
        if call_index < self.after:
            return False
        if self.every is not None:
            return (call_index - self.after + 1) % self.every == 0
        if self.times is None:
            return True
        return injected_so_far < self.times


def _parse_clause(text: str) -> FaultClause:
    parts = [p for p in text.strip().split(":") if p]
    if len(parts) < 2:
        raise ValueError(
            f"fault clause {text!r} needs at least site:kind")
    site, kind = parts[0], parts[1]
    if kind not in KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; choose from {', '.join(KINDS)}")
    options: Dict[str, Any] = {}
    for opt in parts[2:]:
        key, sep, value = opt.partition("=")
        if not sep:
            if key == "always":
                options["times"] = None
                continue
            raise ValueError(f"bad fault option {opt!r} in {text!r}")
        if key == "times":
            options["times"] = int(value)
        elif key == "every":
            options["every"] = int(value)
        elif key == "after":
            options["after"] = int(value)
        elif key == "seconds":
            options["seconds"] = float(value)
        elif key == "code":
            options["code"] = int(value)
        elif key in ("mb", "megabytes"):
            options["megabytes"] = int(value)
        elif key == "bytes":
            options["nbytes"] = int(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in {text!r}")
    if kind == "hang":
        # a hang must outlive any plausible watchdog timeout, not the
        # 50ms delay default
        options.setdefault("seconds", 3600.0)
    return FaultClause(site=site, kind=kind, **options)


class FaultPlan:
    """A parsed spec plus per-clause call/injection counters.

    Counters are plan-global and lock-guarded: with a deterministic
    call order the injected faults are deterministic too, which is the
    whole point — ``repro serve`` under ``REPRO_FAULTS`` replays the
    same failure schedule on every run.
    """

    def __init__(self, clauses: List[FaultClause]) -> None:
        self.clauses = list(clauses)
        self._lock = threading.Lock()
        self._calls: Dict[int, int] = {i: 0 for i in range(len(clauses))}
        self._injected: Dict[int, int] = dict(self._calls)

    @staticmethod
    def parse(spec: str) -> "FaultPlan":
        clauses = [_parse_clause(c) for c in spec.split(";")
                   if c.strip()]
        return FaultPlan(clauses)

    def describe(self) -> List[dict]:
        docs = []
        for c in self.clauses:
            doc = {"site": c.site, "kind": c.kind, "times": c.times,
                   "every": c.every, "after": c.after,
                   "seconds": c.seconds}
            if c.kind == "exit":
                doc["code"] = c.code
            if c.kind == "oom":
                doc["megabytes"] = c.megabytes
            if c.kind == "truncate":
                doc["bytes"] = c.nbytes
            docs.append(doc)
        return docs

    # ------------------------------------------------------------------
    def due(self, site: str) -> List[FaultClause]:
        """Consume one ``site`` call and return the clauses it owes.

        This *is* the schedule: each call advances the per-clause call
        counters under the lock.  :meth:`check` executes the returned
        clauses in-process; the worker supervisor instead ships them to
        a worker process (parent-side accounting keeps the schedule
        deterministic across worker restarts).
        """
        due: List[FaultClause] = []
        with self._lock:
            for i, clause in enumerate(self.clauses):
                if clause.site != site:
                    continue
                index = self._calls[i]
                self._calls[i] += 1
                if clause.fires(index, self._injected[i]):
                    self._injected[i] += 1
                    due.append(clause)
        return due

    def check(self, site: str) -> None:
        """Inject whatever the plan owes this ``site`` call.

        ``delay`` clauses sleep (interruptibly) and fall through; the
        raising kinds abort the call with their transient exception.
        Process-level kinds are skipped — only a supervised worker may
        execute those (an in-process site must never kill the daemon).
        Data-corruption kinds are skipped too: they only make sense
        where bytes flow through (see :func:`corrupt_bytes`).
        """
        for clause in self.due(site):
            if clause.kind in PROCESS_KINDS or clause.kind in DATA_KINDS:
                continue
            apply_clause(clause, site)

    def counts(self) -> Tuple[Tuple[str, int, int], ...]:
        """(site/kind, calls seen, faults injected) per clause."""
        with self._lock:
            return tuple(
                (f"{c.site}:{c.kind}", self._calls[i], self._injected[i])
                for i, c in enumerate(self.clauses))


# ----------------------------------------------------------------------
# the active plan: explicit install beats the environment
# ----------------------------------------------------------------------
_ACTIVE_LOCK = threading.Lock()
_ACTIVE_PLAN: Optional[FaultPlan] = None
_ENV_CACHE: Tuple[Optional[str], Optional[FaultPlan]] = (None, None)


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Pin the active plan (tests); ``None`` returns to the env spec."""
    global _ACTIVE_PLAN
    with _ACTIVE_LOCK:
        _ACTIVE_PLAN = plan


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, else one parsed from ``REPRO_FAULTS``.

    The env-derived plan is cached per spec string so its counters
    persist across calls (a fresh parse per call would reset ``times``
    budgets and make every call the "first").
    """
    global _ENV_CACHE
    with _ACTIVE_LOCK:
        if _ACTIVE_PLAN is not None:
            return _ACTIVE_PLAN
        spec = os.environ.get("REPRO_FAULTS")
        if not spec:
            return None
        cached_spec, cached_plan = _ENV_CACHE
        if cached_spec != spec:
            _ENV_CACHE = (spec, FaultPlan.parse(spec))
        return _ENV_CACHE[1]


def maybe_fault(site: str) -> None:
    """Checkpoint for injectable call sites: no active plan = no-op."""
    plan = active_plan()
    if plan is not None:
        plan.check(site)


def corrupt_data(clause: FaultClause, data: bytes) -> bytes:
    """Apply one data-corruption clause to ``data``.

    * ``bitflip``  flips one bit at a content-derived offset (the
      record's own crc32 modulo its length), sparing the final byte so
      a trailing record separator survives — the damage lands *inside*
      the line, exactly what the integrity envelope must catch.
    * ``truncate`` chops ``bytes=N`` off the end (a torn write).
    * ``garbage``  replaces the data with a fixed unparseable line.

    All three are pure functions of (clause, data): the same scheduled
    fault corrupts the same bytes on every run.
    """
    if clause.kind == "bitflip":
        if len(data) < 2:
            return data
        offset = zlib.crc32(data) % (len(data) - 1)
        flipped = bytearray(data)
        flipped[offset] ^= 0x01
        return bytes(flipped)
    if clause.kind == "truncate":
        return data[:max(0, len(data) - clause.nbytes)]
    if clause.kind == "garbage":
        return b"<<garbage 0xDEADBEEF>>\n"
    raise ValueError(f"not a data fault kind: {clause.kind!r}")


def corrupt_bytes(site: str, data: bytes) -> bytes:
    """Run ``data`` through whatever the plan owes this write ``site``.

    Data-corruption clauses transform the bytes; in-process clauses
    (``raise``/``timeout``/...) still abort the call; process-level
    clauses are skipped, as in :meth:`FaultPlan.check`.  With no active
    plan the bytes pass through untouched.
    """
    plan = active_plan()
    if plan is None:
        return data
    for clause in plan.due(site):
        if clause.kind in DATA_KINDS:
            data = corrupt_data(clause, data)
        elif clause.kind in INPROCESS_KINDS:
            apply_clause(clause, site)
    return data


# ----------------------------------------------------------------------
# clause execution
# ----------------------------------------------------------------------
def apply_process_fault(clause: FaultClause) -> None:
    """Execute a process-level clause in the *current* process.

    Only a supervised worker should call this (directly or through
    :func:`apply_clause`): ``kill``/``exit`` terminate the process,
    ``hang`` sleeps uninterruptibly (the watchdog must reap it), and
    ``oom`` allocates up to ``clause.megabytes`` and then raises
    ``MemoryError`` even if every allocation succeeded — with
    ``RLIMIT_AS`` set the limit fires first, without it the explicit
    raise keeps the fault deterministic instead of gambling on the
    host's memory.
    """
    if clause.kind == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    elif clause.kind == "exit":
        os._exit(clause.code)
    elif clause.kind == "hang":
        # plain sleep on purpose: a hung worker must NOT cooperate with
        # cancellation, otherwise the watchdog path is never exercised
        time.sleep(clause.seconds)
    elif clause.kind == "oom":
        chunk_mb = 32
        hoard = []
        remaining = clause.megabytes
        while remaining > 0:
            hoard.append(bytearray(chunk_mb * 1024 * 1024))
            remaining -= chunk_mb
        del hoard
        raise MemoryError(
            f"injected oom: allocated ~{clause.megabytes}MB without "
            f"hitting a limit")
    else:
        raise ValueError(f"not a process fault kind: {clause.kind!r}")


def apply_clause(clause: FaultClause, site: str) -> None:
    """Execute one due clause (any kind) in the current process."""
    if clause.kind == "delay":
        sleep_interruptible(clause.seconds)
    elif clause.kind == "timeout":
        raise FaultTimeout(f"injected timeout at {site}")
    elif clause.kind == "malformed":
        raise MalformedReply(site, "<<<garbage reply 0xDEAD")
    elif clause.kind == "raise":
        raise FaultInjected(f"injected failure at {site}")
    else:
        apply_process_fault(clause)


# ----------------------------------------------------------------------
# injected components
# ----------------------------------------------------------------------
class FaultyLLM:
    """The ``simulated`` backend behind a fault-injection valve.

    Faults fire before the inner session is touched, so whenever a call
    does go through, its response — and all downstream pipeline state —
    is byte-identical to a fault-free run.
    """

    SITE = "llm.generate"

    def __init__(self, inner: Any) -> None:
        self._inner = inner

    def generate(self, prompt: Any, k: int, round_tag: str = "r0") -> Any:
        maybe_fault(self.SITE)
        return self._inner.generate(prompt, k, round_tag)

    def note_result(self, k: int, passed: bool) -> None:
        self._inner.note_result(k, passed)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class FaultyOptimizer:
    """An optimizing-compiler baseline behind the same valve."""

    SITE = "compiler.optimize"

    def __init__(self, inner: Any, name: str) -> None:
        self._inner = inner
        self.name = name

    def optimize(self, program: Any, params: Any) -> Any:
        maybe_fault(self.SITE)
        return self._inner.optimize(program, params)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def register_fault_backends() -> None:
    """Register the injected components (idempotent).

    * LLM backend ``"faulty"`` — ``simulated`` behind the valve;
    * optimizer ``"faulty-pluto"`` — ``pluto`` behind the valve.

    Called lazily (serve daemon startup, tests) rather than at import
    time so the default registries list only real components.
    """
    from ..api.registry import LLM_BACKENDS, OPTIMIZER_REGISTRY
    from ..compilers import OPTIMIZER_BASE

    def faulty_backend(persona: Any, seed: int) -> FaultyLLM:
        inner_factory = LLM_BACKENDS.get("simulated")
        return FaultyLLM(inner_factory(persona, seed))

    LLM_BACKENDS.register("faulty", faulty_backend, overwrite=True)

    inner_cls = OPTIMIZER_REGISTRY.get("pluto")

    def faulty_pluto() -> FaultyOptimizer:
        wrapper = FaultyOptimizer(inner_cls(), name="faulty-pluto")
        wrapper.base_compiler = OPTIMIZER_BASE["pluto"]
        return wrapper

    OPTIMIZER_REGISTRY.register("faulty-pluto", faulty_pluto,
                                overwrite=True)
