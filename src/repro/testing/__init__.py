"""Equivalence checking: mutation inputs + coverage + differential tests."""

from .equivalence import (EquivalenceChecker, TestReport, VERDICT_ET,
                          VERDICT_IA, VERDICT_PASS, VERDICT_RE,
                          checker_for)
from .inputs import (MUTATION_KINDS, TestInput, input_pool,
                     materialize_input)

__all__ = [
    "EquivalenceChecker", "TestReport", "VERDICT_ET", "VERDICT_IA",
    "VERDICT_PASS", "VERDICT_RE", "checker_for",
    "MUTATION_KINDS", "TestInput", "input_pool", "materialize_input",
]
