"""Trace-driven LRU cache simulator.

Executes the program's *access trace* (schedule order, small sizes) through
a fully-associative LRU cache and counts misses per array.  It exists to
validate the analytical model: tests assert both models agree on the
*direction* of transformation effects (tiling reduces misses, a bad
interchange increases them) even though absolute counts differ.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np

from ..ir.program import Program
from .model import DEFAULT_MACHINE, MachineModel


@dataclass(frozen=True)
class TraceResult:
    accesses: int
    misses: int
    per_array_misses: Tuple[Tuple[str, int], ...]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class LRUCache:
    """Fully-associative LRU cache of fixed byte capacity."""

    def __init__(self, capacity_bytes: int, line_bytes: int) -> None:
        if capacity_bytes < line_bytes:
            raise ValueError("cache smaller than one line")
        self.lines = max(1, capacity_bytes // line_bytes)
        self.line_bytes = line_bytes
        self._store: "OrderedDict[int, None]" = OrderedDict()
        self.misses = 0
        self.accesses = 0

    def touch(self, address_bytes: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address_bytes // self.line_bytes
        self.accesses += 1
        if line in self._store:
            self._store.move_to_end(line)
            return True
        self.misses += 1
        self._store[line] = None
        if len(self._store) > self.lines:
            self._store.popitem(last=False)
        return False


def simulate_trace(program: Program, params: Mapping[str, int],
                   machine: MachineModel = DEFAULT_MACHINE,
                   capacity_bytes: int = 0,
                   budget: int = 400_000) -> TraceResult:
    """Run the access trace through an LRU cache.

    ``capacity_bytes`` defaults to the machine cache size; tests typically
    shrink it so small problem sizes still exercise capacity misses.
    """
    capacity = capacity_bytes or machine.cache_bytes
    cache = LRUCache(capacity, machine.line_bytes)
    per_array: Dict[str, int] = {}

    # array base offsets in one flat byte-addressed space
    bases: Dict[str, int] = {}
    strides: Dict[str, Tuple[int, ...]] = {}
    offset = 0
    for decl in program.arrays:
        shape = decl.shape(params)
        row: list = []
        acc = 1
        for size in reversed(shape):
            row.append(acc)
            acc *= max(1, size)
        strides[decl.name] = tuple(reversed(row))
        bases[decl.name] = offset
        offset += acc * machine.elem_bytes + machine.line_bytes

    # batched enumeration + schedule sort shared with the interpreter
    # engines; addresses are then precomputed per statement as vectorized
    # affine maps, leaving only the inherently sequential LRU walk scalar
    from ..runtime.instances import affine_column, sorted_instances

    batch = sorted_instances(
        program, params, budget,
        lambda _b: RuntimeError("trace budget exceeded"),
        honor_guards=True)

    arrays_by_stmt = []
    addr_rows = []
    for si, stmt in enumerate(program.statements):
        points = batch.statement_order(si)
        n = len(points)
        cols = {name: points[:, d]
                for d, name in enumerate(stmt.domain.iterator_names)}
        refs = [ref for ref, _is_write in stmt.all_refs()]
        arrays_by_stmt.append([ref.array for ref in refs])
        addresses = np.empty((n, len(refs)), dtype=np.int64)
        for k, ref in enumerate(refs):
            stride = strides[ref.array]
            flat = np.zeros(n, dtype=np.int64)
            for s, ix in zip(stride, ref.indices):
                flat += s * affine_column(ix, cols, params, n)
            addresses[:, k] = bases[ref.array] + flat * machine.elem_bytes
        addr_rows.append(addresses.tolist())

    cursors = [0] * len(program.statements)
    touch = cache.touch
    for si in batch.si.tolist():
        row = addr_rows[si][cursors[si]]
        cursors[si] += 1
        names = arrays_by_stmt[si]
        for k, address in enumerate(row):
            before = cache.misses
            touch(address)
            if cache.misses != before:
                name = names[k]
                per_array[name] = per_array.get(name, 0) + 1

    return TraceResult(accesses=cache.accesses, misses=cache.misses,
                       per_array_misses=tuple(sorted(per_array.items())))
