"""Performance modeling: machine description, analytical model, trace sim."""

from .analytical import StatementCost, TimeEstimate, estimate, estimate_cached
from .loopview import LoopInfo, LoopView, build_view, estimate_guard_fraction
from .model import DEFAULT_MACHINE, MachineModel
from .tracesim import LRUCache, TraceResult, simulate_trace

__all__ = [
    "StatementCost", "TimeEstimate", "estimate", "estimate_cached",
    "LoopInfo", "LoopView", "build_view", "estimate_guard_fraction",
    "DEFAULT_MACHINE", "MachineModel",
    "LRUCache", "TraceResult", "simulate_trace",
]
