"""Analytical performance model (the native-execution substitute).

Prices a transformed SCoP on a :class:`MachineModel` using classic
reuse-distance reasoning (Wolf & Lam style):

* **compute** — body operations × instances, divided by SIMD width when the
  innermost loop is vectorized (full / reduction / gather efficiencies);
* **memory** — per array reference, a spatial miss rate from the innermost
  stride, discounted once per *temporal reuse loop* (a loop the reference
  is invariant in) whose inner footprint fits the cache — this is exactly
  the effect loop tiling, interchange and fusion buy;
* **parallelism** — compute scales by ``min(threads, trip)`` at the
  outermost OpenMP-parallel loop (with an efficiency factor) while memory
  scales only up to the bandwidth cap; each region entry pays a fork/join
  overhead;
* **overheads** — per-instance loop bookkeeping, min/max-bound entry costs
  for tiled nests (the reason PLuTo's useless tiling of flat TSVC loops is
  a pessimisation), and guard evaluation.

The model is deterministic, O(statements × references), independent of the
problem size, and validated against the trace-driven cache simulator in
``tests/test_machine_validation.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.expr import Ref
from ..ir.program import Program
from ..ir.statement import Statement
from .loopview import LoopInfo, LoopView, build_view, estimate_guard_fraction
from .model import DEFAULT_MACHINE, MachineModel

_GUARD_SAMPLE_PARAM = 8


@dataclass(frozen=True)
class StatementCost:
    """Cycle breakdown for one statement."""

    statement: str
    instances: float
    compute_cycles: float
    memory_cycles: float
    overhead_cycles: float
    misses: float
    parallel_degree: float
    vectorized: bool

    @property
    def cycles(self) -> float:
        return self.compute_cycles + self.memory_cycles + self.overhead_cycles


@dataclass(frozen=True)
class TimeEstimate:
    """Modeled execution of a whole program."""

    program: str
    seconds: float
    cycles: float
    statements: Tuple[StatementCost, ...]

    @property
    def total_misses(self) -> float:
        return sum(s.misses for s in self.statements)


def _array_strides(program: Program, params: Mapping[str, int]
                   ) -> Dict[str, Tuple[int, ...]]:
    strides: Dict[str, Tuple[int, ...]] = {}
    for decl in program.arrays:
        shape = decl.shape(params)
        out: List[int] = []
        acc = 1
        for size in reversed(shape):
            out.append(acc)
            acc *= max(1, size)
        strides[decl.name] = tuple(reversed(out))
    return strides


def _ref_step(ref: Ref, loop: LoopInfo, strides: Tuple[int, ...]) -> int:
    """Address delta (elements) caused by one increment of ``loop``."""
    deltas = loop.steps()
    total = 0
    for stride, index in zip(strides, ref.indices):
        for name, delta in deltas.items():
            total += stride * index.coeff(name) * delta
    return total


def _distinct_refs(stmt: Statement) -> List[Tuple[Ref, bool]]:
    """References deduplicated by text (the lhs of ``+=`` counts once)."""
    seen: Dict[str, Tuple[Ref, bool]] = {}
    for ref, is_write in stmt.all_refs():
        key = str(ref)
        prev = seen.get(key)
        if prev is None or (is_write and not prev[1]):
            seen[key] = (ref, is_write)
    return list(seen.values())


def _iter_spans(loops: Tuple[LoopInfo, ...],
                view: Optional[LoopView] = None) -> Dict[str, float]:
    """Values covered per iterator inside a subset of loops.

    A tile loop of trip 47 and its point loop of trip 32 together span
    47×32 ≈ 1500 values of the iterator — multiplying trips per iterator
    (rather than per loop) avoids double-counting blocked nests.  Spans
    are clamped to the iterator's true extent so skewed dimensions (whose
    trip is a sum of extents) don't overestimate coverage.
    """
    spans: Dict[str, float] = {}
    for loop in loops:
        for name, delta in loop.step_of:
            if delta != 0:
                spans[name] = spans.get(name, 1.0) * max(1.0, loop.trip)
    if view is not None:
        for name in list(spans):
            extent = view.extent_of(name)
            if extent is not None:
                spans[name] = min(spans[name], float(extent))
    return spans


def _footprint_lines(ref: Ref, loops: Tuple[LoopInfo, ...],
                     strides: Tuple[int, ...],
                     machine: MachineModel,
                     view: Optional[LoopView] = None) -> float:
    """Cache lines touched by ``ref`` while the given loops iterate."""
    spans = _iter_spans(loops, view)
    elements = 1.0
    for index in ref.indices:
        extent = 1.0
        for name in index.variables():
            if name in spans:
                extent += abs(index.coeff(name)) * (spans[name] - 1.0)
        elements *= max(1.0, extent)
    contiguous = any(abs(_ref_step(ref, loop, strides)) == 1
                     for loop in loops)
    per_line = machine.line_bytes / machine.elem_bytes
    return max(1.0, elements / per_line if contiguous else elements)


def _ref_misses(ref: Ref, is_write: bool, stmt: Statement, view: LoopView,
                strides: Tuple[int, ...], machine: MachineModel,
                capacity: float) -> float:
    """Estimated cache misses for one reference over the whole statement."""
    loops = view.loops
    if not loops:
        return 1.0
    steps = [_ref_step(ref, loop, strides) for loop in loops]
    if stmt.reg_accum and is_write:
        # the running value lives in a register across the innermost loop
        steps[-1] = 0
    inner_step_bytes = abs(steps[-1]) * machine.elem_bytes
    if inner_step_bytes == 0:
        rate = 0.0
    elif inner_step_bytes >= machine.line_bytes:
        rate = 1.0
    else:
        rate = inner_step_bytes / machine.line_bytes

    misses = view.total_iters * rate
    # Temporal-reuse discounts: a loop the reference is invariant in whose
    # inner footprint fits the cache turns repeated sweeps into hits.
    for index in range(len(loops) - 1, -1, -1):
        if steps[index] != 0:
            continue
        inner = loops[index + 1:]
        lines = _footprint_lines(ref, inner, strides, machine, view)
        if lines * machine.line_bytes <= capacity:
            misses /= max(1.0, loops[index].trip)
    # Spatial reuse carried by a *non-innermost* small-stride loop: the
    # sweep of the loops inside it must survive in L1 for neighbouring
    # iterations to hit the same line (classic group-spatial reuse).
    for index in range(len(loops) - 1):
        step_bytes = abs(steps[index]) * machine.elem_bytes
        if 0 < step_bytes < machine.line_bytes:
            inner = loops[index + 1:]
            lines = _footprint_lines(ref, inner, strides, machine, view)
            if lines * machine.line_bytes <= machine.l1_bytes:
                misses *= step_bytes / machine.line_bytes
            break
    # Warm-cache residency: measurements average runs after a warm-up
    # (§6.1, five runs after the first attempt), so a reference whose
    # whole footprint fits in the cache never misses in steady state.
    unique_lines = _footprint_lines(ref, loops, strides, machine, view)
    if unique_lines * machine.line_bytes <= capacity:
        return 0.0
    # Cold-miss floor: every distinct line must be fetched once.
    misses = max(misses, min(unique_lines, view.total_iters))
    return min(misses, view.total_iters)


def _vector_factor(stmt: Statement, view: LoopView,
                   strides_of: Mapping[str, Tuple[int, ...]],
                   machine: MachineModel) -> float:
    """Compute-cycle divisor when the innermost loop is vectorized."""
    inner = view.innermost
    if inner is None or not inner.vectorized:
        return 1.0
    contiguous = 0
    gathered = 0
    for ref, is_write in _distinct_refs(stmt):
        step = abs(_ref_step(ref, inner, strides_of[ref.array]))
        if step <= 1:
            contiguous += 1
        else:
            gathered += 1
    if contiguous == 0:
        return 1.0  # all-gather loop: SIMD does not pay
    efficiency = machine.vector_efficiency
    lhs_step = abs(_ref_step(stmt.body.lhs, inner,
                             strides_of[stmt.body.lhs.array]))
    if stmt.body.op in ("+=", "-=", "*=") and lhs_step == 0:
        efficiency = machine.reduction_vector_efficiency
    if gathered:
        efficiency *= contiguous / (contiguous + gathered)
    return max(1.0, machine.vector_width * efficiency)


def _statement_cost(program: Program, stmt: Statement,
                    params: Mapping[str, int],
                    machine: MachineModel,
                    strides_of: Mapping[str, Tuple[int, ...]]
                    ) -> StatementCost:
    guard_params = {p: _GUARD_SAMPLE_PARAM for p in program.params}
    guard_frac = estimate_guard_fraction(stmt, guard_params)
    view = build_view(program, stmt, params, guard_frac)
    iters = max(1.0, view.total_iters)

    # --- compute ------------------------------------------------------
    ops = stmt.body.op_count() + 1  # +1 for address arithmetic
    compute = iters * ops * machine.cycles_per_op
    vec = _vector_factor(stmt, view, strides_of, machine)
    compute /= vec

    # --- memory ---------------------------------------------------------
    refs = _distinct_refs(stmt)
    arrays = {ref.array for ref, _w in refs}
    capacity = machine.cache_bytes / max(1, len(arrays))
    misses = 0.0
    for ref, is_write in refs:
        misses += _ref_misses(ref, is_write, stmt, view,
                              strides_of[ref.array], machine, capacity)
    memory = misses * machine.miss_penalty

    # --- overheads --------------------------------------------------------
    # per-instance bookkeeping is amortised across vector lanes
    overhead = iters * machine.loop_overhead / vec
    inner = view.innermost
    has_tiles = any(loop.is_tile for loop in view.loops)
    if inner is not None and has_tiles:
        entries = iters / max(1.0, inner.trip)
        overhead += entries * machine.tile_entry_overhead
    if stmt.guards:
        domain_iters = iters / max(guard_frac, 1e-9)
        overhead += domain_iters * len(stmt.guards)

    # --- parallelism -----------------------------------------------------
    degree = 1.0
    region_entries = 0.0
    for idx, loop in enumerate(view.loops):
        if loop.parallel:
            degree = min(float(machine.threads), max(1.0, loop.trip))
            region_entries = 1.0
            for outer in view.loops[:idx]:
                region_entries *= max(1.0, outer.trip)
            break
    if degree > 1.0:
        compute /= degree * machine.parallel_efficiency
        overhead /= degree * machine.parallel_efficiency
        memory /= min(degree, machine.mem_parallel_cap)
        overhead += region_entries * machine.parallel_region_overhead

    return StatementCost(
        statement=stmt.name, instances=iters,
        compute_cycles=compute, memory_cycles=memory,
        overhead_cycles=overhead, misses=misses,
        parallel_degree=degree,
        vectorized=bool(inner is not None and inner.vectorized and vec > 1))


def estimate(program: Program, params: Mapping[str, int],
             machine: MachineModel = DEFAULT_MACHINE) -> TimeEstimate:
    """Model the execution time of ``program`` at ``params``."""
    strides_of = _array_strides(program, params)
    costs = [
        _statement_cost(program, stmt, params, machine, strides_of)
        for stmt in program.statements]
    cycles = sum(c.cycles for c in costs) + 1_000.0  # region constant
    return TimeEstimate(program=program.name,
                        seconds=machine.seconds(cycles),
                        cycles=cycles, statements=tuple(costs))


_ESTIMATE_CACHE: Dict[Tuple[str, Tuple[Tuple[str, int], ...], str, int],
                      TimeEstimate] = {}


def estimate_cached(program: Program, params: Mapping[str, int],
                    machine: MachineModel = DEFAULT_MACHINE) -> TimeEstimate:
    """Memoized :func:`estimate` keyed by program fingerprint."""
    key = (program.fingerprint(), tuple(sorted(params.items())),
           machine.name, machine.threads)
    hit = _ESTIMATE_CACHE.get(key)
    if hit is None:
        hit = estimate(program, params, machine)
        if len(_ESTIMATE_CACHE) > 16384:
            _ESTIMATE_CACHE.clear()
        _ESTIMATE_CACHE[key] = hit
    return hit
