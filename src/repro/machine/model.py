"""Machine description for the performance model.

Parameters approximate the paper's testbed (2 × 24-core AMD EPYC 7352 @
2.3 GHz, §6.1) at the granularity the cost model needs: core count,
SIMD width, an effective per-core cache capacity, a flat miss penalty and
a bandwidth cap on how well misses scale across cores (memory-bound loops
do not scale to 48 threads — the reason base-LLM ``omp parallel`` on TSVC
yields ~5-7×, not ~48×).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Cost-model parameters for one simulated machine."""

    name: str = "epyc7352"
    threads: int = 48
    vector_width: int = 4
    #: effective capacity for temporal reuse: the per-core share of
    #: L2 + L3 on the EPYC 7352 (512 KB L2 + 128 MB L3 / 24 cores ≈ 4 MB)
    cache_bytes: int = 4 * 1024 * 1024
    l1_bytes: int = 32 * 1024
    line_bytes: int = 64
    elem_bytes: int = 8
    freq_ghz: float = 2.3
    cycles_per_op: float = 1.0
    miss_penalty: float = 58.0
    loop_overhead: float = 1.5          # per executed instance
    tile_entry_overhead: float = 18.0   # per inner-loop entry (min/max bounds)
    parallel_region_overhead: float = 6_000.0  # per parallel region entry
    #: NUMA + load-imbalance efficiency across the two-socket testbed
    parallel_efficiency: float = 0.55
    vector_efficiency: float = 0.80
    reduction_vector_efficiency: float = 0.55
    mem_parallel_cap: float = 6.0       # bandwidth bound on miss scaling

    def seconds(self, cycles: float) -> float:
        return cycles / (self.freq_ghz * 1e9)

    def with_threads(self, threads: int) -> "MachineModel":
        return replace(self, threads=threads)


#: Default machine used across experiments unless overridden.
DEFAULT_MACHINE = MachineModel()
