"""Loop-nest views: per-statement loop structure recovered from schedules.

The analytical cost model does not execute programs; it reasons about the
loop nest each statement runs under after transformation.  A
:class:`LoopView` reconstructs that nest from the statement's (aligned)
schedule: one :class:`LoopInfo` per dynamic dimension, outermost first,
each carrying a trip-count estimate, the iterator displacement caused by
one increment of that loop (``step_of``), and parallel/vector flags.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.program import Program
from ..ir.schedule import TileDim
from ..ir.statement import Statement


@dataclass(frozen=True)
class LoopInfo:
    """One loop of a statement's reconstructed nest."""

    col: int                      # aligned schedule column
    is_tile: bool
    tile_size: int                # 1 for plain loops
    primary: Optional[str]        # iterator this loop "owns"
    trip: float
    step_of: Tuple[Tuple[str, int], ...]  # iterator deltas per increment
    parallel: bool
    vectorized: bool

    def steps(self) -> Dict[str, int]:
        return dict(self.step_of)


@dataclass(frozen=True)
class LoopView:
    """The reconstructed nest of one statement plus instance counts."""

    statement: str
    loops: Tuple[LoopInfo, ...]
    total_iters: float
    guard_fraction: float
    #: true iterator extents — footprint math clamps per-iterator spans
    #: here so skewed dimensions don't overestimate coverage
    extents: Tuple[Tuple[str, int], ...] = ()

    @property
    def innermost(self) -> Optional[LoopInfo]:
        return self.loops[-1] if self.loops else None

    def extent_of(self, name: str) -> Optional[int]:
        return dict(self.extents).get(name)


def _affine_extent(expr, extents: Mapping[str, int]) -> float:
    """Range estimate of an affine expression over iterator boxes."""
    total = 0.0
    for name in expr.variables():
        total += abs(expr.coeff(name)) * max(1.0, extents.get(name, 1))
    return max(1.0, total)


def _domain_size(stmt: Statement, params: Mapping[str, int]) -> float:
    """Estimated instance count with triangular correction (midpoints)."""
    total = 1.0
    for spec in stmt.domain.iters:
        total *= max(1.0, stmt.domain.extent_hint(spec.name, params))
    return total


def build_view(program: Program, stmt: Statement,
               params: Mapping[str, int],
               guard_fraction: float = 1.0) -> LoopView:
    """Reconstruct the loop nest of one statement."""
    width = program.schedule_width
    sched = stmt.schedule.padded(width)
    iter_names = list(stmt.domain.iterator_names)
    extents: Dict[str, int] = {
        name: max(1, stmt.domain.extent_hint(name, params))
        for name in iter_names}

    loops: List[LoopInfo] = []
    claimed: set = set()
    tile_sizes: Dict[str, int] = {}   # iterator -> innermost covering tile
    seen_dims: set = set()
    for col, dim in enumerate(sched.dims):
        if not dim.is_dynamic:
            continue
        # duplicated dimensions (inserted by per-statement tiling for the
        # unselected statements) carry no iteration structure of their own
        signature = str(dim)
        if signature in seen_dims:
            continue
        seen_dims.add(signature)
        expr = dim.expr  # type: ignore[union-attr]
        own_vars = [v for v in expr.variables() if v in extents]
        if not own_vars:
            continue
        parallel = col in program.parallel_dims
        vectorized = col in program.vector_dims
        if isinstance(dim, TileDim):
            trip = max(1.0, math.ceil(_affine_extent(expr, extents)
                                      / dim.size))
            primary = own_vars[0]
            for v in own_vars:
                size = tile_sizes.get(v)
                tile_sizes[v] = dim.size if size is None else min(size,
                                                                  dim.size)
            steps = tuple((v, dim.size * (1 if expr.coeff(v) >= 0 else -1))
                          for v in own_vars)
            loops.append(LoopInfo(col=col, is_tile=True, tile_size=dim.size,
                                  primary=primary, trip=trip,
                                  step_of=steps, parallel=parallel,
                                  vectorized=vectorized))
            continue
        primary = next((v for v in own_vars if v not in claimed),
                       own_vars[0])
        claimed.add(primary)
        extent = float(extents[primary])
        covering = tile_sizes.get(primary)
        if covering is not None:
            trip = min(float(covering), extent)
        elif len(own_vars) == 1:
            trip = extent
        else:
            trip = _affine_extent(expr, extents)
        direction = 1 if expr.coeff(primary) >= 0 else -1
        loops.append(LoopInfo(col=col, is_tile=False, tile_size=1,
                              primary=primary, trip=max(1.0, trip),
                              step_of=((primary, direction),),
                              parallel=parallel, vectorized=vectorized))

    total = _domain_size(stmt, params) * max(0.0, min(1.0, guard_fraction))
    # Normalise trips so their product matches the true instance count:
    # skewed dimensions over-estimate (range of i+j exceeds the trip of a
    # rectangular loop) and the product would otherwise double-count.
    raw = 1.0
    for info in loops:
        raw *= info.trip
    if loops and raw > 0 and total > 0:
        factor = total / raw
        if factor < 1.0:
            scaled = []
            remaining = factor
            for info in loops:
                if not info.is_tile and remaining < 1.0:
                    new_trip = max(1.0, info.trip * remaining)
                    remaining = (remaining * info.trip) / new_trip
                    info = LoopInfo(col=info.col, is_tile=info.is_tile,
                                    tile_size=info.tile_size,
                                    primary=info.primary, trip=new_trip,
                                    step_of=info.step_of,
                                    parallel=info.parallel,
                                    vectorized=info.vectorized)
                scaled.append(info)
            loops = scaled
    return LoopView(statement=stmt.name, loops=tuple(loops),
                    total_iters=total, guard_fraction=guard_fraction,
                    extents=tuple(sorted(extents.items())))


def estimate_guard_fraction(stmt: Statement,
                            params: Mapping[str, int],
                            cap: int = 20_000) -> float:
    """Fraction of domain points whose guards hold, by small enumeration."""
    if not stmt.guards:
        return 1.0
    total = 0
    passed = 0
    for point in stmt.domain.enumerate(params):
        total += 1
        env = dict(params)
        env.update(point)
        if stmt.guards_hold(env):
            passed += 1
        if total >= cap:
            break
    if total == 0:
        return 1.0
    return passed / total
