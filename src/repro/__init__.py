"""LOOPRAG reproduction — retrieval-augmented loop transformation
optimization for Static Control Parts (SCoPs).

Public API tour:

* ``repro.ir``            — parse/build SCoP programs (the Clan substitute)
* ``repro.transforms``    — the loop transformation vocabulary + recipes
* ``repro.analysis``      — dependences, legality, loop properties
* ``repro.machine``       — the analytical performance model + trace sim
* ``repro.runtime``       — the schedule-ordered interpreter
* ``repro.compilers``     — PLuTo / Polly / Graphite / Perspective / ICX
* ``repro.synthesis``     — the parameter-driven dataset generator
* ``repro.retrieval``     — BM25 + LAScore demonstration retrieval
* ``repro.llm``           — Appendix-E prompts + simulated LLM personas
* ``repro.testing``       — mutation + coverage + differential testing
* ``repro.pipeline``      — the four-step feedback loop and LoopRAG facade
* ``repro.suites``        — PolyBench (30) / TSVC (84) / LORE (49)
* ``repro.evaluation``    — every table and figure of the paper

Quickstart::

    from repro.ir import parse_scop
    from repro.llm import DEEPSEEK_V3
    from repro.pipeline import LoopRAG
    from repro.synthesis import cached_dataset

    program = parse_scop(my_scop_source)
    looprag = LoopRAG(cached_dataset(300), DEEPSEEK_V3)
    outcome = looprag.optimize(program,
                               perf_params={"N": 2000},
                               test_params={"N": 8})
    print(outcome.speedup, outcome.best_recipe)
"""

from .ir import parse_scop
from .llm import DEEPSEEK_V3, GPT_4O, PERSONAS
from .pipeline import BaseLLMOptimizer, LoopRAG
from .synthesis import build_dataset, cached_dataset

__version__ = "1.0.0"

__all__ = [
    "parse_scop",
    "DEEPSEEK_V3", "GPT_4O", "PERSONAS",
    "BaseLLMOptimizer", "LoopRAG",
    "build_dataset", "cached_dataset",
    "__version__",
]
