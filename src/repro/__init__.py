"""LOOPRAG reproduction — retrieval-augmented loop transformation
optimization for Static Control Parts (SCoPs).

Public API tour:

* ``repro.ir``            — parse/build SCoP programs (the Clan substitute)
* ``repro.transforms``    — the loop transformation vocabulary + recipes
* ``repro.analysis``      — dependences, legality, loop properties
* ``repro.machine``       — the analytical performance model + trace sim
* ``repro.runtime``       — the schedule-ordered interpreter
* ``repro.compilers``     — PLuTo / Polly / Graphite / Perspective / ICX
* ``repro.synthesis``     — the parameter-driven dataset generator
* ``repro.retrieval``     — BM25 + LAScore demonstration retrieval
* ``repro.llm``           — Appendix-E prompts + simulated LLM personas
* ``repro.testing``       — mutation + coverage + differential testing
* ``repro.pipeline``      — the four-step feedback loop (+ old facades)
* ``repro.api``           — the service API: sessions, registries, events
* ``repro.suites``        — PolyBench (30) / TSVC (84) / LORE (49)
* ``repro.evaluation``    — every table and figure of the paper

Quickstart::

    from repro.api import OptimizationRequest, OptimizerSession
    from repro.ir import parse_scop

    session = OptimizerSession(dataset_size=300)
    program = parse_scop(my_scop_source)
    result = session.optimize(OptimizationRequest.make(
        program, perf_params={"N": 2000}, test_params={"N": 8}))
    print(result.speedup, result.recipe)

Batches reuse the session's corpus/retriever/caches and fan out across
workers (bit-identical to serial)::

    results = session.optimize_many(requests, jobs=4)

``LoopRAG`` / ``BaseLLMOptimizer`` remain as deprecated shims with
byte-identical outputs.
"""

from .ir import parse_scop
from .llm import DEEPSEEK_V3, GPT_4O, PERSONAS
from .synthesis import build_dataset, cached_dataset

__version__ = "1.1.0"


def __getattr__(name):
    # the service API and the deprecated facades import lazily, keeping
    # ``import repro`` light and cycle-free
    if name in ("OptimizerSession", "OptimizationRequest",
                "OptimizationResult"):
        from . import api
        return getattr(api, name)
    if name in ("LoopRAG", "BaseLLMOptimizer"):
        from . import pipeline
        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "parse_scop",
    "DEEPSEEK_V3", "GPT_4O", "PERSONAS",
    "OptimizerSession", "OptimizationRequest", "OptimizationResult",
    "BaseLLMOptimizer", "LoopRAG",
    "build_dataset", "cached_dataset",
    "__version__",
]
