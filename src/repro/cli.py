"""Command-line interface: ``python -m repro <command>``.

Commands
--------
optimize FILE     run LOOPRAG on a SCoP source file and print the result
                  (--json for a byte-stable structured document,
                  --events to stream session events to stderr)
serve              long-lived optimization daemon: HTTP/JSON requests,
                  NDJSON event streams, bounded admission, deadlines,
                  retry/breaker resilience, graceful SIGTERM drain,
                  /healthz + /metrics
serve-batch SPEC  serve a JSON batch of requests through one
                  OptimizerSession (parallel, store-backed)
compilers FILE    run every baseline compiler on a SCoP source file
experiment ID     regenerate one table/figure (tab1..tab7, fig1..fig14)
bench             run systems over suites (parallel, store-backed)
perf              engine micro-benchmarks (vectorized vs reference):
                  --target interpreter (execution) or analysis
                  (dependences + legality queries)
store stats       per-stream artifact-store shape (entries, waste)
store compact     reclaim superseded/tombstoned/corrupt store records
suites            list the benchmark suites and their kernels
synthesize        build a demonstration corpus and report its statistics

Parameter bindings are given as ``NAME=VALUE`` pairs, e.g.::

    python -m repro optimize kernel.scop --perf N=2000 M=1500 --test N=8 M=6
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Dict, List, Sequence

warnings.filterwarnings("ignore")


def _parse_bindings(pairs: Sequence[str]) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for pair in pairs:
        name, _sep, value = pair.partition("=")
        if not _sep:
            raise SystemExit(f"expected NAME=VALUE, got {pair!r}")
        out[name] = int(value)
    return out


def _load_program(path: str):
    from .ir import parse_scop

    with open(path) as handle:
        return parse_scop(handle.read())


def _default_params(program, value: int) -> Dict[str, int]:
    return {p: value for p in program.params}


def cmd_optimize(args: argparse.Namespace) -> int:
    import json

    from .api import OptimizationRequest, OptimizerSession

    program = _load_program(args.file)
    perf = _parse_bindings(args.perf) or _default_params(program, 1500)
    test = _parse_bindings(args.test) or _default_params(program, 8)
    session = OptimizerSession(dataset_size=args.dataset_size,
                               seed=args.seed,
                               retrieval_method=args.retrieval)
    if args.events:
        session.events.subscribe(
            lambda event: print(event, file=sys.stderr))
    request = OptimizationRequest.make(program, perf, test,
                                       system=args.system,
                                       persona=args.persona)
    # uncached on purpose: `repro optimize` is the one-shot spelling and
    # its --json output must be byte-stable whatever the store holds
    result = session.optimize(request, use_store=False)
    if args.json:
        print(json.dumps(result.to_json_dict(), indent=2,
                         sort_keys=True))
        return _result_exit_code(result)
    print(f"# pass: {result.passed}   speedup: {result.speedup:.2f}x")
    if result.recipe is not None:
        print(f"# recipe: {result.recipe}")
    if result.best_code is not None:
        print(result.best_code)
    return _result_exit_code(result)


def _result_exit_code(result) -> int:
    """0 = passed, 1 = no passing candidate, 2 = request *errored*.

    An error (``result.failure`` set — optimizer failure, timeout,
    structural problem) must not exit like a mere "found no speedup":
    scripts gating on the exit code would silently swallow it.
    """
    if result.failure is not None:
        return 2
    return 0 if result.passed else 1


def cmd_compilers(args: argparse.Namespace) -> int:
    from .compilers import (BASE_COMPILERS, Graphite, IcxOptimizer,
                            OPTIMIZER_BASE, Perspective, Polly, Pluto)
    from .machine import DEFAULT_MACHINE, estimate_cached

    program = _load_program(args.file)
    perf = _parse_bindings(args.perf) or _default_params(program, 1500)
    for optimizer in (Pluto(), Polly(), Graphite(), Perspective(),
                      IcxOptimizer()):
        base = BASE_COMPILERS[OPTIMIZER_BASE[optimizer.name]]
        baseline = estimate_cached(base.finalize(program), perf,
                                   DEFAULT_MACHINE).seconds
        result = optimizer.optimize(program, perf)
        if not result.ok:
            print(f"{optimizer.name:12s} FAILED: {result.failure}")
            continue
        machine = getattr(optimizer, "machine_override", DEFAULT_MACHINE)
        seconds = estimate_cached(base.finalize(result.program), perf,
                                  machine).seconds
        print(f"{optimizer.name:12s} {baseline / seconds:8.2f}x  "
              f"{result.recipe.describe()[:90] or '<no change>'}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from .evaluation import ALL_EXPERIMENTS, render_table

    if args.id not in ALL_EXPERIMENTS:
        raise SystemExit(
            f"unknown experiment {args.id!r}; "
            f"choose from {', '.join(sorted(ALL_EXPERIMENTS))}")
    print(render_table(ALL_EXPERIMENTS[args.id]()))
    return 0


#: `repro bench --system` tokens -> plan factories
BENCH_LLM_SYSTEMS = ("looprag-deepseek", "looprag-gpt4",
                     "base-deepseek", "base-gpt4")
BENCH_COMPILERS = ("pluto", "polly", "graphite", "perspective", "icx")
BENCH_SUITES = ("polybench", "tsvc", "lore")


def _bench_plan(system: str, suite: str, base: str):
    from .evaluation.harness import (base_llm_plan, compiler_plan,
                                     looprag_plan)

    if system in BENCH_COMPILERS:
        return compiler_plan(suite, system)
    kind, _sep, persona = system.partition("-")
    if kind == "looprag":
        return looprag_plan(suite, persona, base)
    return base_llm_plan(suite, persona, base)


def cmd_bench(args: argparse.Namespace) -> int:
    import os

    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir
    if args.limit is not None:
        os.environ["REPRO_SUITE_LIMIT"] = str(args.limit)

    from .evaluation.harness import run_plans
    from .evaluation.reporting import (bench_report, render_bench,
                                       render_json)
    from .evaluation.store import active_store, cache_stats

    wanted = args.suite or ["polybench"]
    suites = list(BENCH_SUITES) if "all" in wanted else wanted
    systems = args.system or ["looprag-deepseek"]
    plans = [_bench_plan(system, suite, args.base)
             for suite in suites for system in systems]
    results = run_plans(plans, jobs=args.jobs)
    report = bench_report([(plan.label(), plan.suite, res)
                           for plan, res in zip(plans, results)])

    text = render_json(report)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
        print(render_bench(report))
    elif args.format == "json":
        print(text)
    else:
        print(render_bench(report))

    stats = cache_stats()
    store = active_store()
    where = store.describe() if store is not None else "disabled"
    print(f"# cache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['writes']} writes, {stats['superseded']} superseded, "
          f"{stats['corrupt']} corrupt ({where})", file=sys.stderr)
    return 0


def _batch_requests(spec: dict, base_dir: str):
    """Materialize ``OptimizationRequest`` objects from a batch spec."""
    import os

    from .api import OptimizationRequest
    from .ir import parse_scop

    requests = []
    for i, entry in enumerate(spec.get("requests", [])):
        if "source" in entry:
            program = parse_scop(entry["source"])
        elif "file" in entry:
            path = entry["file"]
            if not os.path.isabs(path):
                path = os.path.join(base_dir, path)
            with open(path) as handle:
                program = parse_scop(handle.read())
        else:
            raise SystemExit(
                f"request #{i}: needs 'source' or 'file'")
        perf = {k: int(v) for k, v in entry.get("perf", {}).items()} \
            or _default_params(program, 1500)
        test = {k: int(v) for k, v in entry.get("test", {}).items()} \
            or _default_params(program, 8)
        requests.append(OptimizationRequest.make(
            program, perf, test,
            system=entry.get("system", "looprag"),
            persona=entry.get("persona", "deepseek"),
            optimizer=entry.get("optimizer"),
            time_limit=entry.get("time_limit"),
            tag=entry.get("tag")))
    return requests


def cmd_serve_batch(args: argparse.Namespace) -> int:
    """Serve a JSON batch of optimization requests through one session.

    The batch file holds an optional ``session`` configuration and a
    ``requests`` list (each: ``source`` or ``file``, plus ``system`` /
    ``persona`` / ``optimizer`` / ``perf`` / ``test`` / ``tag``).
    Requests fan out across ``--jobs`` workers with persistent-store
    hits resolved first; the report is byte-stable across runs.
    """
    import json
    import os

    from .api import OptimizerSession

    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"
    if args.cache_dir:
        os.environ["REPRO_CACHE_DIR"] = args.cache_dir

    if args.batch == "-":
        spec = json.load(sys.stdin)
        base_dir = os.getcwd()
    else:
        with open(args.batch) as handle:
            spec = json.load(handle)
        base_dir = os.path.dirname(os.path.abspath(args.batch))

    session_spec = dict(spec.get("session", {}))
    session = OptimizerSession(**session_spec)
    if args.events:
        session.events.subscribe(
            lambda event: print(event, file=sys.stderr))
    requests = _batch_requests(spec, base_dir)
    results = session.optimize_many(requests, jobs=args.jobs)

    passed = sum(1 for r in results if r.passed)
    errored = sum(1 for r in results if r.failure is not None)
    report = {
        "session": session_spec,
        "count": len(results),
        "passed": passed,
        "errors": errored,
        "results": [r.to_json_dict(include_events=args.include_events)
                    for r in results],
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(text + "\n")
    if args.format == "json":
        print(text)
    else:
        for request, result in zip(requests, results):
            tag = f" [{request.tag}]" if request.tag else ""
            recipe = result.recipe or result.failure or "<none>"
            print(f"{result.request.program.name:20s}{tag} "
                  f"{result.system_label:24s} "
                  f"{str(result.passed):5s} {result.speedup:8.2f}x  "
                  f"{recipe[:70]}")
        print(f"# {passed}/{len(results)} passed, {errored} errored")
    # exit-code contract (audited): 2 when any request *errored* (its
    # failure field is set) — errors in the table must never exit 0/1
    # like a plain "no passing candidate" would
    if errored:
        return 2
    return 0 if passed == len(results) else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived optimization daemon (see ``repro.serve``).

    Serves ``POST /v1/optimize`` (JSON result or NDJSON event stream),
    ``GET /healthz`` and ``GET /metrics`` until SIGTERM/SIGINT, then
    drains gracefully: admission stops, in-flight requests finish (or
    are deadline-cancelled after ``--drain-grace``), and the process
    exits 0.  Flags override the ``REPRO_SERVE_*`` environment knobs.
    """
    import json

    from .serve import JournalUnavailable, ServeConfig, ServeDaemon

    default_session = {}
    if args.session:
        default_session = json.loads(args.session)
        if not isinstance(default_session, dict):
            raise SystemExit("--session must be a JSON object")
    config = ServeConfig.from_env().with_overrides(
        host=args.host, port=args.port,
        max_inflight=args.max_inflight, queue_depth=args.queue_depth,
        per_client=args.per_client, default_deadline=args.deadline,
        drain_grace=args.drain_grace, max_sessions=args.sessions,
        resilience=(False if args.no_resilience else None),
        workers=args.workers, worker_memory_mb=args.worker_mem,
        worker_cpu_s=args.worker_cpu,
        worker_hang_timeout=args.hang_timeout,
        worker_crash_limit=args.crash_limit,
        journal=(False if args.no_journal else None),
        recover=(True if args.recover else None),
        default_session=(default_session or None))
    try:
        daemon = ServeDaemon(config)
    except JournalUnavailable as exc:
        raise SystemExit(f"repro serve: {exc}")
    return daemon.run_forever()


def _perf_candidates(program):
    """Deterministic candidate schedules for legality-query benchmarks.

    Interchange/tile/skew over the low schedule columns — the same
    rewrites personas and compiler passes probe — deduplicated by
    fingerprint.  Transform construction is engine-independent, so both
    engines answer the exact same queries.
    """
    import itertools

    from .transforms import interchange, skew, tile

    candidates = []
    seen = set()
    for col_a, col_b in itertools.combinations((1, 3, 5), 2):
        for make in (lambda p: interchange(p, col_a, col_b),
                     lambda p: tile(p, [col_a], 2),
                     lambda p: skew(p, target_col=col_a,
                                    source_col=col_b, factor=1)):
            try:
                candidate = make(program)
            except Exception:
                continue
            if candidate.fingerprint() not in seen:
                seen.add(candidate.fingerprint())
                candidates.append(candidate)
    return candidates


def cmd_perf_analysis(args: argparse.Namespace) -> int:
    """Micro-benchmark the dependence/legality engines over a suite.

    Per kernel and per ``REPRO_ANALYSIS`` engine: time the (uncached)
    dependence computation and a sweep of legality + parallelism
    queries over deterministic candidate schedules, then check the
    engines agreed on every dependence (witness for witness) and every
    verdict.
    """
    import json
    import time

    from .analysis.dependences import (analysis_override,
                                       compute_dependences,
                                       parallel_violations,
                                       schedule_violations)
    from .suites import SUITES

    if args.param is not None:
        raise SystemExit(
            "--param only applies to --target interpreter; the analysis "
            "engines concretize at their fixed witness sizes")
    suite = SUITES[args.suite]()
    benchmarks = list(suite)
    if args.limit is not None:
        benchmarks = benchmarks[:args.limit]
    laps = max(1, args.repeat) + 1  # lap 0 warms caches, records results

    def measure_deps(program, engine):
        with analysis_override(engine):
            best = float("inf")
            deps = None
            for lap in range(laps):
                t0 = time.perf_counter()
                try:
                    result = compute_dependences(program)
                except Exception as exc:
                    return 0.0, None, ("error", type(exc).__name__,
                                       str(exc))
                elapsed = time.perf_counter() - t0
                if lap == 0:
                    deps = result
                else:
                    best = min(best, elapsed)
        return best, deps, ("ok",)

    def measure_legality(program, candidates, deps, engine):
        dims = range(program.schedule_width)
        position = {id(dep): i for i, dep in enumerate(deps)}
        with analysis_override(engine):
            best = float("inf")
            verdicts = None
            for lap in range(laps):
                t0 = time.perf_counter()
                observed = []
                for candidate in candidates:
                    observed.append(tuple(
                        position[id(d)]
                        for d in schedule_violations(candidate, deps)))
                for dim in dims:
                    observed.append(tuple(
                        position[id(d)]
                        for d in parallel_violations(program, deps, dim)))
                elapsed = time.perf_counter() - t0
                if lap == 0:
                    verdicts = tuple(observed)
                else:
                    best = min(best, elapsed)
        return best, verdicts

    rows = []
    total_ref = total_vec = 0.0
    identical = True
    for bench in benchmarks:
        program = bench.program
        candidates = _perf_candidates(program)
        queries = len(candidates) + program.schedule_width
        ref_dep_s, ref_deps, ref_obs = measure_deps(program, "reference")
        vec_dep_s, vec_deps, vec_obs = measure_deps(program, "vectorized")
        failed = "error" in (ref_obs[0], vec_obs[0])
        match = ref_obs == vec_obs and ref_deps == vec_deps
        ref_leg_s = vec_leg_s = 0.0
        if not failed:
            ref_leg_s, ref_verdicts = measure_legality(
                program, candidates, ref_deps, "reference")
            vec_leg_s, vec_verdicts = measure_legality(
                program, candidates, vec_deps, "vectorized")
            match &= ref_verdicts == vec_verdicts
        identical &= match
        ref_s = ref_dep_s + ref_leg_s
        vec_s = vec_dep_s + vec_leg_s
        total_ref += ref_s
        total_vec += vec_s
        if not failed:
            error = None
        elif ref_obs == vec_obs:  # both engines raised identically
            error = ref_obs[1]
        else:  # one-sided failure: name the engine and the exception
            error = (f"ref={ref_obs[1] if ref_obs[0] == 'error' else 'ok'} "
                     f"vec={vec_obs[1] if vec_obs[0] == 'error' else 'ok'}")
        rows.append({
            "kernel": bench.name,
            "deps": 0 if failed else len(ref_deps),
            "queries": 0 if failed else queries,
            "reference_dep_ms": round(ref_dep_s * 1000, 3),
            "vectorized_dep_ms": round(vec_dep_s * 1000, 3),
            "reference_legality_ms": round(ref_leg_s * 1000, 3),
            "vectorized_legality_ms": round(vec_leg_s * 1000, 3),
            "speedup": round(ref_s / vec_s, 2) if vec_s > 0 else 0.0,
            "identical": match,
            "error": error,
        })

    report = {
        "suite": args.suite,
        "target": "analysis",
        "repeat": args.repeat,
        "kernels": rows,
        "total_reference_s": round(total_ref, 4),
        "total_vectorized_s": round(total_vec, 4),
        "aggregate_speedup": (round(total_ref / total_vec, 2)
                              if total_vec > 0 else 0.0),
        "bit_identical": identical,
    }
    from .evaluation.reporting import render_analysis_perf

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_analysis_perf(report))
    return 0 if identical else 1


def cmd_perf(args: argparse.Namespace) -> int:
    """Micro-benchmark the execution engines over a suite.

    Every kernel runs under both ``REPRO_ENGINE`` settings at a uniform
    parameter binding; the report records per-kernel wall times (best of
    ``--repeat``), the aggregate speedup, and whether results stayed
    bit-identical (checksum + executed-instance count).
    """
    import json
    import time

    if args.target == "analysis":
        return cmd_perf_analysis(args)
    if args.param is None:
        args.param = 20
    if args.target == "kernels":
        return cmd_perf_kernels(args)

    from .runtime import (allocate, checksum, clone_storage,
                          engine_override, execute)
    from .suites import SUITES

    suite = SUITES[args.suite]()
    benchmarks = list(suite)
    if args.limit is not None:
        benchmarks = benchmarks[:args.limit]

    def measure(program, params, engine):
        """(best seconds, observed result) — errors become the result.

        A kernel that exceeds the budget (or fails at runtime) reports
        its exception class as the observation, so both engines raising
        the same error still count as identical instead of killing the
        whole run with a traceback.
        """
        with engine_override(engine):
            pristine = allocate(program, params)
            best = float("inf")
            result = None
            for _ in range(max(1, args.repeat) + 1):  # lap 0 warms caches
                storage = clone_storage(pristine)
                t0 = time.perf_counter()
                try:
                    instances = execute(program, params, storage,
                                        budget=args.budget)
                except Exception as exc:
                    return 0.0, ("error", type(exc).__name__)
                elapsed = time.perf_counter() - t0
                if result is None:  # warmup lap: record result, not time
                    result = (checksum(storage, program.outputs),
                              instances)
                    continue
                best = min(best, elapsed)
        return best, result

    rows = []
    total_ref = total_vec = 0.0
    identical = True
    for bench in benchmarks:
        params = {name: args.param for name in bench.program.params}
        ref_s, ref_out = measure(bench.program, params, "reference")
        vec_s, vec_out = measure(bench.program, params, "vectorized")
        match = ref_out == vec_out
        identical &= match
        failed = ref_out[0] == "error"
        total_ref += ref_s
        total_vec += vec_s
        rows.append({
            "kernel": bench.name,
            "instances": 0 if failed else ref_out[1],
            "reference_ms": round(ref_s * 1000, 3),
            "vectorized_ms": round(vec_s * 1000, 3),
            "speedup": round(ref_s / vec_s, 2) if vec_s > 0 else 0.0,
            "identical": match,
            "error": ref_out[1] if failed else None,
        })

    report = {
        "suite": args.suite,
        "param": args.param,
        "repeat": args.repeat,
        "kernels": rows,
        "total_reference_s": round(total_ref, 4),
        "total_vectorized_s": round(total_vec, 4),
        "aggregate_speedup": (round(total_ref / total_vec, 2)
                              if total_vec > 0 else 0.0),
        "bit_identical": identical,
    }
    from .evaluation.reporting import render_perf

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_perf(report))
    return 0 if identical else 1


def cmd_perf_kernels(args: argparse.Namespace) -> int:
    """Measure the native compiled-kernel tier against the others.

    Every kernel runs under ``reference``, ``vectorized`` and ``native``
    at a uniform parameter binding.  The headline ``speedup`` column is
    native-vs-vectorized — the *measured* gain of compiled C over the
    NumPy block executor — and the report embeds the discovered
    toolchain.  Without a C toolchain the native tier degrades to the
    vectorized engine, so the parity gate still holds (speedups just
    hover around 1x).  Any bit-level mismatch makes the exit code 1.
    """
    import json
    import time

    from .runtime import (allocate, checksum, clone_storage,
                          engine_override, execute)
    from .runtime.native import toolchain_info
    from .suites import SUITES

    engines = ("reference", "vectorized", "native")
    suite = SUITES[args.suite]()
    benchmarks = list(suite)
    if args.limit is not None:
        benchmarks = benchmarks[:args.limit]

    def measure(program, params, engine):
        """(best seconds, observed result); errors become the result."""
        with engine_override(engine):
            pristine = allocate(program, params)
            best = float("inf")
            result = None
            for _ in range(max(1, args.repeat) + 1):  # lap 0 warms caches
                storage = clone_storage(pristine)
                t0 = time.perf_counter()
                try:
                    instances = execute(program, params, storage,
                                        budget=args.budget)
                except Exception as exc:
                    return 0.0, ("error", type(exc).__name__)
                elapsed = time.perf_counter() - t0
                if result is None:  # warmup lap: record result, not time
                    result = (checksum(storage, program.outputs),
                              instances)
                    continue
                best = min(best, elapsed)
        return best, result

    rows = []
    totals = {engine: 0.0 for engine in engines}
    identical = True
    for bench in benchmarks:
        params = {name: args.param for name in bench.program.params}
        times = {}
        outs = {}
        for engine in engines:
            times[engine], outs[engine] = measure(bench.program, params,
                                                  engine)
            totals[engine] += times[engine]
        match = (outs["reference"] == outs["vectorized"]
                 == outs["native"])
        identical &= match
        failed = outs["reference"][0] == "error"
        nat = times["native"]
        rows.append({
            "kernel": bench.name,
            "instances": 0 if failed else outs["reference"][1],
            "reference_ms": round(times["reference"] * 1000, 3),
            "vectorized_ms": round(times["vectorized"] * 1000, 3),
            "native_ms": round(nat * 1000, 3),
            "speedup": (round(times["vectorized"] / nat, 2)
                        if nat > 0 else 0.0),
            "vs_reference": (round(times["reference"] / nat, 2)
                             if nat > 0 else 0.0),
            "identical": match,
            "error": outs["reference"][1] if failed else None,
        })

    report = {
        "suite": args.suite,
        "param": args.param,
        "repeat": args.repeat,
        "target": "kernels",
        "toolchain": toolchain_info(),
        "kernels": rows,
        "total_reference_s": round(totals["reference"], 4),
        "total_vectorized_s": round(totals["vectorized"], 4),
        "total_native_s": round(totals["native"], 4),
        "aggregate_speedup": (
            round(totals["vectorized"] / totals["native"], 2)
            if totals["native"] > 0 else 0.0),
        "aggregate_vs_reference": (
            round(totals["reference"] / totals["native"], 2)
            if totals["native"] > 0 else 0.0),
        "bit_identical": identical,
    }
    from .evaluation.reporting import render_kernels_perf

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=False)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_kernels_perf(report))
    return 0 if identical else 1


def _store_for_maintenance(args: argparse.Namespace):
    """The ResultStore targeted by ``repro store`` subcommands.

    Maintenance is explicit, so it ignores ``REPRO_NO_CACHE`` and
    operates on whatever ``--cache-dir`` / ``REPRO_CACHE_DIR`` names.
    """
    from .evaluation.store import ResultStore, cache_dir

    root = args.cache_dir or str(cache_dir())
    return ResultStore(root, backend=args.backend)


def cmd_store_stats(args: argparse.Namespace) -> int:
    """Per-stream shape of the artifact store (entries, waste, bytes)."""
    import json

    from pathlib import Path

    from .evaluation.store import cache_dir
    from .runtime.native import kernel_cache_report

    from .storage import INTEGRITY

    store = _store_for_maintenance(args)
    artifacts = store.artifacts()
    streams = artifacts.streams()
    kernels = kernel_cache_report(Path(args.cache_dir or cache_dir()))
    report = {
        "backend": artifacts.name,
        "root": artifacts.root,
        "streams": {name: artifacts.stream_stats(name).to_dict()
                    for name in streams},
        "kernels": kernels,
        "integrity": INTEGRITY.snapshot(),
    }
    if args.format == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"# store: {artifacts.describe()}")
    if streams:
        header = (f"{'stream':12s} {'entries':>8s} {'superseded':>11s} "
                  f"{'tombstones':>11s} {'corrupt':>8s} "
                  f"{'mismatched':>11s} {'shards':>7s} {'bytes':>12s}")
        print(header)
        for name in streams:
            s = report["streams"][name]
            print(f"{name:12s} {s['entries']:8d} {s['superseded']:11d} "
                  f"{s['tombstones']:11d} {s['corrupt']:8d} "
                  f"{s['mismatched']:11d} "
                  f"{s['shards']:7d} {s['bytes']:12d}")
    else:
        print("(empty)")
    signatures = ", ".join(sorted(kernels["signatures"])) or "-"
    print(f"# kernels: {kernels['kernels']} compiled "
          f"({kernels['bytes']} bytes, {kernels['stale']} stale) "
          f"toolchain={kernels['toolchain'] or 'none'} "
          f"signatures=[{signatures}]")
    integrity = report["integrity"]
    if integrity:
        cells = " ".join(f"{k}={v}" for k, v in integrity.items())
        print(f"# integrity: {cells}")
    return 0


def cmd_store_compact(args: argparse.Namespace) -> int:
    """Drop superseded/tombstoned/corrupt records from every stream."""
    import json
    import os

    from pathlib import Path

    from .evaluation.store import cache_dir
    from .runtime.native import kernel_cache_gc
    from .serve.journal import ENV_JOURNAL_KEEP, JOURNAL_STREAM
    from .serve.journal import prune_finished

    store = _store_for_maintenance(args)
    artifacts = store.artifacts()
    streams = ([args.stream] if args.stream
               else list(artifacts.streams()))
    keep = args.journal_keep
    if keep is None:
        env_keep = os.environ.get(ENV_JOURNAL_KEEP)
        keep = int(env_keep) if env_keep else None
    retention = None
    if keep is not None and JOURNAL_STREAM in streams:
        # drop finished journal records beyond the newest `keep` before
        # compaction so the freed lines are reclaimed in the same pass
        retention = prune_finished(artifacts, keep)
    compacted = []
    for name in streams:
        before = artifacts.stream_stats(name).bytes
        report = artifacts.compact(name)
        after = artifacts.stream_stats(name).bytes
        doc = report.to_dict()
        doc["bytes_before"] = before
        doc["bytes_after"] = after
        doc["reclaimed_bytes"] = max(0, before - after)
        compacted.append((report, doc))
    # kernels compiled by a toolchain that no longer matches the current
    # compiler can never be loaded again under their cache key — GC them
    kernels = kernel_cache_gc(Path(args.cache_dir or cache_dir()))
    if args.format == "json":
        doc = {"backend": artifacts.name,
               "root": artifacts.root,
               "compacted": [d for _, d in compacted],
               "kernels": kernels}
        if retention is not None:
            doc["journal_retention"] = retention
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"# store: {artifacts.describe()}")
    if not compacted:
        print("(empty)")
    for report, doc in compacted:
        print(f"{report.stream:12s} kept {report.kept:6d}   dropped "
              f"{report.dropped_superseded} superseded, "
              f"{report.dropped_tombstones} tombstones, "
              f"{report.dropped_corrupt} corrupt, "
              f"{report.dropped_mismatched} mismatched   "
              f"reclaimed {doc['reclaimed_bytes']} bytes "
              f"({doc['bytes_before']} -> {doc['bytes_after']})")
    if retention is not None:
        print(f"# journal: kept {retention['kept_finished']} finished "
              f"(+{retention['unfinished']} unfinished), dropped "
              f"{retention['dropped']} past --journal-keep {keep}")
    print(f"# kernels: kept {kernels['kept']}, removed "
          f"{kernels['removed']} stale-toolchain "
          f"({kernels['reclaimed_bytes']} bytes reclaimed)")
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    """fsck for the artifact plane: detect (and repair) corruption."""
    import json

    from pathlib import Path

    from .evaluation.store import cache_dir
    from .runtime.native import kernels_dir
    from .storage import repair_store, verify_store

    store = _store_for_maintenance(args)
    artifacts = store.artifacts()
    streams = ((args.stream,) if args.stream
               else tuple(artifacts.streams()))
    kernels_root = kernels_dir(Path(args.cache_dir or cache_dir()))
    report = verify_store(artifacts, streams,
                          kernels_root=kernels_root)
    repair = None
    if args.repair and not report.clean:
        repair = repair_store(artifacts, streams,
                              kernels_root=kernels_root)
        # the verdict is the post-repair state
        report = verify_store(artifacts, streams,
                              kernels_root=kernels_root)
    if args.format == "json":
        doc = report.to_dict()
        if repair is not None:
            doc["repair"] = repair.to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if report.clean else 1
    _render_verify(report)
    if repair is not None:
        print(f"# repair: {repair.read_repairs} read-repairs, "
              f"{repair.dropped} damaged lines dropped, "
              f"{repair.kernels_removed} kernels evicted")
    print(f"# verdict: {'clean' if report.clean else 'DAMAGED'} "
          f"({report.flagged} issue(s))")
    return 0 if report.clean else 1


def _render_verify(report, indent: str = "") -> None:
    print(f"{indent}# store: {report.backend}")
    for stream in report.streams:
        status = "ok" if stream.clean else "DAMAGED"
        print(f"{indent}{stream.stream:12s} {status:8s} "
              f"{stream.records} records ({stream.live} live, "
              f"{stream.legacy} legacy), {stream.corrupt} corrupt, "
              f"{stream.torn} torn, {stream.mismatched} mismatched")
        for issue in stream.issues:
            print(f"{indent}  ! {issue.render()}")
    if not report.streams:
        print(f"{indent}(no streams)")
    if report.kernels is not None:
        print(f"{indent}# kernels: {report.kernels['checked']} checked, "
              f"{report.kernels['flagged']} flagged")
        for issue in report.kernels.get("issues", []):
            print(f"{indent}  ! {issue.render()}")
    for replica in report.replicas:
        _render_verify(replica, indent + "  ")


def cmd_suites(args: argparse.Namespace) -> int:
    from .suites import SUITES

    for name, factory in SUITES.items():
        suite = factory()
        print(f"{name} ({len(suite)} kernels)")
        if args.verbose:
            for bench in suite:
                depth = bench.program.max_depth
                stmts = len(bench.program.statements)
                print(f"  {bench.name:20s} depth={depth} stmts={stmts}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from .analysis import cluster_distribution
    from .synthesis import build_dataset, transformation_kinds

    dataset = build_dataset(args.size, args.seed, args.generator)
    print(f"{len(dataset)} examples (generator={args.generator}, "
          f"seed={args.seed})")
    print("transformation kinds in the PLuTo-optimized corpus:")
    for kind, count in sorted(transformation_kinds(dataset).items()):
        print(f"  {kind:14s} {count}")
    if args.distribution:
        print("loop property distribution:")
        dist = cluster_distribution([e.example for e in dataset])
        for prop, buckets in dist.items():
            cells = "  ".join(f"{c}={v:5.1f}%"
                              for c, v in buckets.items())
            print(f"  {prop:10s} {cells}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    opt = sub.add_parser("optimize", help="run LOOPRAG on a SCoP file")
    opt.add_argument("file")
    opt.add_argument("--persona", default="deepseek",
                     choices=("deepseek", "gpt4", "deepseek-v2.5"))
    opt.add_argument("--system", default="looprag",
                     choices=("looprag", "basellm"),
                     help="full LOOPRAG or the bare-LLM baseline")
    opt.add_argument("--retrieval", default="loop-aware",
                     choices=("loop-aware", "bm25", "weighted"))
    opt.add_argument("--perf", nargs="*", default=[],
                     metavar="NAME=VALUE")
    opt.add_argument("--test", nargs="*", default=[],
                     metavar="NAME=VALUE")
    opt.add_argument("--dataset-size", type=int, default=300)
    opt.add_argument("--seed", type=int, default=0)
    opt.add_argument("--json", action="store_true",
                     help="print a structured JSON document (request "
                          "echo, per-step events, verdict); byte-stable "
                          "across runs")
    opt.add_argument("--events", action="store_true",
                     help="stream session events to stderr as they "
                          "happen")
    opt.set_defaults(func=cmd_optimize)

    comp = sub.add_parser("compilers",
                          help="baseline compiler shootout on a file")
    comp.add_argument("file")
    comp.add_argument("--perf", nargs="*", default=[],
                      metavar="NAME=VALUE")
    comp.set_defaults(func=cmd_compilers)

    exp = sub.add_parser("experiment",
                         help="regenerate one table or figure")
    exp.add_argument("id")
    exp.set_defaults(func=cmd_experiment)

    ben = sub.add_parser(
        "bench", help="run systems over suites (parallel, store-backed)")
    ben.add_argument("--suite", action="append",
                     choices=BENCH_SUITES + ("all",),
                     help="suite to run (repeatable; default: polybench)")
    ben.add_argument("--system", action="append",
                     choices=BENCH_LLM_SYSTEMS + BENCH_COMPILERS,
                     help="system to run (repeatable; "
                          "default: looprag-deepseek)")
    ben.add_argument("--base", default="gcc",
                     choices=("gcc", "clang", "icx"),
                     help="base compiler for the LLM systems")
    ben.add_argument("-j", "--jobs", type=int, default=None,
                     help="parallel workers (default: REPRO_JOBS or "
                          "1 = serial)")
    ben.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent result store")
    ben.add_argument("--cache-dir", metavar="DIR",
                     help="result store location (default .repro_cache/)")
    ben.add_argument("--limit", type=int, metavar="N",
                     help="subsample each suite to N kernels "
                          "(sets REPRO_SUITE_LIMIT)")
    ben.add_argument("--json", metavar="FILE",
                     help="also write the JSON report to FILE")
    ben.add_argument("--format", default="table",
                     choices=("table", "json"),
                     help="stdout format (default: table)")
    ben.set_defaults(func=cmd_bench, suite=None, system=None)

    srv = sub.add_parser(
        "serve",
        help="long-lived optimization daemon (HTTP/JSON + NDJSON "
             "events, admission control, deadlines, graceful drain)")
    srv.add_argument("--host", default=None,
                     help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=None,
                     help="port (default 8459; 0 = ephemeral)")
    srv.add_argument("--max-inflight", type=int, default=None,
                     help="concurrent requests executed "
                          "(REPRO_SERVE_INFLIGHT, default 4)")
    srv.add_argument("--queue-depth", type=int, default=None,
                     help="bounded admission queue beyond in-flight "
                          "(REPRO_SERVE_QUEUE, default 8; overload "
                          "answers 503 + Retry-After)")
    srv.add_argument("--per-client", type=int, default=None,
                     help="concurrent requests per client "
                          "(REPRO_SERVE_PER_CLIENT, default 4)")
    srv.add_argument("--deadline", type=float, default=None,
                     help="default per-request deadline in seconds "
                          "(REPRO_SERVE_DEADLINE; 0 = none)")
    srv.add_argument("--drain-grace", type=float, default=None,
                     help="seconds SIGTERM waits for in-flight work "
                          "before cancelling it (REPRO_SERVE_DRAIN, "
                          "default 10)")
    srv.add_argument("--sessions", type=int, default=None,
                     help="max pooled warm sessions "
                          "(REPRO_SERVE_SESSIONS, default 4)")
    srv.add_argument("--no-resilience", action="store_true",
                     help="disable the retry/circuit-breaker wrapper "
                          "around LLM backends")
    srv.add_argument("--session", metavar="JSON",
                     help="default session spec for requests that "
                          "send none, e.g. '{\"dataset_size\": 300}'")
    srv.add_argument("--workers", type=int, default=None,
                     help="supervised worker processes; 0 = in-process "
                          "execution (REPRO_WORKER_POOL, default 0)")
    srv.add_argument("--worker-mem", type=int, default=None,
                     metavar="MB",
                     help="per-worker RLIMIT_AS in MB "
                          "(REPRO_WORKER_MEM_MB; 0 = unlimited)")
    srv.add_argument("--worker-cpu", type=int, default=None,
                     metavar="SECONDS",
                     help="per-worker RLIMIT_CPU in seconds "
                          "(REPRO_WORKER_CPU_S; 0 = unlimited)")
    srv.add_argument("--hang-timeout", type=float, default=None,
                     help="watchdog kills a worker busy longer than "
                          "this (REPRO_WORKER_HANG, default 300)")
    srv.add_argument("--crash-limit", type=int, default=None,
                     help="worker crashes before a request signature "
                          "is quarantined (REPRO_WORKER_CRASH_LIMIT, "
                          "default 2)")
    srv.add_argument("--no-journal", action="store_true",
                     help="disable the write-ahead request journal "
                          "(required to serve on a volatile store "
                          "backend)")
    srv.add_argument("--recover", action="store_true",
                     help="replay admitted-but-unfinished journaled "
                          "requests before serving")
    srv.set_defaults(func=cmd_serve)

    ser = sub.add_parser(
        "serve-batch",
        help="serve a JSON batch of requests through one session")
    ser.add_argument("batch",
                     help="batch spec file ('-' for stdin): "
                          '{"session": {...}, "requests": [...]}')
    ser.add_argument("-j", "--jobs", type=int, default=None,
                     help="parallel workers (default: REPRO_JOBS or "
                          "1 = serial; results identical either way)")
    ser.add_argument("--no-cache", action="store_true",
                     help="bypass the persistent result store")
    ser.add_argument("--cache-dir", metavar="DIR",
                     help="result store location (default .repro_cache/)")
    ser.add_argument("--json", metavar="FILE",
                     help="also write the JSON report to FILE")
    ser.add_argument("--format", default="table",
                     choices=("table", "json"),
                     help="stdout format (default: table)")
    ser.add_argument("--include-events", action="store_true",
                     help="include per-request event logs in the JSON "
                          "report")
    ser.add_argument("--events", action="store_true",
                     help="stream session events to stderr as they "
                          "happen")
    ser.set_defaults(func=cmd_serve_batch)

    per = sub.add_parser(
        "perf", help="engine micro-benchmarks (vectorized vs reference)")
    per.add_argument("--target", default="interpreter",
                     choices=("interpreter", "analysis", "kernels"),
                     help="what to benchmark: SCoP execution "
                          "(interpreter), dependence analysis + "
                          "legality queries (analysis), or the native "
                          "compiled-kernel tier vs vectorized vs "
                          "reference (kernels)")
    per.add_argument("--suite", default="polybench",
                     choices=BENCH_SUITES,
                     help="suite to time (default: polybench)")
    per.add_argument("--param", type=int, default=None,
                     help="uniform parameter binding for the interpreter "
                          "target (default: 20; rejected for --target "
                          "analysis, which concretizes at the fixed "
                          "witness sizes)")
    per.add_argument("--repeat", type=int, default=3,
                     help="timed laps per engine, best-of (default: 3)")
    per.add_argument("--budget", type=int, default=2_000_000,
                     help="instance budget per run")
    per.add_argument("--limit", type=int, metavar="N",
                     help="only the first N kernels")
    per.add_argument("--json", metavar="FILE",
                     help="write the JSON report to FILE (e.g. "
                          "BENCH_interpreter.json / BENCH_analysis.json)")
    per.add_argument("--format", default="table",
                     choices=("table", "json"),
                     help="stdout format (default: table)")
    per.set_defaults(func=cmd_perf)

    sto = sub.add_parser(
        "store", help="artifact-store maintenance "
                      "(stats, compaction, integrity)")
    stosub = sto.add_subparsers(dest="store_command", required=True)
    store_help = {
        "stats": "print per-stream store statistics",
        "compact": "rewrite shards, dropping reclaimable lines",
        "verify": "fsck: verify record checksums, shard framing and "
                  "the kernel cache; --repair heals what it can",
    }
    for name, func in (("stats", cmd_store_stats),
                       ("compact", cmd_store_compact),
                       ("verify", cmd_store_verify)):
        part = stosub.add_parser(name, help=store_help[name])
        part.add_argument("--cache-dir", metavar="DIR",
                          help="store location (default "
                               "REPRO_CACHE_DIR or .repro_cache/)")
        part.add_argument("--backend", default=None,
                          help="artifact-store backend (default: "
                               "REPRO_STORE_BACKEND or local)")
        part.add_argument("--format", default="table",
                          choices=("table", "json"),
                          help="output format (default: table)")
        if name in ("compact", "verify"):
            part.add_argument("--stream", metavar="NAME",
                              help=f"{name} only this stream "
                                   "(default: every stream)")
        if name == "compact":
            part.add_argument("--journal-keep", type=int, metavar="N",
                              default=None,
                              help="drop finished journal records "
                                   "beyond the newest N (default: "
                                   "REPRO_JOURNAL_KEEP, else keep all; "
                                   "admitted/started are never touched)")
        if name == "verify":
            part.add_argument("--repair", action="store_true",
                              help="heal the damage: read-repair from "
                                   "replicas (mirrored), compact "
                                   "corrupt lines away, evict broken "
                                   "kernels")
        part.set_defaults(func=func)

    ste = sub.add_parser("suites", help="list benchmark suites")
    ste.add_argument("-v", "--verbose", action="store_true")
    ste.set_defaults(func=cmd_suites)

    syn = sub.add_parser("synthesize", help="build a corpus and report")
    syn.add_argument("--size", type=int, default=300)
    syn.add_argument("--seed", type=int, default=0)
    syn.add_argument("--generator", default="looprag",
                     choices=("looprag", "colagen"))
    syn.add_argument("--distribution", action="store_true")
    syn.set_defaults(func=cmd_synthesize)
    return parser


def main(argv: Sequence[str] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
