"""Pseudo-C code generation from SCoP programs."""

from .cprinter import scop_body_to_c, to_c

__all__ = ["scop_body_to_c", "to_c"]
