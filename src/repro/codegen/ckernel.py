"""C kernel emission for the native execution tier (``REPRO_ENGINE=native``).

Two kinds of genuinely compilable C come out of :func:`emit_module`, both
bound by the same contract as the vectorized engine: **bit-identical**
results to the reference interpreter, or refusal.

* a **span kernel** per statement (``run_s<i>``) — executes a run of
  consecutive guard-passing instances *sequentially, in global schedule
  order*, reading and writing through precomputed linear index columns.
  Sequential execution in order reproduces the reference semantics by
  construction, including dependence-carrying recurrences the NumPy
  block executor must demote to per-instance Python steps; no scatter /
  reduction / aliasing analysis is needed on this path.
* a **whole-nest kernel** (``run(params, arrays)``) — the statement
  schedules reconstructed as one C loop nest (the idea of
  :mod:`repro.codegen.cprinter`, but emitted only when provably exact):
  every schedule dimension must be a constant or a plain coeff-1
  iterator, so the nest's lexicographic visit order *is* the global
  instance order.  Tiled/skewed schedules refuse the whole-nest form and
  fall back to span kernels.

Bit-identity policy (why the lowering looks the way it does):

* constants and baked scalar parameters are emitted as C99 hexadecimal
  float literals — exact bits, no decimal round-trip;
* ``/`` lowers to ``sdiv`` with the interpreter's ``b != 0`` guard;
  ``sqrt`` to ``sqrt(fabs(x))`` (glibc sqrt is correctly rounded, like
  ``math.sqrt``); ``fabs``/``pow2`` are exact; ``exp`` is **refused** —
  the same last-ulp argument that keeps it off the NumPy vector path
  (see ``runtime.compile._VECTOR_FUNCS``);
* callers must compile with ``-ffp-contract=off`` and without fast-math
  so the expression tree's rounding survives optimization (no FMA
  contraction, no reassociation);
* rank-mismatched references, rank-0 arrays, unknown arrays/functions
  and unbound scalars refuse exactly like the vector lowering; refused
  statements execute on the vectorized/scalar path instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..ir.affine import Affine
from ..ir.expr import (Bin, Call, Const, Expr, IterExpr, Neg, Ref, Scalar)
from ..ir.program import Program
from ..ir.schedule import ConstDim, LoopDim

#: calls with a bit-identical C lowering — ``exp`` deliberately absent,
#: mirroring the vector-path refusal list
_C_FUNCS = {
    "sqrt": "sqrt(fabs({0}))",
    "fabs": "fabs({0})",
    "pow2": "sq({0})",
}

_IDENT = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")

_HEADER = """\
#include <math.h>

static double sdiv(double a, double b) { return b != 0.0 ? a / b : 0.0; }
static double sq(double x) { return x * x; }
static long long llmin2(long long a, long long b) { return a < b ? a : b; }
static long long llmax2(long long a, long long b) { return a > b ? a : b; }
"""


class CUnsupported(Exception):
    """The construct has no provably bit-identical C lowering."""


def _c_double(value: float) -> str:
    """A double literal with exact bits (hexfloat for non-integers)."""
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise CUnsupported("non-finite constant")
    if value == int(value) and abs(value) <= 2.0 ** 53:
        return f"{value:.1f}"
    return value.hex()


def _c_name(name: str) -> str:
    if not _IDENT.match(name):
        raise CUnsupported(f"name {name!r} is not a C identifier")
    return name


def _c_affine(expr: Affine, names: Mapping[str, str]) -> str:
    """An affine expression over renamed ``long long`` variables."""
    parts = [str(expr.const)]
    for var, coeff in expr.terms:
        cv = names.get(var)
        if cv is None:
            raise CUnsupported(f"affine references unbound name {var!r}")
        parts.append(cv if coeff == 1 else f"({coeff})*{cv}")
    return "(" + " + ".join(parts) + ")"


@dataclass(frozen=True)
class StatementKernel:
    """Metadata the runtime needs to drive one span kernel."""

    si: int
    name: str                       # statement name, for diagnostics
    func: str                       # C symbol (``run_s<si>``)
    op: str
    write_array: str
    read_arrays: Tuple[str, ...]    # RHS reads in tree order
    iter_affines: Tuple[Affine, ...]  # IterExpr occurrences in tree order


@dataclass(frozen=True)
class KernelModule:
    """One program lowered to a single C translation unit."""

    source: str
    statements: Tuple[StatementKernel, ...]
    has_whole: bool
    param_names: Tuple[str, ...]    # ``run()`` params vector order
    array_names: Tuple[str, ...]    # ``run()`` arrays vector order
    refusals: Tuple[Tuple[str, str], ...]  # (statement, reason)


# ----------------------------------------------------------------------
# expression lowering
# ----------------------------------------------------------------------
def _check_refs(program: Program, stmt) -> None:
    """The structural refusal list shared with the vector path."""
    ranks = {decl.name: decl.rank for decl in program.arrays}
    for ref in [stmt.body.lhs] + list(stmt.body.rhs.reads()):
        rank = ranks.get(ref.array)
        if rank is None:
            raise CUnsupported(f"unknown array {ref.array!r}")
        if rank != len(ref.indices):
            raise CUnsupported(f"rank mismatch on {ref.array!r}")
        if rank == 0:
            raise CUnsupported(f"rank-0 array {ref.array!r}")


def _lower_expr(expr: Expr, scalars: Mapping[str, float],
                ref_text, iter_text) -> str:
    """Shared RHS lowering; refs/iters resolve through the callbacks."""
    if isinstance(expr, Const):
        return _c_double(expr.value)
    if isinstance(expr, Scalar):
        if expr.name not in scalars:
            raise CUnsupported(f"unbound scalar {expr.name!r}")
        return _c_double(scalars[expr.name])
    if isinstance(expr, IterExpr):
        return iter_text(expr)
    if isinstance(expr, Ref):
        return ref_text(expr)
    if isinstance(expr, Bin):
        lhs = _lower_expr(expr.lhs, scalars, ref_text, iter_text)
        rhs = _lower_expr(expr.rhs, scalars, ref_text, iter_text)
        if expr.op == "/":
            return f"sdiv({lhs}, {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, Neg):
        return f"(-{_lower_expr(expr.operand, scalars, ref_text, iter_text)})"
    if isinstance(expr, Call):
        template = _C_FUNCS.get(expr.func)
        if template is None:
            raise CUnsupported(f"call {expr.func!r} has no exact C lowering")
        return template.format(
            _lower_expr(expr.arg, scalars, ref_text, iter_text))
    raise CUnsupported(f"unknown expression node {type(expr).__name__}")


def _apply_op(target: str, op: str, value: str,
              pad: str) -> List[str]:
    """The assignment with the interpreter's ``/=`` zero guard."""
    if op == "/=":
        return [f"{pad}{{ double v = {value};",
                f"{pad}  long long w = {target};",
                f"{pad}  wa[w] = v != 0.0 ? wa[w] / v : 0.0; }}"]
    return [f"{pad}wa[{target}] {op} {value};"]


# ----------------------------------------------------------------------
# span kernels
# ----------------------------------------------------------------------
def _emit_statement(program: Program, si: int, stmt,
                    scalars: Mapping[str, float]
                    ) -> Tuple[List[str], StatementKernel]:
    _check_refs(program, stmt)
    body = stmt.body
    reads = list(body.rhs.reads())
    slots: Dict[int, int] = {id(ref): k for k, ref in enumerate(reads)}
    iters: List[Affine] = []

    def ref_text(ref: Ref) -> str:
        k = slots[id(ref)]
        return f"r{k}a[r{k}i[g]]"

    def iter_text(node: IterExpr) -> str:
        iters.append(node.expr)
        return f"x{len(iters) - 1}[g]"

    value = _lower_expr(body.rhs, scalars, ref_text, iter_text)
    wname = _c_name(body.lhs.array)
    aliased = any(ref.array == wname for ref in reads)
    # restrict is only honest when no read pointer can name the written
    # array — compound self-updates go through ``wa`` itself and are fine
    wq = "double *wa" if aliased else "double *restrict wa"
    args = ["long long a", "long long b",
            "const long long *restrict wi", wq]
    for k, ref in enumerate(reads):
        _c_name(ref.array)
        rq = ("const double *" if ref.array == wname
              else "const double *restrict ")
        args.append(f"const long long *restrict r{k}i")
        args.append(f"{rq}r{k}a")
    for j in range(len(iters)):
        args.append(f"const double *restrict x{j}")

    func = f"run_s{si}"
    lines = [f"void {func}(" + ", ".join(args) + ")", "{",
             "  long long g;",
             "  for (g = a; g < b; ++g) {"]
    if body.op == "/=":
        lines += [line[2:] if False else line
                  for line in _apply_op("wi[g]", body.op, value, "    ")]
    else:
        lines += _apply_op("wi[g]", body.op, value, "    ")
    lines += ["  }", "}"]
    spec = StatementKernel(
        si=si, name=stmt.name, func=func, op=body.op,
        write_array=body.lhs.array,
        read_arrays=tuple(ref.array for ref in reads),
        iter_affines=tuple(iters))
    return lines, spec


# ----------------------------------------------------------------------
# whole-nest kernel
# ----------------------------------------------------------------------
def _loop_levels(program: Program) -> Optional[List[Dict[int, str]]]:
    """Per statement: schedule level -> iterator name, or None to refuse.

    Only canonical dimensions are accepted: constants, or ``LoopDim``
    over exactly one domain iterator with coefficient 1 and offset 0,
    each iterator bound exactly once.  Anything else (tiles, skews,
    parameter-valued dims) means the rendered nest order could diverge
    from the true lexicographic instance order, so the whole-nest form
    refuses and the span kernels take over.
    """
    aligned = program.aligned_schedules()
    levels: List[Dict[int, str]] = []
    for si, stmt in enumerate(program.statements):
        names = stmt.domain.iterator_names
        seen: Dict[int, str] = {}
        for d, dim in enumerate(aligned[si].dims):
            if isinstance(dim, ConstDim):
                continue
            if not isinstance(dim, LoopDim):
                return None
            expr = dim.expr
            if len(expr.terms) != 1 or expr.const != 0:
                return None
            var, coeff = expr.terms[0]
            if coeff != 1 or var not in names or var in seen.values():
                return None
            seen[d] = var
        if set(seen.values()) != set(names):
            return None
        levels.append(seen)
    return levels


def _emit_whole(program: Program,
                scalars: Mapping[str, float]) -> Optional[List[str]]:
    levels = _loop_levels(program)
    if levels is None or not program.statements:
        return None
    aligned = program.aligned_schedules()
    width = len(aligned[0].dims)
    params = set(program.params)
    name_maps: List[Dict[str, str]] = []
    for si, stmt in enumerate(program.statements):
        mapping = {p: f"p_{p}" for p in program.params}
        mapping.update({it: f"t{lvl}" for lvl, it in levels[si].items()})
        name_maps.append(mapping)
        # SCoP well-formedness along the *schedule* order: bounds at a
        # level may only mention params and iterators of outer levels
        bound_so_far = set(params)
        for lvl in sorted(levels[si]):
            spec = stmt.domain.spec(levels[si][lvl])
            for bound in spec.lowers + spec.uppers:
                if not set(bound.variables()) <= bound_so_far:
                    return None
            bound_so_far.add(spec.name)

    referenced: List[str] = []
    for stmt in program.statements:
        for ref in [stmt.body.lhs] + list(stmt.body.rhs.reads()):
            if ref.array not in referenced:
                referenced.append(ref.array)

    lines: List[str] = [
        "void run(const long long *restrict params, "
        "double *const *restrict arrays)", "{"]
    for k, pname in enumerate(program.params):
        lines.append(f"  const long long p_{_c_name(pname)} = params[{k}];")
    decl_index = {d.name: k for k, d in enumerate(program.arrays)}
    pnames = {p: f"p_{p}" for p in program.params}
    for decl in program.arrays:
        if decl.name not in referenced:
            continue
        a = f"a_{_c_name(decl.name)}"
        lines.append(f"  double *restrict {a} = "
                     f"arrays[{decl_index[decl.name]}];")
        for d, dim in enumerate(decl.dims):
            lines.append(f"  const long long {a}_d{d} = "
                         f"{_c_affine(dim, pnames)};")
        for d in range(decl.rank - 2, -1, -1):
            prev = (f"{a}_s{d + 1} * " if d < decl.rank - 2 else "")
            lines.append(f"  const long long {a}_s{d} = "
                         f"{prev}{a}_d{d + 1};")

    def flat_index(ref: Ref, names: Mapping[str, str]) -> str:
        a = f"a_{ref.array}"
        rank = len(ref.indices)
        terms = []
        for d, ix in enumerate(ref.indices):
            e = _c_affine(ix, names)
            terms.append(e if d == rank - 1 else f"{e}*{a}_s{d}")
        return " + ".join(terms)

    def emit_body(si: int, indent: int) -> None:
        stmt = program.statements[si]
        names = name_maps[si]
        pad = "  " * indent
        conds: List[str] = []
        for lvl in sorted(levels[si]):
            spec = stmt.domain.spec(levels[si][lvl])
            tv = f"t{lvl}"
            for lo in spec.lowers:
                conds.append(f"{tv} >= {_c_affine(lo, names)}")
            for hi in spec.uppers:
                conds.append(f"{tv} <= {_c_affine(hi, names)}")
        for guard in stmt.guards:
            conds.append(f"{_c_affine(guard, names)} >= 0")

        value = _lower_expr(
            stmt.body.rhs, scalars,
            lambda ref: f"a_{ref.array}[{flat_index(ref, names)}]",
            lambda node: f"(double){_c_affine(node.expr, names)}")
        target = flat_index(stmt.body.lhs, names)
        wa = f"a_{stmt.body.lhs.array}"
        if stmt.body.op == "/=":
            body = [f"{pad}  {{ double v = {value};",
                    f"{pad}    long long w = {target};",
                    f"{pad}    {wa}[w] = v != 0.0 ? {wa}[w] / v : 0.0; }}"]
        else:
            body = [f"{pad}  {wa}[{target}] {stmt.body.op} {value};"]
        if conds:
            lines.append(f"{pad}if ({' && '.join(conds)}) {{")
            lines.extend(body)
            lines.append(f"{pad}}}")
        else:
            lines.extend(line[2:] for line in body)

    def render(group: List[int], level: int, indent: int) -> bool:
        if level == width:
            for si in group:
                emit_body(si, indent)
            return True
        kinds = {type(aligned[si].dims[level]) for si in group}
        if kinds == {ConstDim}:
            by_value: Dict[int, List[int]] = {}
            for si in group:
                by_value.setdefault(aligned[si].dims[level].value,
                                    []).append(si)
            for value in sorted(by_value):
                if not render(by_value[value], level + 1, indent):
                    return False
            return True
        if kinds == {LoopDim}:
            pad = "  " * indent
            tv = f"t{level}"
            los: List[str] = []
            his: List[str] = []
            for si in group:
                stmt = program.statements[si]
                spec = stmt.domain.spec(levels[si][level])
                names = name_maps[si]
                lo = _c_affine(spec.lowers[0], names)
                for bound in spec.lowers[1:]:
                    lo = f"llmax2({lo}, {_c_affine(bound, names)})"
                hi = _c_affine(spec.uppers[0], names)
                for bound in spec.uppers[1:]:
                    hi = f"llmin2({hi}, {_c_affine(bound, names)})"
                los.append(lo)
                his.append(hi)
            lines.append(f"{pad}{{")
            lines.append(f"{pad}  long long lo{level} = {los[0]};")
            lines.append(f"{pad}  long long hi{level} = {his[0]};")
            for lo, hi in zip(los[1:], his[1:]):
                lines.append(f"{pad}  lo{level} = llmin2(lo{level}, {lo});")
                lines.append(f"{pad}  hi{level} = llmax2(hi{level}, {hi});")
            lines.append(f"{pad}  for (long long {tv} = lo{level}; "
                         f"{tv} <= hi{level}; ++{tv}) {{")
            ok = render(group, level + 1, indent + 2)
            lines.append(f"{pad}  }}")
            lines.append(f"{pad}}}")
            return ok
        return False  # const/loop mixed at one level: order not a nest

    if not render(list(range(len(program.statements))), 0, 1):
        return None
    lines.append("}")
    return lines


# ----------------------------------------------------------------------
# module assembly
# ----------------------------------------------------------------------
def emit_module(program: Program) -> KernelModule:
    """Lower ``program`` to one C translation unit.

    Refused statements are listed (with reasons) instead of emitted; the
    whole-nest kernel appears only when *every* statement lowers and the
    schedule forest reconstructs exactly.
    """
    scalars = program.scalar_values()
    pieces: List[str] = [_HEADER]
    kernels: List[StatementKernel] = []
    refusals: List[Tuple[str, str]] = []
    for si, stmt in enumerate(program.statements):
        try:
            lines, spec = _emit_statement(program, si, stmt, scalars)
        except CUnsupported as exc:
            refusals.append((stmt.name, str(exc)))
            continue
        pieces.append("\n".join(lines))
        kernels.append(spec)

    whole: Optional[List[str]] = None
    if not refusals and program.statements:
        try:
            whole = _emit_whole(program, scalars)
        except CUnsupported:
            whole = None
    if whole is not None:
        pieces.append("\n".join(whole))

    return KernelModule(
        source="\n\n".join(pieces) + "\n",
        statements=tuple(kernels),
        has_whole=whole is not None,
        param_names=program.params,
        array_names=tuple(d.name for d in program.arrays),
        refusals=tuple(refusals))
