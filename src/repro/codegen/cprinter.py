"""Pseudo-C rendering of SCoP programs.

Reconstructs a loop nest from the (possibly transformed) schedules and
prints C-like text.  Three consumers: the BM25 retriever indexes this text,
prompt demonstrations show it to the (simulated) LLM, and humans read it in
examples.  Execution never goes through printed text — the interpreter runs
schedules directly — so the printer favours clarity: tile loops print with
``/B`` bounds, skewed dimensions get synthetic iterators, parallel /
vectorized columns print their pragmas.

The inverse direction (text → IR) is ``repro.ir.parser``; round-tripping
*original* (untransformed) programs through both is tested.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ir.affine import Affine
from ..ir.domain import Domain, IterSpec
from ..ir.program import Program
from ..ir.schedule import ConstDim, LoopDim, Schedule, TileDim
from ..ir.statement import Statement

_INDENT = "  "


def _bound_str(exprs: Sequence[Affine], fn: str) -> str:
    rendered = [str(e) for e in exprs]
    if len(rendered) == 1:
        return rendered[0]
    return f"{fn}({', '.join(rendered)})"


def _interval_of(expr: Affine, domain: Domain) -> Tuple[str, str]:
    """Textual lower/upper bounds of an affine schedule expression."""
    lo_terms: List[str] = []
    hi_terms: List[str] = []
    specs = {s.name: s for s in domain.iters}
    if expr.const:
        lo_terms.append(str(expr.const))
        hi_terms.append(str(expr.const))
    for name, coeff in expr.terms:
        spec = specs.get(name)
        if spec is None:
            term = f"{coeff}*{name}" if coeff != 1 else name
            lo_terms.append(term)
            hi_terms.append(term)
            continue
        lo = _bound_str(spec.lowers, "max")
        hi = _bound_str(spec.uppers, "min")
        if coeff > 0:
            lo_terms.append(lo if coeff == 1 else f"{coeff}*({lo})")
            hi_terms.append(hi if coeff == 1 else f"{coeff}*({hi})")
        else:
            lo_terms.append(f"{coeff}*({hi})")
            hi_terms.append(f"{coeff}*({lo})")
    lo_text = " + ".join(lo_terms) if lo_terms else "0"
    hi_text = " + ".join(hi_terms) if hi_terms else "0"
    return lo_text, hi_text


def _guard_str(guard: Affine) -> str:
    return f"{guard} >= 0"


def _stmt_line(stmt: Statement) -> str:
    text = str(stmt.body)
    if stmt.reg_accum:
        text += "  /* accumulated in register */"
    return f"{text}  // {stmt.name}"


def _dim_signature(dim) -> Tuple[str, str]:
    if isinstance(dim, ConstDim):
        return ("const", str(dim.value))
    if isinstance(dim, TileDim):
        return ("tile", f"{dim.expr}/{dim.size}")
    return ("loop", str(dim.expr))


class _Printer:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.width = program.schedule_width
        self.schedules = program.aligned_schedules()
        self.lines: List[str] = []
        self._loop_counter = 0
        self._active_tiles: Dict[str, Tuple[str, int]] = {}

    def emit(self, depth: int, text: str) -> None:
        self.lines.append(_INDENT * depth + text)

    def render(self) -> List[str]:
        order = list(range(len(self.program.statements)))
        self._render_group(order, 0, 0)
        return self.lines

    def _render_group(self, group: List[int], col: int, depth: int) -> None:
        if not group:
            return
        if col >= self.width:
            for si in group:
                self._render_leaf(si, depth)
            return
        # statement list order need not match schedule order (synthesized
        # programs attach statements in draft order): when the column is
        # constant for the whole group, the text constant decides the
        # textual order (stable, so ties keep list order — matching the
        # interpreter's tie-break)
        dims = [self.schedules[si].dims[col] for si in group]
        if all(isinstance(d, ConstDim) for d in dims):
            group = sorted(group,
                           key=lambda si: self.schedules[si].dims[col].value)
        # partition consecutively by dimension signature at this column
        runs: List[Tuple[Tuple[str, str], List[int]]] = []
        for si in group:
            sig = _dim_signature(self.schedules[si].dims[col])
            if runs and runs[-1][0] == sig:
                runs[-1][1].append(si)
            else:
                runs.append((sig, [si]))
        for (kind, _text), members in runs:
            if kind == "const":
                self._render_group(members, col + 1, depth)
            else:
                self._render_loop(members, col, depth, kind == "tile")

    def _render_loop(self, members: List[int], col: int, depth: int,
                     is_tile: bool) -> None:
        program = self.program
        first = members[0]
        dim = self.schedules[first].dims[col]
        stmt = program.statements[first]
        expr = dim.expr  # dynamic by construction
        single = (len(expr.terms) == 1 and expr.const == 0
                  and expr.terms[0][1] == 1)
        specs = {s.name: s for s in stmt.domain.iters}
        tile_key: Optional[str] = None
        if single and expr.terms[0][0] in specs and not is_tile:
            name = expr.terms[0][0]
            spec = specs[name]
            lo = _bound_str(spec.lowers, "max")
            hi = _bound_str(spec.uppers, "min")
            covering = self._active_tiles.get(str(expr))
            if covering is not None:
                tname, size = covering
                lo = f"max({lo}, {size}*{tname})"
                hi = f"min({hi}, {size}*{tname}+{size - 1})"
        else:
            self._loop_counter += 1
            name = f"t{self._loop_counter}"
            lo, hi = _interval_of(expr, stmt.domain)
            if is_tile:
                size = dim.size  # type: ignore[union-attr]
                lo = f"({lo})/{size}"
                hi = f"({hi})/{size}"
                tile_key = str(expr)
                self._active_tiles[tile_key] = (name, size)
        pragmas = []
        if col in program.parallel_dims:
            pragmas.append("#pragma omp parallel for")
        if col in program.vector_dims:
            pragmas.append("#pragma omp simd")
        for pragma in pragmas:
            self.emit(depth, pragma)
        self.emit(depth, f"for ({name} = {lo}; {name} <= {hi}; {name}++) {{")
        self._render_group(members, col + 1, depth + 1)
        self.emit(depth, "}")
        if tile_key is not None:
            self._active_tiles.pop(tile_key, None)

    def _render_leaf(self, si: int, depth: int) -> None:
        stmt = self.program.statements[si]
        if stmt.guards:
            cond = " && ".join(_guard_str(g) for g in stmt.guards)
            self.emit(depth, f"if ({cond})")
            self.emit(depth + 1, _stmt_line(stmt))
        else:
            self.emit(depth, _stmt_line(stmt))


def scop_body_to_c(program: Program) -> str:
    """Render only the loop nest between the scop pragmas."""
    return "\n".join(_Printer(program).render())


def to_c(program: Program) -> str:
    """Render a full pseudo-C translation unit for one program."""
    lines: List[str] = []
    params = ", ".join(f"int {p}" for p in program.params)
    lines.append(f"// program {program.name}")
    for note in program.provenance:
        lines.append(f"// applied: {note}")
    lines.append(f"void kernel_{program.name}({params}) {{")
    for name, value in program.scalars:
        lines.append(f"{_INDENT}double {name} = {value};")
    for decl in program.arrays:
        dims = "".join(f"[{d}]" for d in decl.dims)
        marker = "  // output" if decl.name in program.outputs else ""
        lines.append(f"{_INDENT}double {decl.name}{dims};{marker}")
    lines.append(f"{_INDENT}#pragma scop")
    for line in _Printer(program).render():
        lines.append(_INDENT + line)
    lines.append(f"{_INDENT}#pragma endscop")
    lines.append("}")
    return "\n".join(lines)
