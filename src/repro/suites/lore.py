"""LORE — 49 ``for``-loop nests extracted from applications (§6.1).

LORE collects loop nests from benchmark suites, libraries and real-world
applications.  The 49 SCoP-qualified nests here are modeled on the
repository's dominant categories: dense linear-algebra fragments (BLAS-
like), image/signal processing (convolutions, filters, histogram-free
transforms), physics kernels (stencil updates, accumulation sweeps),
data-reorganisation loops (transposes, packing) and scan/recurrence
loops.  Output arrays follow the paper's rule for LORE: the written
arrays of the SCoP are the functionally relevant ones.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .suite import Benchmark, Suite, make_benchmark

_K: List = []


def _lore(name: str, source: str, perf, test) -> None:
    _K.append((name, source, perf, test))


_N1 = ({"N": 400000}, {"N": 24})
_N2 = ({"N": 2048}, {"N": 9})
_N3 = ({"N": 180}, {"N": 7})


def _l1(name: str, body: str, arrays: str = "") -> None:
    _lore(name, f"""
    scop {name}(N) {{
      array u[N+4] output;
      array v[N+4];
      array w[N+4];
      {arrays}
      {body}
    }}
    """, *_N1)


def _l2(name: str, body: str, arrays: str = "") -> None:
    _lore(name, f"""
    scop {name}(N) {{
      array P[N+4][N+4] output;
      array Q[N+4][N+4];
      array R[N+4][N+4];
      array u[N+4] output;
      array v[N+4];
      {arrays}
      {body}
    }}
    """, *_N2)


def _l3(name: str, body: str, arrays: str = "") -> None:
    _lore(name, f"""
    scop {name}(N) {{
      array V3[N+4][N+4][N+4] output;
      array W3[N+4][N+4][N+4];
      array P[N+4][N+4];
      array u[N+4] output;
      {arrays}
      {body}
    }}
    """, *_N3)


# --- dense linear algebra fragments -----------------------------------
_l2("matvec_row", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "u[i] += P[i][j] * v[j];")
_l2("matvec_col", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "u[i] += P[j][i] * v[j];")
_l2("rank1_update", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                    "P[i][j] += u[i] * v[j];")
_l2("matmat_frag", "for (i = 0; i < N; i++) for (k = 0; k < N; k++) "
                   "for (j = 0; j < N; j++) "
                   "P[i][j] += Q[i][k] * R[k][j];")
_l2("tri_solve_row", "for (i = 1; i < N; i++) for (j = 0; j < i; j++) "
                     "u[i] -= P[i][j] * u[j];")
_l2("diag_scale", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = P[i][j] / (Q[i][i] + 1.5);")
_l2("outer_sub", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                 "P[i][j] = Q[i][j] - u[i] * v[j];")
_l2("sym_lower", "for (i = 0; i < N; i++) for (j = 0; j <= i; j++) "
                 "P[i][j] = 0.5 * (Q[i][j] + Q[j][i]);")
_l2("band_mult", "for (i = 2; i < N; i++) for (j = 2; j < N; j++) "
                 "u[i] += P[i][j] * v[j] + P[i][j-1] * v[j-1] "
                 "+ P[i][j-2] * v[j-2];")
_l2("norm_rows", "for (i = 0; i < N; i++) { u[i] = 0.0; "
                 "for (j = 0; j < N; j++) u[i] += P[i][j] * P[i][j]; "
                 "u[i] = sqrt(u[i]); }")

# --- image / signal processing -----------------------------------------
_l2("blur3", "for (i = 1; i < N - 1; i++) for (j = 1; j < N - 1; j++) "
             "P[i][j] = 0.1111 * (Q[i-1][j-1] + Q[i-1][j] + Q[i-1][j+1] "
             "+ Q[i][j-1] + Q[i][j] + Q[i][j+1] "
             "+ Q[i+1][j-1] + Q[i+1][j] + Q[i+1][j+1]);")
_l2("sobel_x", "for (i = 1; i < N - 1; i++) for (j = 1; j < N - 1; j++) "
               "P[i][j] = Q[i-1][j+1] - Q[i-1][j-1] "
               "+ 2.0 * Q[i][j+1] - 2.0 * Q[i][j-1] "
               "+ Q[i+1][j+1] - Q[i+1][j-1];")
_l2("transpose", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                 "P[i][j] = Q[j][i];")
_l2("brightness", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = Q[i][j] * 1.2 + 10.0;")
_l1("fir5", "for (i = 4; i < N; i++) "
            "u[i] = 0.2 * (v[i] + v[i-1] + v[i-2] + v[i-3] + v[i-4]);")
_l1("iir1", "for (i = 1; i < N; i++) u[i] = 0.7 * u[i-1] + 0.3 * v[i];")
_l1("correlate", "for (i = 0; i < N - 4; i++) "
                 "u[i] = v[i] * w[i] + v[i+1] * w[i+1] "
                 "+ v[i+2] * w[i+2] + v[i+3] * w[i+3];")
_l2("downsample", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = Q[i][j] + 0.5 * R[i][j];")
_l1("window_mul", "for (i = 0; i < N; i++) u[i] = v[i] * w[i];")
_l2("row_filter", "for (i = 0; i < N; i++) for (j = 1; j < N; j++) "
                  "P[i][j] = 0.5 * (Q[i][j] + Q[i][j-1]);")
_l2("col_filter", "for (i = 1; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = 0.5 * (Q[i][j] + Q[i-1][j]);")

# --- physics / scientific sweeps ---------------------------------------
_l3("stencil7_3d", "for (i = 1; i < N - 1; i++) for (j = 1; j < N - 1; j++) "
                   "for (k = 1; k < N - 1; k++) "
                   "V3[i][j][k] = 0.4 * W3[i][j][k] "
                   "+ 0.1 * (W3[i-1][j][k] + W3[i+1][j][k] "
                   "+ W3[i][j-1][k] + W3[i][j+1][k] "
                   "+ W3[i][j][k-1] + W3[i][j][k+1]);")
_l3("energy_sum", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "for (k = 0; k < N; k++) "
                  "u[i] += V3[i][j][k] * V3[i][j][k];")
_l2("advect", "for (i = 1; i < N; i++) for (j = 1; j < N; j++) "
              "P[i][j] = Q[i][j] - 0.2 * (Q[i][j] - Q[i-1][j]) "
              "- 0.2 * (Q[i][j] - Q[i][j-1]);")
_l2("pressure_rb", "for (i = 1; i < N - 1; i++) for (j = 1; j < N - 1; j++) "
                   "P[i][j] = 0.25 * (P[i-1][j] + P[i+1][j] "
                   "+ P[i][j-1] + P[i][j+1]);")
_l1("verlet_pos", "for (i = 0; i < N; i++) "
                  "u[i] += 0.01 * v[i] + 0.00005 * w[i];")
_l1("spring_force", "for (i = 1; i < N - 1; i++) "
                    "u[i] = 2.5 * (v[i+1] - 2.0 * v[i] + v[i-1]);")
_l2("heat_explicit", "for (i = 1; i < N - 1; i++) "
                     "for (j = 1; j < N - 1; j++) "
                     "P[i][j] += 0.1 * (Q[i+1][j] + Q[i-1][j] "
                     "+ Q[i][j+1] + Q[i][j-1] - 4.0 * Q[i][j]);")
_l3("flux_update", "for (i = 1; i < N; i++) for (j = 1; j < N; j++) "
                   "for (k = 1; k < N; k++) "
                   "V3[i][j][k] += 0.3 * (W3[i-1][j][k] - W3[i][j][k]);")
_l2("shallow_h", "for (i = 1; i < N - 1; i++) for (j = 1; j < N - 1; j++) "
                 "P[i][j] -= 0.1 * (Q[i][j+1] - Q[i][j] "
                 "+ R[i+1][j] - R[i][j]);")
_l1("decay_chain", "for (i = 1; i < N; i++) "
                   "u[i] = u[i-1] * 0.999 + v[i] * 0.001;")

# --- reductions and scans ----------------------------------------------
_l1("prefix_sum", "for (i = 1; i < N; i++) u[i] = u[i-1] + v[i];")
_l1("dot", "for (i = 0; i < N; i++) u[0] += v[i] * w[i];")
_l1("l2norm", "for (i = 0; i < N; i++) u[0] += v[i] * v[i];")
_l2("row_sums", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                "u[i] += P[i][j];")
_l2("col_sums", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                "u[j] += P[i][j];")
_l2("trace_band", "for (i = 1; i < N - 1; i++) "
                  "u[0] += P[i][i-1] + P[i][i] + P[i][i+1];")
_l2("residual_norm", "for (i = 0; i < N; i++) { "
                     "u[i] = v[i]; "
                     "for (j = 0; j < N; j++) u[i] -= P[i][j] * v[j]; "
                     "u[0] += u[i] * u[i]; }")

# --- data reorganisation -------------------------------------------------
_l1("reverse_copy", "for (i = 0; i < N; i++) u[i] = v[N-1-i];")
_l1("strided_pack", "for (i = 0; i < N; i++) u[i] = x2[2*i];",
    arrays="array x2[2*N+6];")
_l1("interleave", "for (i = 0; i < N; i++) { "
                  "x2[2*i] = v[i]; x2[2*i+1] = w[i]; }",
    arrays="array x2[2*N+6] output;")
_l2("pack_upper", "for (i = 0; i < N; i++) for (j = i; j < N; j++) "
                  "P[i][j] = Q[i][j];")
_l2("shift_rows", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = Q[i][j+1];")
_l2("rot90_frag", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                  "P[i][j] = Q[N-1-j][i];")
_l1("gather_even", "for (i = 0; i < N; i++) u[i] = x2[2*i] + x2[2*i+1];",
    arrays="array x2[2*N+6];")

# --- mixed application fragments ----------------------------------------
_l2("lud_frag", "for (i = 1; i < N; i++) for (j = 1; j <= i; j++) "
                "P[i][j] -= P[i][j-1] * 0.5;")
_l2("poly_eval2d", "for (i = 0; i < N; i++) for (j = 0; j < N; j++) "
                   "P[i][j] = Q[i][j] * Q[i][j] * 0.3 "
                   "+ Q[i][j] * 1.1 + 0.7;")
_l1("exp_smooth", "for (i = 2; i < N; i++) "
                  "u[i] = 0.5 * u[i-1] + 0.3 * u[i-2] + 0.2 * v[i];")
_l2("waterfall", "for (i = 1; i < N; i++) { "
                 "for (j = 0; j < N; j++) P[i][j] = P[i-1][j] * 0.9; "
                 "for (j = 1; j < N; j++) P[i][j] += P[i][j-1] * 0.1; }")


@lru_cache(maxsize=None)
def lore() -> Suite:
    """The 49-nest LORE subset."""
    benchmarks: List[Benchmark] = []
    for name, source, perf, test in _K:
        benchmarks.append(make_benchmark("lore", name, source, perf, test))
    assert len(benchmarks) == 49, f"expected 49, got {len(benchmarks)}"
    return Suite("lore", tuple(benchmarks))
