"""Benchmark suites: PolyBench (30), TSVC (84), LORE (49)."""

from .lore import lore
from .polybench import FIG14_KERNELS, polybench
from .suite import Benchmark, Suite, make_benchmark
from .tsvc import tsvc

SUITES = {"polybench": polybench, "tsvc": tsvc, "lore": lore}

__all__ = ["Benchmark", "Suite", "make_benchmark", "polybench", "tsvc",
           "lore", "SUITES", "FIG14_KERNELS"]
