"""PolyBench/C 4.2.1 — all 30 kernels (§6.1).

Loop structure, statement count, schedules and array access patterns
follow the PolyBench sources; sizes approximate EXTRALARGE_DATASET.
Three systematic substitutions (kernels can only contain what a SCoP
allows, and our DSL has no scalar temporaries):

* scalar accumulators become rank-1 arrays (``nrm[k]`` instead of
  ``nrm``) — same dependences, same locality class;
* ``min``/``max`` reductions (floyd-warshall, nussinov) become arithmetic
  reductions with identical access patterns and dependence structure;
* descending loops (nussinov) are re-indexed ascending with affine
  ``N-1-ii`` subscripts — the polyhedron is unchanged.

Each substitution preserves exactly what the evaluation exercises:
dependence shape, reuse pattern, parallelism structure.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .suite import Benchmark, Suite, make_benchmark

_K = []  # (name, source, perf, test)


def _kernel(name, source, perf, test):
    _K.append((name, source, perf, test))


_kernel("gemm", """
scop gemm(NI, NJ, NK) {
  scalars alpha=1.5 beta=1.2;
  array C[NI][NJ] output;
  array A[NI][NK];
  array B[NK][NJ];
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}
""", {"NI": 2000, "NJ": 2300, "NK": 2600}, {"NI": 8, "NJ": 7, "NK": 6})

_kernel("2mm", """
scop two_mm(NI, NJ, NK, NL) {
  scalars alpha=1.5 beta=1.2;
  array tmp[NI][NJ];
  array A[NI][NK];
  array B[NK][NJ];
  array C[NJ][NL];
  array D[NI][NL] output;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++) {
      D[i][j] *= beta;
      for (k = 0; k < NJ; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}
""", {"NI": 1600, "NJ": 1800, "NK": 2200, "NL": 2400},
    {"NI": 6, "NJ": 6, "NK": 5, "NL": 5})

_kernel("3mm", """
scop three_mm(NI, NJ, NK, NL, NM) {
  array E[NI][NJ];
  array A[NI][NK];
  array B[NK][NJ];
  array F[NJ][NL];
  array C[NJ][NM];
  array D[NM][NL];
  array G[NI][NL] output;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NL; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < NM; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < NJ; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}
""", {"NI": 1600, "NJ": 1800, "NK": 2000, "NL": 2200, "NM": 2400},
    {"NI": 5, "NJ": 5, "NK": 4, "NL": 4, "NM": 4})

_kernel("atax", """
scop atax(M, N) {
  array A[M][N];
  array x[N];
  array y[N] output;
  array tmp[M];
  for (i = 0; i < N; i++)
    y[i] = 0.0;
  for (i = 0; i < M; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++)
      tmp[i] += A[i][j] * x[j];
    for (j = 0; j < N; j++)
      y[j] += A[i][j] * tmp[i];
  }
}
""", {"M": 1800, "N": 2200}, {"M": 7, "N": 6})

_kernel("bicg", """
scop bicg(M, N) {
  array A[N][M];
  array s[M] output;
  array q[N] output;
  array p[M];
  array r[N];
  for (i = 0; i < M; i++)
    s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < M; j++) {
      s[j] += r[i] * A[i][j];
      q[i] += A[i][j] * p[j];
    }
  }
}
""", {"M": 1800, "N": 2200}, {"M": 7, "N": 6})

_kernel("mvt", """
scop mvt(N) {
  array x1[N] output;
  array x2[N] output;
  array y1[N];
  array y2[N];
  array A[N][N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] += A[i][j] * y1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] += A[j][i] * y2[j];
}
""", {"N": 4000}, {"N": 9})

_kernel("gemver", """
scop gemver(N) {
  scalars alpha=1.5 beta=1.2;
  array A[N][N];
  array u1[N];
  array v1[N];
  array u2[N];
  array v2[N];
  array w[N] output;
  array x[N];
  array y[N];
  array z[N];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] += u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] += beta * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] += z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] += alpha * A[i][j] * x[j];
}
""", {"N": 4000}, {"N": 8})

_kernel("gesummv", """
scop gesummv(N) {
  scalars alpha=1.5 beta=1.2;
  array A[N][N];
  array B[N][N];
  array tmp[N];
  array x[N];
  array y[N] output;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] += A[i][j] * x[j];
      y[i] += B[i][j] * x[j];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}
""", {"N": 2800}, {"N": 9})

_kernel("syrk", """
scop syrk(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}
""", {"N": 2600, "M": 2000}, {"N": 8, "M": 6})

_kernel("syr2k", """
scop syr2k(N, M) {
  scalars alpha=1.5 beta=1.2;
  array C[N][N] output;
  array A[N][M];
  array B[N][M];
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}
""", {"N": 2600, "M": 2000}, {"N": 8, "M": 5})

_kernel("symm", """
scop symm(M, N) {
  scalars alpha=1.5 beta=1.2;
  array C[M][N] output;
  array A[M][M];
  array B[M][N];
  array temp2[M][N];
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      temp2[i][j] = 0.0;
      for (k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2[i][j] += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i] + alpha * temp2[i][j];
    }
}
""", {"M": 2000, "N": 2600}, {"M": 7, "N": 6})

_kernel("trmm", """
scop trmm(M, N) {
  scalars alpha=1.5;
  array A[M][M];
  array B[M][N] output;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      for (k = i + 1; k < M; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
}
""", {"M": 2000, "N": 2600}, {"M": 7, "N": 6})

_kernel("trisolv", """
scop trisolv(N) {
  array L[N][N];
  array x[N] output;
  array b[N];
  for (i = 0; i < N; i++) {
    x[i] = b[i];
    for (j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
}
""", {"N": 4000}, {"N": 10})

_kernel("cholesky", """
scop cholesky(N) {
  array A[N][N] output;
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
}
""", {"N": 2600}, {"N": 9})

_kernel("lu", """
scop lu(N) {
  array A[N][N] output;
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (j = i; j < N; j++)
      for (k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
}
""", {"N": 2600}, {"N": 9})

_kernel("ludcmp", """
scop ludcmp(N) {
  array A[N][N];
  array b[N];
  array x[N] output;
  array y[N];
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (j = i; j < N; j++)
      for (k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
  for (i = 0; i < N; i++) {
    y[i] = b[i];
    for (j = 0; j < i; j++)
      y[i] -= A[i][j] * y[j];
  }
  for (ii = 0; ii < N; ii++) {
    x[N-1-ii] = y[N-1-ii];
    for (j = 0; j < ii; j++)
      x[N-1-ii] -= A[N-1-ii][N-1-j] * x[N-1-j];
    x[N-1-ii] = x[N-1-ii] / A[N-1-ii][N-1-ii];
  }
}
""", {"N": 2600}, {"N": 8})

_kernel("durbin", """
scop durbin(N) {
  array r[N];
  array y[N][N] output;
  array z[N][N];
  for (k = 1; k < N; k++) {
    for (i = 0; i < k; i++)
      z[k][i] = y[k-1][i] + r[k] * y[k-1][k-1-i];
    for (i = 0; i < k; i++)
      y[k][i] = z[k][i];
    y[k][k] = r[k];
  }
}
""", {"N": 4000}, {"N": 9})

_kernel("gramschmidt", """
scop gramschmidt(M, N) {
  array A[M][N] output;
  array R[N][N];
  array Q[M][N] output;
  array nrm[N];
  for (k = 0; k < N; k++) {
    nrm[k] = 0.0;
    for (i = 0; i < M; i++)
      nrm[k] += A[i][k] * A[i][k];
    R[k][k] = sqrt(nrm[k]);
    for (i = 0; i < M; i++)
      Q[i][k] = A[i][k] / R[k][k];
    for (j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (i = 0; i < M; i++)
        R[k][j] += Q[i][k] * A[i][j];
      for (i = 0; i < M; i++)
        A[i][j] -= Q[i][k] * R[k][j];
    }
  }
}
""", {"M": 2000, "N": 2600}, {"M": 6, "N": 5})

_kernel("correlation", """
scop correlation(M, N) {
  array data[N][M];
  array corr[M][M] output;
  array mean[M];
  array stddev[M];
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / 100.0;
    stddev[j] = 0.0;
    for (i = 0; i < N; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] = sqrt(stddev[j]) + 0.1;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      data[i][j] = (data[i][j] - mean[j]) / stddev[j];
  for (i = 0; i < M; i++) {
    corr[i][i] = 1.0;
    for (j = i + 1; j < M; j++) {
      corr[i][j] = 0.0;
      for (k = 0; k < N; k++)
        corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
}
""", {"M": 2600, "N": 3000}, {"M": 6, "N": 6})

_kernel("covariance", """
scop covariance(M, N) {
  array data[N][M];
  array cov[M][M] output;
  array mean[M];
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / 100.0;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      data[i][j] -= mean[j];
  for (i = 0; i < M; i++)
    for (j = i; j < M; j++) {
      cov[i][j] = 0.0;
      for (k = 0; k < N; k++)
        cov[i][j] += data[k][i] * data[k][j];
      cov[j][i] = cov[i][j];
    }
}
""", {"M": 2600, "N": 3000}, {"M": 6, "N": 6})

_kernel("doitgen", """
scop doitgen(NR, NQ, NP) {
  array A[NR][NQ][NP] output;
  array C4[NP][NP];
  array sum[NR][NQ][NP];
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NP; p++) {
        sum[r][q][p] = 0.0;
        for (s = 0; s < NP; s++)
          sum[r][q][p] += A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < NP; p++)
        A[r][q][p] = sum[r][q][p];
    }
}
""", {"NR": 220, "NQ": 250, "NP": 270}, {"NR": 4, "NQ": 4, "NP": 5})

_kernel("jacobi-1d", """
scop jacobi_1d(T, N) {
  array A[N] output;
  array B[N] output;
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
      B[i] = 0.33333 * (A[i-1] + A[i] + A[i+1]);
    for (i = 1; i < N - 1; i++)
      A[i] = 0.33333 * (B[i-1] + B[i] + B[i+1]);
  }
}
""", {"T": 1000, "N": 400000}, {"T": 3, "N": 12})

_kernel("jacobi-2d", """
scop jacobi_2d(T, N) {
  array A[N][N] output;
  array B[N][N] output;
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][1+j] + A[1+i][j] + A[i-1][j]);
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j-1] + B[i][1+j] + B[1+i][j] + B[i-1][j]);
  }
}
""", {"T": 1000, "N": 2800}, {"T": 2, "N": 9})

_kernel("fdtd-2d", """
scop fdtd_2d(T, NX, NY) {
  array ex[NX][NY] output;
  array ey[NX][NY] output;
  array hz[NX][NY] output;
  array fict[T];
  for (t = 0; t < T; t++) {
    for (j = 0; j < NY; j++)
      ey[0][j] = fict[t];
    for (i = 1; i < NX; i++)
      for (j = 0; j < NY; j++)
        ey[i][j] -= 0.5 * (hz[i][j] - hz[i-1][j]);
    for (i = 0; i < NX; i++)
      for (j = 1; j < NY; j++)
        ex[i][j] -= 0.5 * (hz[i][j] - hz[i][j-1]);
    for (i = 0; i < NX - 1; i++)
      for (j = 0; j < NY - 1; j++)
        hz[i][j] -= 0.7 * (ex[i][j+1] - ex[i][j] + ey[i+1][j] - ey[i][j]);
  }
}
""", {"T": 1000, "NX": 2000, "NY": 2600}, {"T": 2, "NX": 8, "NY": 8})

_kernel("heat-3d", """
scop heat_3d(T, N) {
  array A[N][N][N] output;
  array B[N][N][N] output;
  for (t = 0; t < T; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          B[i][j][k] = 0.125 * (A[i+1][j][k] - 2.0 * A[i][j][k] + A[i-1][j][k])
                     + 0.125 * (A[i][j+1][k] - 2.0 * A[i][j][k] + A[i][j-1][k])
                     + 0.125 * (A[i][j][k+1] - 2.0 * A[i][j][k] + A[i][j][k-1])
                     + A[i][j][k];
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          A[i][j][k] = 0.125 * (B[i+1][j][k] - 2.0 * B[i][j][k] + B[i-1][j][k])
                     + 0.125 * (B[i][j+1][k] - 2.0 * B[i][j][k] + B[i][j-1][k])
                     + 0.125 * (B[i][j][k+1] - 2.0 * B[i][j][k] + B[i][j][k-1])
                     + B[i][j][k];
  }
}
""", {"T": 1000, "N": 200}, {"T": 2, "N": 7})

_kernel("seidel-2d", """
scop seidel_2d(T, N) {
  array A[N][N] output;
  for (t = 0; t < T; t++)
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (A[i-1][j-1] + A[i-1][j] + A[i-1][j+1]
                       + A[i][j-1] + A[i][j] + A[i][j+1]
                       + A[i+1][j-1] + A[i+1][j] + A[i+1][j+1]) / 2.0;
}
""", {"T": 1000, "N": 4000}, {"T": 2, "N": 9})

_kernel("adi", """
scop adi(T, N) {
  array u[N][N] output;
  array v[N][N];
  array p[N][N];
  array q[N][N];
  for (t = 1; t <= T; t++) {
    for (i = 1; i < N - 1; i++) {
      v[0][i] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = 1.0;
      for (j = 1; j < N - 1; j++) {
        p[i][j] = 0.5 * p[i][j-1] + 0.25;
        q[i][j] = u[j][i-1] - u[j][i] * 0.5 + q[i][j-1] * 0.3;
      }
      for (jj = 1; jj < N - 1; jj++)
        v[N-1-jj][i] = p[i][N-1-jj] * v[N-jj][i] + q[i][N-1-jj];
    }
    for (i = 1; i < N - 1; i++) {
      u[i][0] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = 1.0;
      for (j = 1; j < N - 1; j++) {
        p[i][j] = 0.5 * p[i][j-1] + 0.25;
        q[i][j] = v[i-1][j] - v[i][j] * 0.5 + q[i][j-1] * 0.3;
      }
      for (jj = 1; jj < N - 1; jj++)
        u[i][N-1-jj] = p[i][N-1-jj] * u[i][N-jj] + q[i][N-1-jj];
    }
  }
}
""", {"T": 1000, "N": 2000}, {"T": 2, "N": 8})

_kernel("floyd-warshall", """
scop floyd_warshall(N) {
  array paths[N][N] output;
  for (k = 0; k < N; k++)
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        paths[i][j] += 0.001 * paths[i][k] * paths[k][j];
}
""", {"N": 2800}, {"N": 9})

_kernel("nussinov", """
scop nussinov(N) {
  array table[N][N] output;
  array seq[N];
  for (ii = 1; ii < N; ii++)
    for (j = N - ii; j < N; j++) {
      table[N-1-ii][j] += table[N-ii][j] * 0.5;
      table[N-1-ii][j] += table[N-1-ii][j-1] * 0.5;
      table[N-1-ii][j] += seq[j] * 0.01;
    }
}
""", {"N": 2800}, {"N": 8})

_kernel("deriche", """
scop deriche(W, H) {
  scalars a1=0.25 a2=0.15 b1=0.6;
  array imgIn[W][H];
  array imgOut[W][H] output;
  array y1[W][H];
  array y2[W][H];
  for (i = 0; i < W; i++) {
    y1[i][0] = a1 * imgIn[i][0];
    for (j = 1; j < H; j++)
      y1[i][j] = a1 * imgIn[i][j] + b1 * y1[i][j-1];
  }
  for (i = 0; i < W; i++) {
    y2[i][H-1] = 0.0;
    for (jj = 1; jj < H; jj++)
      y2[i][H-1-jj] = a2 * imgIn[i][H-jj] + b1 * y2[i][H-jj];
  }
  for (i = 0; i < W; i++)
    for (j = 0; j < H; j++)
      imgOut[i][j] = y1[i][j] + y2[i][j];
}
""", {"W": 7680, "H": 4320}, {"W": 7, "H": 7})

#: the subset Figure 14 plots (plus the Appendix G/H case studies)
FIG14_KERNELS = ("gemm", "syrk", "jacobi-2d", "fdtd-2d", "heat-3d",
                 "jacobi-1d", "mvt", "atax")


@lru_cache(maxsize=None)
def polybench() -> Suite:
    """The 30-kernel PolyBench suite."""
    benchmarks: List[Benchmark] = []
    for name, source, perf, test in _K:
        benchmarks.append(make_benchmark("polybench", name, source,
                                         perf, test))
    assert len(benchmarks) == 30, f"expected 30, got {len(benchmarks)}"
    return Suite("polybench", tuple(benchmarks))
