"""TSVC — the 84 SCoP-compatible vectorization kernels (§6.1).

TSVC has 149 loops; the paper keeps the 84 that satisfy SCoP requirements
(no data-dependent control flow, no indirect addressing, no induction
rewrites).  The kernels here follow the TSVC families: linear dependence
testing (s1xx), induction-free rewrites (s12x), distribution (s13x),
statement reordering / interchange (s2xx — including ``s233`` and
``s319``, the paper's extreme-speedup outliers of Appendix F), node
splitting (s24x), scalar/array expansion (s25x), reductions (s31x),
recurrences (s32x), and the v* micro-kernels.

Downward loops are re-indexed ascending (``LEN-1-i`` subscripts) and
scalar reductions accumulate into one-element rows of a ``sum`` array —
the same SCoP-ification Clan forces on the C originals.

Every kernel calls ``dummy()`` once per outer iteration in the original
suite; programs are tagged ``dummy-call`` + ``pure-annotated``
(Appendix C), which lets Polly detect the SCoP while Graphite's DCE
breaks — the reason Graphite is excluded from TSVC comparisons.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

from .suite import Benchmark, Suite, make_benchmark

#: the suite's default sizes (§6.1 uses TSVC defaults): LEN = 32000 keeps
#: the 1-D working set cache-resident on the modeled machine — the warm
#: measurement regime behind TSVC's compute-bound speedups
_PERF_1D = {"LEN": 32000}
_TEST_1D = {"LEN": 26}
_PERF_2D = {"LEN2": 256}
_TEST_2D = {"LEN2": 9}

_TAGS = ("dummy-call", "pure-annotated")

_K: List = []


def _d1(name: str, body: str, extra_arrays: str = "") -> None:
    """A one-dimensional kernel over the standard a..e arrays."""
    source = f"""
    scop {name.replace('-', '_')}(LEN) {{
      array a[LEN+2] output;
      array b[LEN+2];
      array c[LEN+2];
      array d[LEN+2];
      array e[LEN+2];
      array sum[4] output;
      {extra_arrays}
      {body}
    }}
    """
    _K.append((name, source, _PERF_1D, _TEST_1D))


def _d2(name: str, body: str, extra_arrays: str = "") -> None:
    """A two-dimensional kernel over the aa/bb/cc arrays."""
    source = f"""
    scop {name.replace('-', '_')}(LEN2) {{
      array aa[LEN2+2][LEN2+2] output;
      array bb[LEN2+2][LEN2+2];
      array cc[LEN2+2][LEN2+2];
      array a[LEN2+2] output;
      array b[LEN2+2];
      {extra_arrays}
      {body}
    }}
    """
    _K.append((name, source, _PERF_2D, _TEST_2D))


# ----------------------------------------------------------------------
# linear dependence testing
# ----------------------------------------------------------------------
_d1("s000", "for (i = 0; i < LEN; i++) a[i] = b[i] + 1.0;")
_d1("s111", "for (i = 0; i < LEN; i++) x2[2*i+1] = x2[2*i] + b[i];",
    extra_arrays="array x2[2*LEN+4] output;")
_d1("s112", "for (i = 0; i < LEN - 1; i++) "
            "a[LEN-i] = a[LEN-1-i] + b[LEN-1-i];")
_d1("s113", "for (i = 1; i < LEN; i++) a[i] = a[1] + b[i];")
_d2("s114", "for (i = 0; i < LEN2; i++) for (j = 0; j < i; j++) "
            "aa[i][j] = aa[j][i] + bb[i][j];")
_d2("s115", "for (j = 0; j < LEN2; j++) for (i = j + 1; i < LEN2; i++) "
            "a[i] -= aa[j][i] * a[j];")
_d1("s116", "for (i = 0; i < LEN - 5; i++) a[i] = a[i+1] * a[i];")
_d2("s118", "for (i = 1; i < LEN2; i++) for (j = 0; j <= i - 1; j++) "
            "a[i] += bb[j][i] * a[i-j-1];")
_d2("s119", "for (i = 1; i < LEN2; i++) for (j = 1; j < LEN2; j++) "
            "aa[i][j] = aa[i-1][j-1] + bb[i][j];")
_d1("s1111", "for (i = 0; i < LEN; i++) "
             "x2[2*i] = c[i] * b[i] + d[i] * b[i] + c[i] * c[i];",
    extra_arrays="array x2[2*LEN+4] output;")
_d1("s1112", "for (i = 0; i < LEN; i++) a[LEN-1-i] = b[LEN-1-i] + 1.0;")
_d1("s1113", "for (i = 2; i < LEN; i++) a[i] = a[2] + b[i];")
_d2("s1115", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
             "aa[i][j] = aa[i][j] * cc[j][i] + bb[i][j];")
_d1("s1119", "for (i = 1; i < LEN; i++) a[i] = a[i-1] + b[i] * b[i];")

# ----------------------------------------------------------------------
# induction-free rewrites / global data flow
# ----------------------------------------------------------------------
_d1("s121", "for (i = 0; i < LEN - 1; i++) a[i] = a[i+1] + b[i];")
_d1("s122", "for (i = 1; i < LEN; i++) a[LEN-i] += b[i];")
_d1("s1221", "for (i = 4; i < LEN; i++) b[i] = b[i-4] + a[i];")
_d2("s125", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
            "aa[i][j] = cc[i][j] * bb[i][j] + 1.0;")
_d2("s126", "for (i = 0; i < LEN2; i++) for (j = 1; j < LEN2; j++) "
            "bb[j][i] = bb[j-1][i] + cc[j][i];")
_d1("s127", "for (i = 0; i < LEN; i++) "
            "x2[2*i] = c[i] + b[i]; "
            "for (i = 0; i < LEN; i++) x2[2*i+1] = d[i] * e[i];",
    extra_arrays="array x2[2*LEN+4] output;")
_d1("s128", "for (i = 0; i < LEN; i++) { "
            "b[i] = x2[2*i] * d[i]; x2[2*i+1] = b[i] + e[i]; }",
    extra_arrays="array x2[2*LEN+4] output;")

# ----------------------------------------------------------------------
# loop distribution / fusion candidates
# ----------------------------------------------------------------------
_d1("s131", "for (i = 0; i < LEN - 1; i++) a[i] = a[i+1] + b[i];")
_d2("s132", "for (j = 1; j < LEN2; j++) for (i = 0; i < LEN2; i++) "
            "aa[j][i] = aa[j-1][i+1] + b[i];")
_d1("s141", "for (i = 0; i < LEN; i++) { "
            "a[i] = b[i] + c[i] * d[i]; b[i] = a[i] + d[i]; }")
_d2("s151", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
            "aa[i][j] = bb[i][j] * 2.0 + cc[i][j];")
_d1("s152", "for (i = 0; i < LEN; i++) { "
            "b[i] = d[i] * e[i]; a[i] += b[i] * c[i]; }")
_d1("s161", "for (i = 0; i < LEN - 1; i++) { "
            "a[i] = c[i] + d[i]; b[i] = a[i+1] * d[i]; }")

# ----------------------------------------------------------------------
# symbolic strides / convolution
# ----------------------------------------------------------------------
_d1("s171", "for (i = 0; i < LEN; i++) x2[2*i] += b[i];",
    extra_arrays="array x2[2*LEN+4] output;")
_d1("s172", "for (i = 0; i < LEN; i++) a[i] += x2[2*i];",
    extra_arrays="array x2[2*LEN+4];")
_d1("s173", "for (i = 0; i < LEN; i++) a[i+1] = a[i] * 0.5 + b[i];")
_d1("s174", "for (i = 0; i < LEN; i++) a[i] = b[i] * b[i];")
_d1("s175", "for (i = 0; i < LEN - 2; i++) a[i] = a[i+2] + b[i];")
_d2("s176", "for (j = 0; j < LEN2; j++) for (i = 0; i < LEN2; i++) "
            "a[i] += bb[j][i] * m2[LEN2+i-j-1];",
    extra_arrays="array m2[2*LEN2+4];")

# ----------------------------------------------------------------------
# statement reordering / loop interchange (the s23x outliers)
# ----------------------------------------------------------------------
_d1("s211", "for (i = 1; i < LEN - 1; i++) { "
            "a[i] = b[i-1] + c[i] * d[i]; b[i] = b[i+1] - e[i] * d[i]; }")
_d1("s212", "for (i = 0; i < LEN - 1; i++) { "
            "a[i] *= c[i]; b[i] += a[i+1] * d[i]; }")
_d1("s221", "for (i = 1; i < LEN; i++) { "
            "a[i] += c[i] * d[i]; b[i] = b[i-1] + a[i] + d[i]; }")
_d1("s222", "for (i = 1; i < LEN; i++) { "
            "a[i] += b[i] * c[i]; e[i] = e[i-1] * e[i-1]; a[i] -= b[i] * c[i]; }")
_d2("s231", "for (i = 0; i < LEN2; i++) for (j = 1; j < LEN2; j++) "
            "aa[j][i] = aa[j-1][i] + bb[j][i];")
_d2("s232", "for (j = 1; j < LEN2; j++) for (i = 1; i <= j; i++) "
            "aa[j][i] = aa[j][i-1] * aa[j][i-1] + bb[j][i];")
_d2("s233", "for (i = 1; i < LEN2; i++) { "
            "for (j = 1; j < LEN2; j++) "
            "aa[j][i] = aa[j-1][i] + cc[j][i]; "
            "for (j = 1; j < LEN2; j++) "
            "bb[j][i] = bb[j][i-1] + cc[j][i]; }")
_d2("s2233", "for (i = 1; i < LEN2; i++) { "
             "for (j = 1; j < LEN2; j++) "
             "aa[j][i] = aa[j-1][i] + cc[j][i]; "
             "for (j = 1; j < LEN2; j++) "
             "bb[i][j] = bb[i-1][j] + cc[i][j]; }")
_d2("s235", "for (i = 0; i < LEN2; i++) { "
            "a[i] += b[i] * a[i]; "
            "for (j = 1; j < LEN2; j++) "
            "aa[j][i] = aa[j-1][i] + bb[j][i] * a[i]; }")

# ----------------------------------------------------------------------
# node splitting
# ----------------------------------------------------------------------
_d1("s241", "for (i = 0; i < LEN - 1; i++) { "
            "a[i] = b[i] * c[i] * d[i]; b[i] = a[i] * a[i+1] * d[i]; }")
_d1("s242", "for (i = 1; i < LEN; i++) "
            "a[i] = a[i-1] + 1.0 + 2.0 + b[i] + c[i] + d[i];")
_d1("s243", "for (i = 0; i < LEN - 1; i++) { "
            "a[i] = b[i] + c[i] * d[i]; b[i] = a[i] + d[i] * e[i]; "
            "a[i] = b[i] + a[i+1] * d[i]; }")
_d1("s244", "for (i = 0; i < LEN - 1; i++) { "
            "a[i] = b[i] + c[i] * d[i]; b[i] = c[i] + b[i]; "
            "a[i+1] = b[i] + a[i+1] * d[i]; }")

# ----------------------------------------------------------------------
# scalar / array expansion
# ----------------------------------------------------------------------
_d1("s251", "for (i = 0; i < LEN; i++) { "
            "b[i] = a[i] + d[i]; a[i] = b[i] * c[i]; }")
_d1("s252", "for (i = 1; i < LEN; i++) { "
            "b[i] = a[i] * a[i-1] + c[i]; a[i] = b[i] + d[i]; }")
_d1("s253", "for (i = 0; i < LEN; i++) { "
            "c[i] = a[i] - b[i]; a[i] = c[i] * d[i]; }")
_d1("s254", "for (i = 1; i < LEN; i++) a[i] = (b[i] + b[i-1]) * 0.5;")
_d1("s255", "for (i = 2; i < LEN; i++) "
            "a[i] = (b[i] + b[i-1] + b[i-2]) * 0.333;")
_d2("s256", "for (i = 0; i < LEN2; i++) for (j = 1; j < LEN2; j++) { "
            "a[j] = aa[j][i] - a[j-1]; "
            "aa[j][i] = a[j] + bb[j][i]; }")
_d2("s257", "for (i = 1; i < LEN2; i++) for (j = 0; j < LEN2; j++) { "
            "a[i] = aa[j][i] - a[i-1]; aa[j][i] = a[i] + bb[j][i]; }")

# ----------------------------------------------------------------------
# reductions (scalar sums live in sum[·])
# ----------------------------------------------------------------------
_d1("s311", "for (i = 0; i < LEN; i++) sum[0] += a[i];")
_d1("s312", "for (i = 0; i < LEN; i++) sum[0] *= a[i];")
_d1("s313", "for (i = 0; i < LEN; i++) sum[0] += a[i] * b[i];")
_d1("s316", "for (i = 0; i < LEN; i++) sum[0] -= a[i] * 0.5;")
_d1("s318", "for (i = 0; i < LEN; i++) sum[0] += a[i] * a[i];")
_d1("s319", "for (i = 0; i < LEN; i++) { "
            "a[i] = c[i] + d[i]; sum[0] += a[i]; "
            "b[i] = c[i] + e[i]; sum[1] += b[i]; }")
_d2("s3110", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
             "a[i] += aa[i][j];")
_d2("s3111", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
             "a[j] += aa[i][j];")
_d1("s3112", "for (i = 1; i < LEN; i++) b[i] = b[i-1] + a[i];")
_d1("s3113", "for (i = 0; i < LEN; i++) sum[0] += a[i] + b[i] * c[i];")

# ----------------------------------------------------------------------
# recurrences
# ----------------------------------------------------------------------
_d1("s321", "for (i = 1; i < LEN; i++) a[i] += a[i-1] * b[i];")
_d1("s322", "for (i = 2; i < LEN; i++) "
            "a[i] = a[i] + a[i-1] * b[i] + a[i-2] * c[i];")
_d1("s323", "for (i = 1; i < LEN; i++) { "
            "a[i] = b[i-1] + c[i] * d[i]; b[i] = a[i] + c[i] * e[i]; }")

# ----------------------------------------------------------------------
# loop rerolling / micro kernels
# ----------------------------------------------------------------------
_d1("s351", "for (i = 0; i < LEN; i++) a[i] = b[i] * 5.0 + c[i];")
_d1("vas", "for (i = 0; i < LEN; i++) a[i] = b[i] + 1.5;")
_d1("vpv", "for (i = 0; i < LEN; i++) a[i] += b[i];")
_d1("vtv", "for (i = 0; i < LEN; i++) a[i] *= b[i];")
_d1("vpvtv", "for (i = 0; i < LEN; i++) a[i] += b[i] * c[i];")
_d1("vpvts", "for (i = 0; i < LEN; i++) a[i] += b[i] * 3.14159;")
_d1("vpvpv", "for (i = 0; i < LEN; i++) a[i] += b[i] + c[i];")
_d1("vtvtv", "for (i = 0; i < LEN; i++) a[i] = a[i] * b[i] * c[i];")
_d1("vsumr", "for (i = 0; i < LEN; i++) sum[0] += a[i];")
_d1("vdotr", "for (i = 0; i < LEN; i++) sum[0] += a[i] * b[i];")
_d2("vbor", "for (i = 0; i < LEN2; i++) for (j = 0; j < LEN2; j++) "
            "a[i] += aa[i][j] * bb[i][j] + aa[i][j] * cc[i][j] "
            "+ bb[i][j] * cc[i][j];")

# ----------------------------------------------------------------------
# 2D sweeps and mixed-depth kernels rounding out the SCoP subset
# ----------------------------------------------------------------------
_d2("s2101", "for (i = 0; i < LEN2; i++) aa[i][i] += 2.0 * bb[i][i];")
_d2("s2102", "for (i = 0; i < LEN2; i++) { aa[i][i] = 1.0; "
             "for (j = 0; j < i; j++) aa[i][j] = 0.5 * bb[i][j]; }")
_d2("s2111", "for (j = 1; j < LEN2; j++) for (i = 1; i < LEN2; i++) "
             "aa[j][i] = (aa[j][i-1] + aa[j-1][i]) * 0.5;")
_d2("s2275", "for (i = 0; i < LEN2; i++) { "
             "for (j = 0; j < LEN2; j++) "
             "aa[j][i] = aa[j][i] + bb[j][i] * cc[j][i]; "
             "a[i] = b[i] + a[i] * 2.0; }")
_d1("vif2", "for (i = 1; i < LEN; i++) if (i >= 2) a[i] = b[i] + c[i];")
_d1("s481", "for (i = 0; i < LEN; i++) a[i] -= b[i] * c[i];")
_d1("s482", "for (i = 0; i < LEN; i++) a[i] += b[i] * c[i] + d[i] * e[i];")


@lru_cache(maxsize=None)
def tsvc() -> Suite:
    """The 84-kernel TSVC SCoP subset."""
    benchmarks: List[Benchmark] = []
    for name, source, perf, test in _K:
        benchmarks.append(make_benchmark("tsvc", name, source, perf, test,
                                         tags=_TAGS))
    assert len(benchmarks) == 84, f"expected 84, got {len(benchmarks)}"
    return Suite("tsvc", tuple(benchmarks))
