"""Benchmark suite containers.

Each benchmark carries two parameter bindings: ``perf_params`` (the
paper's EXTRALARGE / default sizes — consumed by the analytical machine
model, which never enumerates iterations) and ``test_params`` (small
sizes for the interpreter-based differential testing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.parser import parse_scop
from ..ir.program import Program


@dataclass(frozen=True)
class Benchmark:
    """One kernel of one suite."""

    name: str
    suite: str
    program: Program
    perf_params: Tuple[Tuple[str, int], ...]
    test_params: Tuple[Tuple[str, int], ...]

    @property
    def perf(self) -> Dict[str, int]:
        return dict(self.perf_params)

    @property
    def test(self) -> Dict[str, int]:
        return dict(self.test_params)


@dataclass(frozen=True)
class Suite:
    """A named collection of benchmarks."""

    name: str
    benchmarks: Tuple[Benchmark, ...]

    def __len__(self) -> int:
        return len(self.benchmarks)

    def __iter__(self):
        return iter(self.benchmarks)

    def get(self, name: str) -> Benchmark:
        for bench in self.benchmarks:
            if bench.name == name:
                return bench
        raise KeyError(name)

    def names(self) -> List[str]:
        return [b.name for b in self.benchmarks]

    def subset(self, names: Sequence[str]) -> "Suite":
        wanted = set(names)
        return Suite(self.name, tuple(
            b for b in self.benchmarks if b.name in wanted))


def make_benchmark(suite: str, name: str, source: str,
                   perf: Dict[str, int], test: Dict[str, int],
                   tags: Sequence[str] = ()) -> Benchmark:
    """Parse one kernel and wrap it."""
    program = parse_scop(source)
    if tags:
        program = program.with_tags(*tags)
    return Benchmark(name=name, suite=suite, program=program,
                     perf_params=tuple(sorted(perf.items())),
                     test_params=tuple(sorted(test.items())))
