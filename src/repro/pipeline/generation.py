"""Feedback-based iterative generation (§4.3).

Runs K candidate slots through the paper's four steps:

* **Step 1** — build demonstrations (retrieved example SCoPs + optimized
  versions), generate K candidates, compile them (validation = CE);
* **Step 2** — regenerate CE candidates with the compiler diagnostics
  (first round of compilation feedback), test every compiling candidate
  (mutation + coverage + differential ⇒ IA/RE/ET) and rank the passing
  ones by modeled execution time;
* **Step 3** — show each slot the testing results and performance
  rankings (Appendix E.4) and regenerate;
* **Step 4** — compile/regenerate (second round of compilation feedback),
  test, and select the fastest passing candidate over *all* rounds.

Issue classes follow the paper: CE (compile error), IA (incorrect
answer), RE (runtime error), ET (execution timeout), IC (inefficient
code — passes but slower than the best).  ``stage_pass`` snapshots what
pass@k would have been had the pipeline stopped after each step —
Table 7's ablation reads those directly.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

from ..cancellation import checkpoint
from ..compilers.base import BaseCompiler, GCC
from ..ir.program import Program
from ..ir.validate import check_program
from ..machine.analytical import estimate_cached
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..llm.prompts import (AttemptRecord, Prompt, base_prompt,
                           compile_feedback_prompt, demo_prompt,
                           test_rank_feedback_prompt)
from ..llm.simulated import LLMResponse, SimulatedLLM
from ..retrieval.retriever import RetrievedDemo, Retriever
from ..testing.equivalence import (TestReport, VERDICT_ET, VERDICT_PASS,
                                   checker_for)
from ..codegen import scop_body_to_c

ISSUE_CE = "CE"
ISSUE_IA = "IA"
ISSUE_RE = "RE"
ISSUE_ET = "ET"
ISSUE_IC = "IC"

DEFAULT_K = 7
DEFAULT_TIME_LIMIT = 120.0

#: the paper's runtime limits: 120 s for LOOPRAG's candidates, 600 s for
#: baseline systems (§6.1).  Defined here (not in the facade module) so
#: the service API can import them without pulling in the shims.
LOOPRAG_TIME_LIMIT = 120.0
BASELINE_TIME_LIMIT = 600.0

STAGES = ("step1", "step2", "step3", "step4_prefix", "step4")


@dataclass
class Candidate:
    """One generated candidate with its evaluation."""

    slot: int
    round_tag: str
    response: LLMResponse
    compile_errors: List[str] = field(default_factory=list)
    report: Optional[TestReport] = None
    seconds: Optional[float] = None

    @property
    def compiled(self) -> bool:
        return not self.compile_errors

    @property
    def passed(self) -> bool:
        return (self.compiled and self.report is not None
                and self.report.passed and self.issue != ISSUE_ET)

    @property
    def issue(self) -> Optional[str]:
        if not self.compiled:
            return ISSUE_CE
        if self.report is None:
            return None
        if not self.report.passed:
            return self.report.verdict
        if self.seconds is not None and \
                self.seconds > _ACTIVE_LIMIT.value:
            return ISSUE_ET
        return None


# the limit is pipeline-scoped; a module slot avoids threading it through
# every Candidate property access.  Thread-local because the evaluation
# pool may run pipelines with different limits (LOOPRAG's 120 s vs the
# baseline's 600 s) concurrently on sibling threads.
class _ActiveLimit(threading.local):
    value = DEFAULT_TIME_LIMIT


_ACTIVE_LIMIT = _ActiveLimit()


def _no_emit(kind: str, **data) -> None:
    """Default event sink: drop everything.

    ``FeedbackPipeline.run`` reports progress through an ``emit(kind,
    **data)`` callable (see :mod:`repro.api.events` for the vocabulary);
    the kinds are plain strings here so the pipeline stays importable
    without the service API package.  Emission never consumes pipeline
    RNG — results are bit-identical with or without a subscriber.
    """


@dataclass(frozen=True)
class PipelineResult:
    """Everything the evaluation layer needs from one run."""

    target: str
    passed: bool
    baseline_seconds: float
    best_seconds: Optional[float]
    speedup: float
    best: Optional[Candidate]
    candidates: Tuple[Candidate, ...]
    stage_pass: Tuple[Tuple[str, bool], ...]
    stage_speedup: Tuple[Tuple[str, float], ...]
    demos: Tuple[RetrievedDemo, ...]

    def stage(self, name: str) -> bool:
        return dict(self.stage_pass)[name]

    def speedup_at(self, name: str) -> float:
        return dict(self.stage_speedup).get(name, 0.0)


class FeedbackPipeline:
    """The four-step loop for one (persona, base compiler) configuration."""

    def __init__(self,
                 retriever: Optional[Retriever],
                 llm_factory,
                 base_compiler: BaseCompiler = GCC,
                 machine: MachineModel = DEFAULT_MACHINE,
                 retrieval_method: str = "loop-aware",
                 k: int = DEFAULT_K,
                 time_limit: float = DEFAULT_TIME_LIMIT,
                 use_feedback: bool = True,
                 seed: int = 0,
                 demo_strategy: Optional[Callable] = None) -> None:
        self.retriever = retriever
        self.llm_factory = llm_factory
        self.base = base_compiler
        self.machine = machine
        self.retrieval_method = retrieval_method
        self.k = k
        self.time_limit = time_limit
        self.use_feedback = use_feedback
        self.seed = seed
        #: pluggable demonstration ranking: ``(retriever, target, rng) ->
        #: [RetrievedDemo]``.  ``None`` falls back to the retriever's
        #: built-in ``demonstrations`` under ``retrieval_method`` — the
        #: registry entries for the built-in methods do exactly that, so
        #: either spelling produces bit-identical demos.
        self.demo_strategy = demo_strategy

    # ------------------------------------------------------------------
    def run(self, target: Program, perf_params: Mapping[str, int],
            test_params: Mapping[str, int],
            emit: Optional[Callable] = None) -> PipelineResult:
        if emit is None:
            emit = _no_emit
        checkpoint()  # cooperative cancellation (deadline/drain)
        _ACTIVE_LIMIT.value = self.time_limit
        llm: SimulatedLLM = self.llm_factory()
        rng = random.Random(f"pipeline/{self.seed}/{target.fingerprint()}")
        checker = checker_for(target, test_params)
        baseline = estimate_cached(self.base.finalize(target), perf_params,
                                   self.machine).seconds
        target_text = scop_body_to_c(target)

        demos: Tuple[RetrievedDemo, ...] = ()
        if self.retriever is not None:
            if self.demo_strategy is not None:
                demos = tuple(self.demo_strategy(self.retriever, target,
                                                 rng))
            else:
                demos = tuple(self.retriever.demonstrations(
                    target, rng, self.retrieval_method))
            emit("retrieval_done", method=self.retrieval_method,
                 demos=[d.entry.name for d in demos])
            prompt = demo_prompt(target, target_text, demos)
        else:
            prompt = base_prompt(target, target_text)

        stage_pass: Dict[str, bool] = {}
        stage_speed: Dict[str, float] = {}
        all_candidates: List[Candidate] = []

        def snapshot(stage: str) -> None:
            passing = [c for c in all_candidates if c.passed]
            best = min((c.seconds for c in passing), default=None)
            stage_speed[stage] = (baseline / best
                                  if best and best > 0 else 0.0)
            emit("stage_done", stage=stage, passed=stage_pass[stage],
                 speedup=stage_speed[stage])

        # --- step 1: generate + compile --------------------------------
        emit("round_start", stage="step1")
        slots: List[Candidate] = []
        for k in range(self.k):
            cand = self._generate(llm, prompt, k, "r1", emit)
            slots.append(cand)
            all_candidates.append(cand)
        self._evaluate(checker, perf_params,
                       [c for c in slots if c.compiled], emit)
        stage_pass["step1"] = any(c.passed for c in slots)
        snapshot("step1")

        if not self.use_feedback:
            stage_pass.update({s: stage_pass["step1"]
                               for s in STAGES[1:]})
            for s in STAGES[1:]:
                stage_speed[s] = stage_speed["step1"]
            return self._finish(target, baseline, all_candidates,
                                stage_pass, stage_speed, demos, emit)

        # --- step 2: compile feedback round 1 + test + rank ------------
        emit("round_start", stage="step2")
        slots = self._compile_repair(llm, prompt, slots, "r1-fix",
                                     all_candidates, emit)
        self._evaluate(checker, perf_params,
                       [c for c in slots if c.compiled], emit)
        for cand in slots:
            llm.note_result(cand.slot, cand.passed)
        stage_pass["step2"] = (stage_pass["step1"]
                               or any(c.passed for c in slots))
        snapshot("step2")

        # --- step 3: testing + ranking feedback, regenerate -------------
        emit("round_start", stage="step3")
        attempts = tuple(
            AttemptRecord(index=c.slot, code_text=c.response.text,
                          program=c.response.program
                          if c.compiled else None,
                          passed=c.passed, seconds=c.seconds)
            for c in slots)
        fb_prompt = test_rank_feedback_prompt(prompt, attempts)
        new_slots: List[Candidate] = []
        for k in range(self.k):
            cand = self._generate(llm, fb_prompt, k, "r2", emit)
            new_slots.append(cand)
            all_candidates.append(cand)
        self._evaluate(checker, perf_params,
                       [c for c in new_slots if c.compiled], emit)
        stage_pass["step3"] = (stage_pass["step2"]
                               or any(c.passed for c in new_slots))
        stage_pass["step4_prefix"] = stage_pass["step3"]
        snapshot("step3")
        stage_speed["step4_prefix"] = stage_speed["step3"]

        # --- step 4: compile feedback round 2 + final selection ---------
        emit("round_start", stage="step4")
        new_slots = self._compile_repair(llm, fb_prompt, new_slots,
                                         "r2-fix", all_candidates, emit)
        self._evaluate(checker, perf_params,
                       [c for c in new_slots if c.compiled], emit)
        stage_pass["step4"] = (stage_pass["step3"]
                               or any(c.passed for c in new_slots))
        snapshot("step4")
        return self._finish(target, baseline, all_candidates, stage_pass,
                            stage_speed, demos, emit)

    # ------------------------------------------------------------------
    def _generate(self, llm: SimulatedLLM, prompt: Prompt, slot: int,
                  round_tag: str, emit: Callable = _no_emit) -> Candidate:
        checkpoint()  # before each backend call
        response = llm.generate(prompt, slot, round_tag)
        errors = check_program(response.program)
        emit("candidate_generated", slot=slot, round=round_tag,
             recipe=response.applied.describe(),
             slipped=response.slipped)
        emit("candidate_compiled", slot=slot, round=round_tag,
             ok=not errors, errors="; ".join(errors))
        return Candidate(slot=slot, round_tag=round_tag,
                         response=response,
                         compile_errors=errors)

    def _compile_repair(self, llm: SimulatedLLM, prompt: Prompt,
                        slots: List[Candidate], round_tag: str,
                        all_candidates: List[Candidate],
                        emit: Callable = _no_emit) -> List[Candidate]:
        repaired: List[Candidate] = []
        for cand in slots:
            if cand.compiled:
                repaired.append(cand)
                continue
            feedback = compile_feedback_prompt(
                prompt, cand.response.text, None,
                "; ".join(cand.compile_errors))
            fixed = self._generate(llm, feedback, cand.slot, round_tag,
                                   emit)
            all_candidates.append(fixed)
            repaired.append(fixed if fixed.compiled else cand)
        return repaired

    def _evaluate(self, checker, perf_params: Mapping[str, int],
                  candidates: Sequence[Candidate],
                  emit: Callable = _no_emit) -> None:
        for cand in candidates:
            if cand.report is not None:
                continue
            checkpoint()  # before each candidate's test battery
            cand.report = checker.check(cand.response.program)
            if cand.report.passed:
                finalized = self.base.finalize(cand.response.program)
                cand.seconds = estimate_cached(
                    finalized, perf_params, self.machine).seconds
            emit("candidate_tested", slot=cand.slot,
                 round=cand.round_tag, verdict=cand.report.verdict,
                 seconds=cand.seconds)

    def _finish(self, target: Program, baseline: float,
                all_candidates: List[Candidate],
                stage_pass: Dict[str, bool],
                stage_speed: Dict[str, float],
                demos: Tuple[RetrievedDemo, ...],
                emit: Callable = _no_emit) -> PipelineResult:
        passing = [c for c in all_candidates if c.passed]
        best = min(passing, key=lambda c: c.seconds) if passing else None
        best_seconds = best.seconds if best else None
        speedup = (baseline / best_seconds
                   if best_seconds and best_seconds > 0 else 0.0)
        emit("selected", passed=bool(passing), speedup=speedup,
             slot=best.slot if best else None,
             round=best.round_tag if best else None)
        return PipelineResult(
            target=target.name,
            passed=bool(passing),
            baseline_seconds=baseline,
            best_seconds=best_seconds,
            speedup=speedup,
            best=best,
            candidates=tuple(all_candidates),
            stage_pass=tuple(stage_pass.items()),
            stage_speedup=tuple(stage_speed.items()),
            demos=demos)
