"""LOOPRAG pipeline: feedback-based iterative generation + facade."""

from .generation import (Candidate, DEFAULT_K, DEFAULT_TIME_LIMIT,
                         FeedbackPipeline, ISSUE_CE, ISSUE_ET, ISSUE_IA,
                         ISSUE_IC, ISSUE_RE, PipelineResult, STAGES)
from .looprag import (BASELINE_TIME_LIMIT, BaseLLMOptimizer, LOOPRAG_TIME_LIMIT,
                      LoopRAG, OptimizeOutcome)

__all__ = [
    "Candidate", "DEFAULT_K", "DEFAULT_TIME_LIMIT", "FeedbackPipeline",
    "ISSUE_CE", "ISSUE_ET", "ISSUE_IA", "ISSUE_IC", "ISSUE_RE",
    "PipelineResult", "STAGES",
    "BASELINE_TIME_LIMIT", "BaseLLMOptimizer", "LOOPRAG_TIME_LIMIT",
    "LoopRAG", "OptimizeOutcome",
]
