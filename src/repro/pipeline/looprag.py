"""The LOOPRAG facade — one object, one ``optimize`` call.

Wires together the synthesized dataset, the loop-aware retriever, a
simulated-LLM persona, the feedback pipeline, the equivalence tester and
the machine model, mirroring Figure 3.  ``BaseLLMOptimizer`` is the
bare-LLM baseline of §6.2.2 (instruction prompting, no demonstrations,
no feedback).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..compilers.base import BaseCompiler, GCC
from ..ir.program import Program
from ..llm.personas import Persona
from ..llm.simulated import SimulatedLLM
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..retrieval.retriever import Retriever
from ..synthesis.dataset import Dataset
from .generation import (DEFAULT_K, DEFAULT_TIME_LIMIT, FeedbackPipeline,
                         PipelineResult)

#: the paper's runtime limits: 120 s for LOOPRAG's candidates, 600 s for
#: baseline systems (§6.1)
LOOPRAG_TIME_LIMIT = 120.0
BASELINE_TIME_LIMIT = 600.0


@dataclass(frozen=True)
class OptimizeOutcome:
    """User-facing result of one optimization."""

    result: PipelineResult

    @property
    def passed(self) -> bool:
        return self.result.passed

    @property
    def speedup(self) -> float:
        return self.result.speedup

    @property
    def best_program(self) -> Optional[Program]:
        if self.result.best is None:
            return None
        return self.result.best.response.program

    @property
    def best_recipe(self):
        if self.result.best is None:
            return None
        return self.result.best.response.applied


class LoopRAG:
    """Retrieval-augmented loop transformation optimizer (Figure 3)."""

    def __init__(self, dataset: Dataset, persona: Persona,
                 base_compiler: BaseCompiler = GCC,
                 machine: MachineModel = DEFAULT_MACHINE,
                 retrieval_method: str = "loop-aware",
                 k: int = DEFAULT_K,
                 time_limit: float = LOOPRAG_TIME_LIMIT,
                 seed: int = 0,
                 retriever: Optional[Retriever] = None) -> None:
        self.persona = persona
        self.retriever = retriever or Retriever(dataset)
        self.pipeline = FeedbackPipeline(
            retriever=self.retriever,
            llm_factory=lambda: SimulatedLLM(persona, seed),
            base_compiler=base_compiler,
            machine=machine,
            retrieval_method=retrieval_method,
            k=k,
            time_limit=time_limit,
            use_feedback=True,
            seed=seed)

    def optimize(self, program: Program,
                 perf_params: Mapping[str, int],
                 test_params: Mapping[str, int]) -> OptimizeOutcome:
        """Optimize one SCoP; returns the fastest verified candidate."""
        return OptimizeOutcome(
            self.pipeline.run(program, perf_params, test_params))


class BaseLLMOptimizer:
    """Bare-LLM baseline: instruction prompting only (Appendix E.1).

    As a *baseline* its runtime threshold is the 600 s one (§6.1), not
    LOOPRAG's 120 s optimization-success threshold.
    """

    def __init__(self, persona: Persona,
                 base_compiler: BaseCompiler = GCC,
                 machine: MachineModel = DEFAULT_MACHINE,
                 k: int = DEFAULT_K,
                 time_limit: float = BASELINE_TIME_LIMIT,
                 seed: int = 0) -> None:
        self.persona = persona
        self.pipeline = FeedbackPipeline(
            retriever=None,
            llm_factory=lambda: SimulatedLLM(persona, seed),
            base_compiler=base_compiler,
            machine=machine,
            k=k,
            time_limit=time_limit,
            use_feedback=False,
            seed=seed)

    def optimize(self, program: Program,
                 perf_params: Mapping[str, int],
                 test_params: Mapping[str, int]) -> OptimizeOutcome:
        return OptimizeOutcome(
            self.pipeline.run(program, perf_params, test_params))
