"""Deprecated facades over the service API (:mod:`repro.api`).

``LoopRAG`` and ``BaseLLMOptimizer`` were the original one-object,
one-``optimize``-call entry points of Figure 3.  They remain here as
thin shims over :class:`repro.api.OptimizerSession` with byte-identical
outputs — same pipelines, same seeds, same candidates — but new code
should construct a session directly:

====================================  =================================
old                                   new
====================================  =================================
``LoopRAG(ds, persona).optimize``     ``OptimizerSession(...).optimize``
``BaseLLMOptimizer(persona)``         ``system="basellm"`` requests
``run_looprag`` / ``run_base_llm``    ``session.run_plans`` (harness)
====================================  =================================

The shims emit :class:`DeprecationWarning` once per construction.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping, Optional

from ..compilers.base import BaseCompiler, GCC
from ..ir.program import Program
from ..llm.personas import Persona
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..retrieval.retriever import Retriever
from ..synthesis.dataset import Dataset
from .generation import (BASELINE_TIME_LIMIT, DEFAULT_K,
                         DEFAULT_TIME_LIMIT, LOOPRAG_TIME_LIMIT,
                         PipelineResult)


@dataclass(frozen=True)
class OptimizeOutcome:
    """User-facing result of one optimization."""

    result: PipelineResult

    @property
    def passed(self) -> bool:
        return self.result.passed

    @property
    def speedup(self) -> float:
        return self.result.speedup

    @property
    def best_program(self) -> Optional[Program]:
        if self.result.best is None:
            return None
        return self.result.best.response.program

    @property
    def best_recipe(self):
        if self.result.best is None:
            return None
        return self.result.best.response.applied


def _deprecated(old: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use repro.api.OptimizerSession "
        f"(see docs/architecture.md, 'Service API')",
        DeprecationWarning, stacklevel=3)


class LoopRAG:
    """Retrieval-augmented loop transformation optimizer (Figure 3).

    .. deprecated::
        Thin shim over :class:`repro.api.OptimizerSession`; outputs are
        byte-identical to the pre-session implementation.
    """

    def __init__(self, dataset: Dataset, persona: Persona,
                 base_compiler: BaseCompiler = GCC,
                 machine: MachineModel = DEFAULT_MACHINE,
                 retrieval_method: str = "loop-aware",
                 k: int = DEFAULT_K,
                 time_limit: float = LOOPRAG_TIME_LIMIT,
                 seed: int = 0,
                 retriever: Optional[Retriever] = None) -> None:
        from ..api.session import OptimizerSession

        _deprecated("LoopRAG")
        self.persona = persona
        self.session = OptimizerSession(
            seed=seed, retrieval_method=retrieval_method,
            base_compiler=base_compiler, machine=machine, k=k,
            dataset=None if retriever is not None else dataset,
            retriever=retriever)
        self.time_limit = time_limit
        self.retriever = self.session.retriever
        self.pipeline = self.session.pipeline_for("looprag", persona,
                                                  time_limit)

    def optimize(self, program: Program,
                 perf_params: Mapping[str, int],
                 test_params: Mapping[str, int]) -> OptimizeOutcome:
        """Optimize one SCoP; returns the fastest verified candidate."""
        from ..api.session import OptimizationRequest

        result = self.session.optimize(
            OptimizationRequest.make(program, perf_params, test_params,
                                     system="looprag",
                                     persona=self.persona,
                                     time_limit=self.time_limit),
            use_store=False)
        return OptimizeOutcome(result.pipeline_result)


class BaseLLMOptimizer:
    """Bare-LLM baseline: instruction prompting only (Appendix E.1).

    As a *baseline* its runtime threshold is the 600 s one (§6.1), not
    LOOPRAG's 120 s optimization-success threshold.

    .. deprecated::
        Thin shim over :class:`repro.api.OptimizerSession`.
    """

    def __init__(self, persona: Persona,
                 base_compiler: BaseCompiler = GCC,
                 machine: MachineModel = DEFAULT_MACHINE,
                 k: int = DEFAULT_K,
                 time_limit: float = BASELINE_TIME_LIMIT,
                 seed: int = 0) -> None:
        from ..api.session import OptimizerSession

        _deprecated("BaseLLMOptimizer")
        self.persona = persona
        # a bare-LLM session never touches the corpus; keep the machine
        # override out of the store key by disabling the store outright
        self.session = OptimizerSession(
            seed=seed, base_compiler=base_compiler, machine=machine,
            k=k, use_store=False)
        self.time_limit = time_limit
        self.pipeline = self.session.pipeline_for("basellm", persona,
                                                  time_limit)

    def optimize(self, program: Program,
                 perf_params: Mapping[str, int],
                 test_params: Mapping[str, int]) -> OptimizeOutcome:
        from ..api.session import OptimizationRequest

        result = self.session.optimize(
            OptimizationRequest.make(program, perf_params, test_params,
                                     system="basellm",
                                     persona=self.persona,
                                     time_limit=self.time_limit),
            use_store=False)
        return OptimizeOutcome(result.pipeline_result)
