"""Native compiled-kernel execution tier (``REPRO_ENGINE=native``).

This module owns everything between the C source emitted by
:mod:`repro.codegen.ckernel` and a callable ``ctypes`` function:

* **toolchain discovery** — ``REPRO_CC`` if set (an explicit override
  that does not resolve means *no toolchain*, even if ``gcc`` exists),
  else the first of ``cc``/``gcc``/``clang`` on PATH.  A toolchain
  *signature* (hash of resolved path, ``--version`` banner and flags)
  keys compiled artifacts so a compiler upgrade never serves stale code.
* **a process-wide on-disk kernel cache** under ``<cache-dir>/kernels/``
  (``REPRO_CACHE_DIR``, default ``.repro_cache``): ``<key>.so`` plus the
  ``<key>.c`` source and a ``<key>.json`` sidecar recording the
  toolchain signature.  Installs are flock-guarded tmp+rename in the
  ``storage/local.py`` idiom, so concurrent processes racing the same
  fingerprint compile once and share the ``.so``; a corrupt or
  truncated ``.so`` is evicted under the lock and rebuilt once.
  ``REPRO_NO_CACHE`` bypasses the disk cache but still compiles, to a
  per-process tempdir.
* **the execution hooks** the vectorized driver calls:
  :meth:`NativeContext.try_whole` (the whole program as one compiled
  loop nest, when provably exact) and :meth:`NativeContext.run_span`
  (one statement's run of consecutive guard-passing instances, executed
  sequentially in global order).  Both reuse the driver's enumeration,
  guard evaluation, bounds validation and budget accounting, so error
  classes, messages, coverage and partial-write behaviour are shared
  with the vectorized tier by construction.

A missing toolchain degrades the whole tier to the vectorized engine
with a single :class:`RuntimeWarning`; per-statement refusals (``exp``,
rank mismatches, …) fall back statement-by-statement.  Either way every
program still executes bit-identically to the reference interpreter.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..codegen.ckernel import KernelModule, StatementKernel, emit_module
from ..ir.affine import affine_column
from ..ir.program import Program
from .vectorized import _linear, _record_pending

#: flags every kernel is compiled with; no fast-math and no FP
#: contraction so C doubles round exactly like the interpreter's
CFLAGS: Tuple[str, ...] = ("-O2", "-fPIC", "-shared", "-ffp-contract=off",
                           "-fno-fast-math")

ENV_CC = "REPRO_CC"
_PROBE_ORDER = ("cc", "gcc", "clang")

#: process-wide cache-behaviour counters (see :func:`kernel_stats`)
KERNEL_STATS: Dict[str, int] = {"compiles": 0, "disk_hits": 0,
                                "memory_hits": 0}
_STATS_LOCK = threading.Lock()

#: optional observer for cache events ("compile" | "disk_hit" |
#: "memory_hit"); the serve daemon points this at its metrics so
#: kernel-cache behaviour shows up in ``/metrics`` even from forked
#: workers (relayed over the worker pipe)
on_cache_event: Optional[Callable[[str], None]] = None

_TOOLCHAIN_CACHE: Dict[str, Optional["Toolchain"]] = {}
_WARNED: set = set()
_MODULE_CACHE: Dict[str, ctypes.CDLL] = {}
_CONTEXT_CACHE: Dict[Tuple[str, str], Optional["NativeContext"]] = {}
_TMPDIR: Optional[str] = None


class NativeCompileError(Exception):
    """The discovered compiler failed to build a kernel."""


class Toolchain:
    """A resolved C compiler plus its cache-key signature."""

    __slots__ = ("cc", "version", "signature")

    def __init__(self, cc: str, version: str) -> None:
        self.cc = cc
        self.version = version
        digest = hashlib.sha256()
        digest.update(cc.encode())
        digest.update(version.encode())
        digest.update(" ".join(CFLAGS).encode())
        self.signature = digest.hexdigest()[:16]


def _note(kind: str) -> None:
    with _STATS_LOCK:
        key = {"compile": "compiles", "disk_hit": "disk_hits",
               "memory_hit": "memory_hits"}[kind]
        KERNEL_STATS[key] += 1
    hook = on_cache_event
    if hook is not None:
        hook(kind)


def kernel_stats() -> Dict[str, int]:
    with _STATS_LOCK:
        return dict(KERNEL_STATS)


def reset_kernel_stats() -> None:
    with _STATS_LOCK:
        for key in KERNEL_STATS:
            KERNEL_STATS[key] = 0


def find_toolchain() -> Optional[Toolchain]:
    """Discover the C toolchain, memoized per ``REPRO_CC`` value."""
    key = os.environ.get(ENV_CC) or ""
    if key in _TOOLCHAIN_CACHE:
        return _TOOLCHAIN_CACHE[key]
    cc: Optional[str] = None
    if key:
        # an explicit override must resolve on its own; never silently
        # substitute a probed compiler for one the user asked for
        cc = shutil.which(key) or (key if os.path.isfile(key)
                                   and os.access(key, os.X_OK) else None)
    else:
        for cand in _PROBE_ORDER:
            cc = shutil.which(cand)
            if cc:
                break
    toolchain: Optional[Toolchain] = None
    if cc:
        try:
            proc = subprocess.run([cc, "--version"], capture_output=True,
                                  text=True, timeout=30)
            banner = (proc.stdout or proc.stderr).splitlines()
            if proc.returncode == 0 and banner:
                toolchain = Toolchain(cc, banner[0].strip())
        except (OSError, subprocess.SubprocessError):
            toolchain = None
    _TOOLCHAIN_CACHE[key] = toolchain
    return toolchain


def toolchain_info() -> Dict[str, object]:
    """Introspection for CI/perf reports: what would ``native`` use?"""
    tc = find_toolchain()
    return {
        "available": tc is not None,
        "cc": tc.cc if tc else None,
        "version": tc.version if tc else None,
        "signature": tc.signature if tc else None,
        "flags": list(CFLAGS),
        "env_override": os.environ.get(ENV_CC) or None,
    }


def _warn_unavailable() -> None:
    key = os.environ.get(ENV_CC) or ""
    if key in _WARNED:
        return
    _WARNED.add(key)
    hint = f"REPRO_CC={key!r}" if key else "cc/gcc/clang on PATH"
    warnings.warn(
        f"REPRO_ENGINE=native: no usable C toolchain ({hint}); "
        "falling back to the vectorized engine (results are identical, "
        "only slower)", RuntimeWarning, stacklevel=3)


# ----------------------------------------------------------------------
# on-disk kernel cache
# ----------------------------------------------------------------------
def kernels_dir(root: Optional[Path] = None) -> Path:
    if root is None:
        from ..evaluation.store import cache_dir
        root = cache_dir()
    return Path(root) / "kernels"


def kernel_cache_key(source: str, toolchain: Toolchain) -> str:
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(toolchain.signature.encode())
    return digest.hexdigest()[:32]


def _compile(toolchain: Toolchain, src_path: Path,
             so_path: Path) -> None:
    cmd = [toolchain.cc, *CFLAGS, "-o", str(so_path), str(src_path), "-lm"]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=120)
    except (OSError, subprocess.SubprocessError) as exc:
        raise NativeCompileError(f"{toolchain.cc}: {exc}") from exc
    if proc.returncode != 0:
        detail = (proc.stderr or proc.stdout or "").strip()
        raise NativeCompileError(
            f"{toolchain.cc} exited {proc.returncode}: {detail[:500]}")
    _note("compile")


def _tempdir() -> Path:
    global _TMPDIR
    if _TMPDIR is None:
        _TMPDIR = tempfile.mkdtemp(prefix="repro-kernels-")
    return Path(_TMPDIR)


def load_module(source: str, toolchain: Toolchain) -> ctypes.CDLL:
    """Compile-or-load ``source``, sharing ``.so`` files across processes.

    Raises :class:`NativeCompileError` when the toolchain exists but the
    build fails (callers degrade gracefully).
    """
    key = kernel_cache_key(source, toolchain)
    lib = _MODULE_CACHE.get(key)
    if lib is not None:
        _note("memory_hit")
        return lib

    if os.environ.get("REPRO_NO_CACHE"):
        so_path = _tempdir() / f"{key}.so"
        if not so_path.exists():
            src_path = _tempdir() / f"{key}.c"
            src_path.write_text(source)
            _compile(toolchain, src_path, so_path)
        lib = ctypes.CDLL(str(so_path))
        _MODULE_CACHE[key] = lib
        return lib

    from ..storage.local import exclusive_lock

    root = kernels_dir()
    root.mkdir(parents=True, exist_ok=True)
    so_path = root / f"{key}.so"
    lock_path = root / f"{key}.lock"

    lib = None
    if so_path.exists():
        try:
            lib = ctypes.CDLL(str(so_path))
            _note("disk_hit")
        except OSError:
            # truncated/corrupt install (e.g. a crashed writer on a
            # filesystem without atomic rename): evict under the lock
            # below and rebuild once
            lib = None
    if lib is None:
        with exclusive_lock(lock_path):
            # the race loser finds the winner's install on re-check;
            # anything still unloadable here gets evicted and rebuilt
            if so_path.exists():
                try:
                    lib = ctypes.CDLL(str(so_path))
                    _note("disk_hit")
                except OSError:
                    try:
                        so_path.unlink()
                    except OSError:
                        pass
                    lib = None
            if lib is None:
                src_path = root / f"{key}.c"
                tmp_src = root / f"{key}.{os.getpid()}.tmp.c"
                tmp_so = root / f"{key}.{os.getpid()}.tmp.so"
                try:
                    tmp_src.write_text(source)
                    _compile(toolchain, tmp_src, tmp_so)
                    so_sha = hashlib.sha256(
                        tmp_so.read_bytes()).hexdigest()
                    os.replace(tmp_src, src_path)
                    os.replace(tmp_so, so_path)
                finally:
                    for tmp in (tmp_src, tmp_so):
                        try:
                            tmp.unlink()
                        except OSError:
                            pass
                meta = {"signature": toolchain.signature,
                        "cc": toolchain.cc,
                        "version": toolchain.version,
                        "flags": list(CFLAGS),
                        # lets `repro store verify` detect bit-rot in
                        # the installed binary itself
                        "so_sha256": so_sha}
                tmp_meta = root / f"{key}.{os.getpid()}.tmp.json"
                tmp_meta.write_text(json.dumps(meta, sort_keys=True))
                os.replace(tmp_meta, root / f"{key}.json")
                lib = ctypes.CDLL(str(so_path))
    _MODULE_CACHE[key] = lib
    return lib


def kernel_cache_report(root: Optional[Path] = None) -> Dict[str, object]:
    """What ``repro store stats`` shows for the kernels directory."""
    directory = kernels_dir(root)
    tc = find_toolchain()
    current = tc.signature if tc else None
    count = 0
    size = 0
    signatures: Dict[str, int] = {}
    stale = 0
    if directory.is_dir():
        for so in sorted(directory.glob("*.so")):
            if ".tmp." in so.name:
                continue
            count += 1
            for suffix in (".so", ".c", ".json"):
                path = so.with_suffix(suffix)
                try:
                    size += path.stat().st_size
                except OSError:
                    pass
            sig = "unknown"
            meta = so.with_suffix(".json")
            try:
                sig = json.loads(meta.read_text()).get("signature",
                                                       "unknown")
            except (OSError, ValueError):
                pass
            signatures[sig] = signatures.get(sig, 0) + 1
            if current is not None and sig != current:
                stale += 1
    return {"path": str(directory), "kernels": count, "bytes": size,
            "signatures": signatures, "toolchain": current,
            "stale": stale}


def kernel_cache_gc(root: Optional[Path] = None) -> Dict[str, int]:
    """Drop kernels whose toolchain signature no longer matches.

    Without a discoverable toolchain nothing is deleted — there is no
    "current" signature to compare against.
    """
    directory = kernels_dir(root)
    tc = find_toolchain()
    removed = 0
    kept = 0
    reclaimed = 0
    if tc is None or not directory.is_dir():
        report = kernel_cache_report(root)
        return {"removed": 0, "kept": int(report["kernels"]),
                "reclaimed_bytes": 0}
    from ..storage.local import exclusive_lock
    for so in sorted(directory.glob("*.so")):
        if ".tmp." in so.name:
            continue
        sig = None
        try:
            sig = json.loads(so.with_suffix(".json").read_text()
                             ).get("signature")
        except (OSError, ValueError):
            pass
        if sig == tc.signature:
            kept += 1
            continue
        with exclusive_lock(so.with_suffix(".lock")):
            for suffix in (".so", ".c", ".json"):
                path = so.with_suffix(suffix)
                try:
                    reclaimed += path.stat().st_size
                    path.unlink()
                except OSError:
                    pass
        try:
            so.with_suffix(".lock").unlink()
        except OSError:
            pass
        removed += 1
    return {"removed": removed, "kept": kept,
            "reclaimed_bytes": reclaimed}


# ----------------------------------------------------------------------
# execution context
# ----------------------------------------------------------------------
def _c_ready(arr: Optional[np.ndarray]) -> bool:
    return (arr is not None and arr.dtype == np.float64
            and arr.flags["C_CONTIGUOUS"])


def _ptr(arr: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(arr.ctypes.data)


class NativeContext:
    """Compiled kernels for one program, driven by the vectorized loop."""

    def __init__(self, program: Program, module: KernelModule,
                 lib: Optional[ctypes.CDLL]) -> None:
        self.program = program
        self.module = module
        self.kernels: Dict[int, Tuple[object, StatementKernel]] = {}
        self.whole = None
        if lib is not None:
            for spec in module.statements:
                fn = getattr(lib, spec.func)
                fn.restype = None
                self.kernels[spec.si] = (fn, spec)
            if module.has_whole:
                self.whole = getattr(lib, "run")
                self.whole.restype = None

    # -- whole-nest path ------------------------------------------------
    def try_whole(self, program: Program, params: Mapping[str, int],
                  storage: Mapping[str, np.ndarray], states,
                  coverage) -> Optional[int]:
        """Run the entire program as one compiled nest, or refuse.

        Preconditions checked here (not at emit time): every statement
        state is clean — guards evaluated, every executed write/read
        proven in bounds — and every referenced array is a C-contiguous
        float64 of exactly its declared shape, so C pointer arithmetic
        agrees with the row-major linearization the driver validated.
        """
        if self.whole is None:
            return None
        for state in states:
            if state.dirty:
                return None
        arrays: List[np.ndarray] = []
        for decl in self.program.arrays:
            arr = storage.get(decl.name)
            if arr is None or not _c_ready(arr):
                return None
            if arr.shape != decl.shape(params):
                return None
            arrays.append(arr)
        pvec = np.asarray(
            [int(params[name]) for name in self.module.param_names
             if name in params], dtype=np.int64)
        if len(pvec) != len(self.module.param_names):
            return None
        aptrs = (ctypes.c_void_p * len(arrays))(
            *[arr.ctypes.data for arr in arrays])
        self.whole(_ptr(pvec) if len(pvec) else
                   ctypes.c_void_p(None), aptrs)
        executed = 0
        for state in states:
            if coverage is not None and state.pending:
                _record_pending(state, coverage, 0, len(state.points),
                                len(state.epos))
            executed += len(state.epos)
        return executed

    # -- span path ------------------------------------------------------
    def run_span(self, si: int, state, ea: int, eb: int,
                 storage: Mapping[str, np.ndarray],
                 params: Mapping[str, int]) -> Optional[int]:
        """Execute executed-instance span ``[ea, eb)`` of statement ``si``.

        The span is a run of consecutive instances in global schedule
        order; the kernel walks it sequentially, so results match the
        reference interpreter exactly — including loop-carried
        dependences within the run.
        """
        entry = self.kernels.get(si)
        if entry is None:
            return None
        prep = state.native_prep
        if prep is None:
            prep = self._prepare_span(state, entry[1], storage, params)
            state.native_prep = prep
        if prep is False:
            return None
        fn = entry[0]
        fn(ctypes.c_longlong(ea), ctypes.c_longlong(eb), *prep[0])
        return int(eb - ea)

    def _prepare_span(self, state, spec: StatementKernel, storage,
                      params):
        """Precompute the kernel's argument columns for this execute.

        Everything address-shaped is computed in NumPy — linear write
        indices (already validated in bounds by the driver), linear read
        indices per RHS reference, and float64 columns for inline
        iterator expressions — so the C side does zero index arithmetic.
        Returns ``False`` (cached) when the storage layout disqualifies
        the statement; the vectorized path then covers it.
        """
        try:
            warr = storage[spec.write_array]
            if not _c_ready(warr):
                return False
            wlin = np.ascontiguousarray(state.wlin)
            args: List[object] = [_ptr(wlin), _ptr(warr)]
            keep: List[object] = [wlin, warr]
            for k, name in enumerate(spec.read_arrays):
                rarr = storage[name]
                if not _c_ready(rarr):
                    return False
                rlin = np.ascontiguousarray(
                    _linear(state.rcols[k], rarr.shape))
                args.append(_ptr(rlin))
                args.append(_ptr(rarr))
                keep.append(rlin)
                keep.append(rarr)
            length = len(state.epos)
            for aff in spec.iter_affines:
                col = np.ascontiguousarray(
                    affine_column(aff, state.cols, params,
                                  length).astype(np.float64))
                args.append(_ptr(col))
                keep.append(col)
            return (tuple(args), keep)
        except Exception:
            return False


def _clear_caches() -> None:
    """Test hook: forget loaded libraries and contexts (not the disk).

    Also abandons the ``REPRO_NO_CACHE`` scratch directory, so builds
    that bypassed the persistent cache are forgotten too — without
    this, a kernel compiled under ``REPRO_NO_CACHE`` earlier in the
    process would satisfy a later "must compile" expectation.
    """
    global _TMPDIR
    _MODULE_CACHE.clear()
    _CONTEXT_CACHE.clear()
    if _TMPDIR is not None:
        shutil.rmtree(_TMPDIR, ignore_errors=True)
        _TMPDIR = None


def native_context(program: Program) -> Optional[NativeContext]:
    """Build (or recall) the compiled context for ``program``.

    Returns ``None`` — after a single warning — when no toolchain is
    discovered, and on compile failure; the caller then runs the plain
    vectorized path, which is bit-identical by contract.
    """
    toolchain = find_toolchain()
    if toolchain is None:
        _warn_unavailable()
        return None
    key = (program.fingerprint(), toolchain.signature)
    if key in _CONTEXT_CACHE:
        return _CONTEXT_CACHE[key]
    if len(_CONTEXT_CACHE) > 512:
        _CONTEXT_CACHE.clear()
    module = emit_module(program)
    context: Optional[NativeContext] = None
    if module.statements or module.has_whole:
        try:
            lib = load_module(module.source, toolchain)
            context = NativeContext(program, module, lib)
        except NativeCompileError as exc:
            warnings.warn(
                f"REPRO_ENGINE=native: kernel build failed for "
                f"{program.name} ({exc}); using the vectorized engine "
                "for this program", RuntimeWarning, stacklevel=3)
            context = None
    _CONTEXT_CACHE[key] = context
    return context
