"""Per-statement kernel compilation for the vectorized engine.

The reference interpreter re-walks each statement's guard, subscript and
RHS expression trees once per instance.  This module lowers every
statement to generated Python source, compiled once per program
fingerprint and cached:

* a **scalar step** — one function per statement that executes a single
  instance with exactly the reference semantics: same guard/coverage
  order, same bounds checks (via the shared ``_check_bounds``), same
  error classes and messages, same arithmetic tree shape (so results are
  bit-identical);
* a **vector kernel** — one function per statement that evaluates the RHS
  for a whole batch of instances as NumPy array expressions over
  pre-gathered read columns.

Vectorization is *refused* at compile time whenever NumPy cannot
reproduce the scalar semantics bit-for-bit or structurally: ``exp`` calls
(NumPy's SIMD ``exp`` differs from ``math.exp`` in the last ulp — the
scalar reference wins), references whose rank disagrees with the array
declaration (the reference's partial-indexing/IndexError behaviour is
easier to reproduce one instance at a time), and unknown arrays or
functions.  Such statements run on the scalar step instead; results stay
identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ir.affine import Affine
from ..ir.expr import (Assignment, Bin, Call, Const, Expr, IterExpr, Neg,
                       Ref, Scalar, _FUNCS)
from ..ir.program import Program
from .instances import affine_column
from .interpreter import RuntimeExecutionError, _check_bounds

#: funcs whose NumPy lowering is bit-identical to the scalar ``_FUNCS``
#: (sqrt is correctly rounded on both sides; fabs/pow2 are exact) —
#: ``exp`` is deliberately absent
_VECTOR_FUNCS = {
    "sqrt": "np.sqrt(np.abs({0}))",
    "fabs": "np.abs({0})",
    "pow2": "_pow2({0})",
}


def _sdiv(a, b):
    """The interpreter's guarded scalar division."""
    return a / b if b != 0 else 0.0


def _vdiv(a, b):
    """Elementwise ``a / b if b != 0 else 0.0`` (bit-identical lanes)."""
    b = np.asarray(b)
    if b.ndim == 0:
        return a / b if b != 0 else np.zeros_like(np.asarray(a, dtype=float))
    out = np.zeros(np.broadcast(a, b).shape, dtype=np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        np.divide(a, b, out=out, where=(b != 0))
    return out


def _pow2(x):
    return x * x


def _as_batch(value, n: int) -> np.ndarray:
    """Materialise a kernel result as a length-``n`` float64 vector."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.shape == (n,):
        return arr
    return np.broadcast_to(arr, (n,))


# ----------------------------------------------------------------------
# Source generation helpers
# ----------------------------------------------------------------------
def _affine_scalar_src(expr: Affine) -> str:
    """Affine expression as Python source over an ``env`` dict of ints."""
    parts = [str(expr.const)]
    for name, coeff in expr.terms:
        parts.append(f"{coeff}*env[{name!r}]")
    return "(" + " + ".join(parts) + ")"


class _VectorUnsupported(Exception):
    """RHS contains a construct the vector lowering must not touch."""


def _scalar_expr_src(expr: Expr, read_slots: Dict[int, str]) -> str:
    """RHS tree as scalar Python source (reads resolve to index locals)."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Scalar):
        return f"scalars[{expr.name!r}]"
    if isinstance(expr, IterExpr):
        return f"float({_affine_scalar_src(expr.expr)})"
    if isinstance(expr, Ref):
        slot = read_slots[id(expr)]
        return f"storage[{expr.array!r}][{slot}]"
    if isinstance(expr, Bin):
        lhs = _scalar_expr_src(expr.lhs, read_slots)
        rhs = _scalar_expr_src(expr.rhs, read_slots)
        if expr.op == "/":
            return f"_sdiv({lhs}, {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, Neg):
        return f"(-{_scalar_expr_src(expr.operand, read_slots)})"
    if isinstance(expr, Call):
        return (f"_FUNCS[{expr.func!r}]"
                f"({_scalar_expr_src(expr.arg, read_slots)})")
    raise TypeError(f"unknown expression node {type(expr).__name__}")


def _vector_expr_src(expr: Expr, read_slots: Dict[int, str],
                     affines: List[Affine]) -> str:
    """RHS tree as NumPy source over gathered read columns."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Scalar):
        return f"scalars[{expr.name!r}]"
    if isinstance(expr, IterExpr):
        affines.append(expr.expr)
        return (f"_col(_AFF[{len(affines) - 1}], cols, params, _n)"
                f".astype(np.float64)")
    if isinstance(expr, Ref):
        slot = read_slots[id(expr)]
        return f"storage[{expr.array!r}][{slot}]"
    if isinstance(expr, Bin):
        lhs = _vector_expr_src(expr.lhs, read_slots, affines)
        rhs = _vector_expr_src(expr.rhs, read_slots, affines)
        if expr.op == "/":
            return f"_vdiv({lhs}, {rhs})"
        return f"({lhs} {expr.op} {rhs})"
    if isinstance(expr, Neg):
        return f"(-{_vector_expr_src(expr.operand, read_slots, affines)})"
    if isinstance(expr, Call):
        template = _VECTOR_FUNCS.get(expr.func)
        if template is None:
            raise _VectorUnsupported(expr.func)
        return template.format(
            _vector_expr_src(expr.arg, read_slots, affines))
    raise TypeError(f"unknown expression node {type(expr).__name__}")


# ----------------------------------------------------------------------
# Compiled statement / program
# ----------------------------------------------------------------------
@dataclass
class CompiledStatement:
    """Everything the engines need to run one statement fast."""

    name: str
    op: str
    iter_names: Tuple[str, ...]
    guards: Tuple[Affine, ...]
    write_ref: Ref
    read_refs: Tuple[Ref, ...]        # RHS reads in tree order (no lhs)
    scalar_step: Callable
    vector_values: Optional[Callable]  # None => scalar path only
    vector_ok: bool
    pure_input: bool                  # RHS reads no array any stmt writes


@dataclass
class CompiledProgram:
    fingerprint: str
    statements: Tuple[CompiledStatement, ...]


def _compile_scalar_step(stmt, body: Assignment) -> Callable:
    """Generate the per-instance step mirroring ``_run_items`` exactly."""
    lines: List[str] = ["def _step(env, storage, shapes, scalars, "
                        "coverage, _prog):"]

    def emit(text: str, indent: int = 1) -> None:
        lines.append("    " * indent + text)

    for gi, guard in enumerate(stmt.guards):
        emit(f"_taken = {_affine_scalar_src(guard)} >= 0")
        emit("if coverage is not None:")
        emit(f"    coverage.record({stmt.name!r}, {gi}, _taken)")
        emit("if not _taken:")
        emit("    return False")
    emit("if coverage is not None:")
    emit(f"    coverage.record({stmt.name!r}, -1, True)")

    lhs = body.lhs
    widx = ", ".join(_affine_scalar_src(ix) for ix in lhs.indices)
    emit(f"_w = ({widx}{',' if len(lhs.indices) == 1 else ''})")
    emit(f"_shape = shapes.get({lhs.array!r})")
    emit("if _shape is None:")
    emit(f"    raise RuntimeExecutionError(")
    emit(f"        f\"{{_prog}}/{stmt.name}: write to unknown array \"")
    emit(f"        f\"'{lhs.array}'\")")
    emit(f"_check_bounds(_prog, {stmt.name!r}, {lhs.array!r}, _w, _shape)")

    read_slots: Dict[int, str] = {}
    for k, ref in enumerate(body.rhs.reads()):
        slot = f"_r{k}"
        read_slots[id(ref)] = slot
        ridx = ", ".join(_affine_scalar_src(ix) for ix in ref.indices)
        emit(f"{slot} = ({ridx}{',' if len(ref.indices) == 1 else ''})")
        emit(f"_rshape = shapes.get({ref.array!r})")
        emit("if _rshape is None:")
        emit(f"    raise RuntimeExecutionError(")
        emit(f"        f\"{{_prog}}/{stmt.name}: read of unknown array \"")
        emit(f"        f\"'{ref.array}'\")")
        emit(f"_check_bounds(_prog, {stmt.name!r}, {ref.array!r}, "
             f"{slot}, _rshape)")

    emit("try:")
    emit(f"    _value = {_scalar_expr_src(body.rhs, read_slots)}")
    emit("except (KeyError, IndexError) as exc:")
    emit("    raise RuntimeExecutionError(")
    emit(f"        f\"{{_prog}}/{stmt.name}: {{exc}}\") from exc")
    emit(f"_arr = storage[{lhs.array!r}]")
    if body.op == "=":
        emit("_arr[_w] = _value")
    elif body.op in ("+=", "-=", "*="):
        emit(f"_arr[_w] {body.op} _value")
    else:  # "/="
        emit("_arr[_w] = _arr[_w] / _value if _value != 0 else 0.0")
    emit("return True")

    namespace = {"RuntimeExecutionError": RuntimeExecutionError,
                 "_check_bounds": _check_bounds, "_FUNCS": _FUNCS,
                 "_sdiv": _sdiv}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from the IR
    return namespace["_step"]


def _compile_vector_values(stmt, body: Assignment) -> Optional[Callable]:
    """Generate the batched RHS evaluator, or None when unsupported."""
    read_slots: Dict[int, str] = {}
    for k, ref in enumerate(body.rhs.reads()):
        read_slots[id(ref)] = f"ridx[{k}]"
    affines: List[Affine] = []
    try:
        src = _vector_expr_src(body.rhs, read_slots, affines)
    except _VectorUnsupported:
        return None
    lines = ["def _values(storage, scalars, cols, params, ridx, _n):",
             f"    return _as_batch({src}, _n)"]
    namespace = {"np": np, "_col": affine_column, "_vdiv": _vdiv,
                 "_pow2": _pow2, "_as_batch": _as_batch,
                 "_AFF": tuple(affines)}
    exec("\n".join(lines), namespace)  # noqa: S102 - generated from the IR
    return namespace["_values"]


def _vectorizable(program: Program, stmt) -> bool:
    """Structural preconditions for the batched path on one statement."""
    ranks = {decl.name: decl.rank for decl in program.arrays}
    refs = [stmt.body.lhs] + list(stmt.body.rhs.reads())
    for ref in refs:
        rank = ranks.get(ref.array)
        if rank is None or rank != len(ref.indices) or rank == 0:
            return False
    return True


def compile_statement(program: Program, stmt) -> CompiledStatement:
    body = stmt.body
    vector_ok = _vectorizable(program, stmt)
    vector_values = _compile_vector_values(stmt, body) if vector_ok else None
    if vector_values is None:
        vector_ok = False
    written = {s.body.lhs.array for s in program.statements}
    pure_input = all(ref.array not in written for ref in body.rhs.reads())
    return CompiledStatement(
        name=stmt.name,
        op=body.op,
        iter_names=stmt.domain.iterator_names,
        guards=stmt.guards,
        write_ref=body.lhs,
        read_refs=tuple(body.rhs.reads()),
        scalar_step=_compile_scalar_step(stmt, body),
        vector_values=vector_values,
        vector_ok=vector_ok,
        pure_input=pure_input,
    )


_COMPILE_CACHE: Dict[str, CompiledProgram] = {}


def compile_program(program: Program) -> CompiledProgram:
    """Memoized lowering of a program (keyed by content fingerprint)."""
    key = program.fingerprint()
    cached = _COMPILE_CACHE.get(key)
    if cached is None:
        cached = CompiledProgram(
            fingerprint=key,
            statements=tuple(compile_statement(program, stmt)
                             for stmt in program.statements))
        if len(_COMPILE_CACHE) > 2048:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[key] = cached
    return cached
