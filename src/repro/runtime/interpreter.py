"""Schedule-ordered SCoP interpreter.

Semantics: enumerate every statement instance (its domain points), map each
through the statement's (aligned) schedule to an integer vector, sort all
instances lexicographically and execute assignments in that order.  This
executes *any* schedule — including illegal ones an LLM persona may emit —
exactly as written, so semantic errors genuinely corrupt outputs and are
caught by differential testing rather than assumed away.

The interpreter is deliberately strict: out-of-bounds subscripts raise
:class:`RuntimeExecutionError` (the paper's RE category) instead of
wrapping, and an instance budget bounds runaway candidates.

Three engines share these semantics (selected by ``REPRO_ENGINE``):

* ``vectorized`` (default) — compiled per-statement kernels plus the
  block executor of :mod:`repro.runtime.vectorized`; bit-identical to
  the reference on outputs, checksums, coverage, instance counts and
  raised error classes, but executes dependence-free runs of instances
  as single NumPy operations;
* ``native`` — the vectorized driver with eligible work upgraded to
  real compiled C kernels (:mod:`repro.runtime.native`): IR → C →
  ``cc`` → ctypes, with a persistent on-disk kernel cache.  Statements
  without a provably exact lowering run on the vectorized path; with no
  C toolchain the whole tier degrades to ``vectorized`` after one
  warning.  Results stay bit-identical either way;
* ``reference`` — the original strict tree-walking interpreter below,
  kept as the executable specification the equivalence suite pins the
  other engines against.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..ir.program import Program
from .data import Storage, allocate, checksum


class RuntimeExecutionError(RuntimeError):
    """Runtime failure of a candidate (RE): bad subscript, empty bound..."""


class BudgetExceededError(RuntimeError):
    """Instance budget exhausted — treated as execution timeout (ET)."""


@dataclass
class BranchCoverage:
    """Branch outcomes observed while executing (the gcov substitute).

    Tracked branches: every guard of every statement (two outcomes each)
    plus one "statement executed" branch per statement.  Coverage saturates
    quickly on most kernels, which is what lets the tester stop early
    (§4.3: 500+ inputs reduced to ~25).
    """

    outcomes: Set[Tuple[str, int, bool]] = field(default_factory=set)
    possible: Set[Tuple[str, int]] = field(default_factory=set)
    _registered: Set[str] = field(default_factory=set, repr=False)

    def register_program(self, program: Program) -> None:
        """Register a program's branches (idempotent, O(1) on repeat).

        ``execute`` calls this on every run; repeated runs of the same
        program — the differential tester replays each candidate over
        dozens of inputs — are recognised by content fingerprint and
        skipped instead of re-adding every branch to the set.
        """
        key = program.fingerprint()
        if key in self._registered:
            return
        self._registered.add(key)
        for stmt in program.statements:
            self.possible.add((stmt.name, -1))
            for gi in range(len(stmt.guards)):
                self.possible.add((stmt.name, gi))

    def record(self, stmt: str, branch: int, taken: bool) -> None:
        self.outcomes.add((stmt, branch, taken))

    def ratio(self) -> float:
        if not self.possible:
            return 1.0
        total = 0
        covered = 0
        for stmt, branch in self.possible:
            if branch == -1:
                total += 1
                covered += (stmt, -1, True) in self.outcomes
            else:
                total += 2
                covered += (stmt, branch, True) in self.outcomes
                covered += (stmt, branch, False) in self.outcomes
        return covered / total


@dataclass(frozen=True)
class RunResult:
    """Outputs of one interpreted run."""

    outputs: Dict[str, np.ndarray]
    checksum: float
    instances: int


def _budget_error(program: Program, budget: int) -> BudgetExceededError:
    return BudgetExceededError(
        f"{program.name}: more than {budget} statement instances")


def _instances(program: Program, params: Mapping[str, int],
               budget: int) -> List[Tuple[Tuple[int, ...], int, Dict[str, int]]]:
    """Collect (schedule_key, stmt_index, env) for every instance.

    Enumeration and global ordering are shared with the dependence
    concretizer and the vectorized engine (``runtime.instances``); only
    the per-instance execution below stays scalar in this engine.
    """
    from .instances import instance_list

    return instance_list(program, params, budget,
                         lambda b: _budget_error(program, b))


def engine_name() -> str:
    """The active execution engine (``REPRO_ENGINE``, default vectorized)."""
    engine = os.environ.get("REPRO_ENGINE", "vectorized")
    if engine not in ("vectorized", "native", "reference"):
        raise ValueError(
            f"unknown REPRO_ENGINE {engine!r}; "
            f"choose 'vectorized', 'native' or 'reference'")
    return engine


@contextmanager
def engine_override(engine: Optional[str]):
    """Temporarily select an execution engine (``None`` = leave as-is).

    The single save/restore point for ``REPRO_ENGINE`` — ``repro perf``
    and the engine-equivalence tests flip engines through this instead of
    hand-rolling environment handling.
    """
    before = os.environ.get("REPRO_ENGINE")
    if engine is not None:
        os.environ["REPRO_ENGINE"] = engine
    try:
        yield
    finally:
        if before is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = before


def execute(program: Program, params: Mapping[str, int],
            storage: Storage,
            coverage: Optional[BranchCoverage] = None,
            budget: int = 2_000_000) -> int:
    """Execute the program in schedule order, mutating ``storage``.

    Returns the number of instances that actually ran (guards included).
    """
    if coverage is not None:
        coverage.register_program(program)
    # synthesized candidates may blow up numerically before the tester
    # rejects them; the overflow itself is data, not a fault
    with np.errstate(over="ignore", invalid="ignore"):
        engine = engine_name()
        if engine in ("vectorized", "native"):
            from .vectorized import execute_vectorized

            native = None
            if engine == "native":
                from .native import native_context

                native = native_context(program)
            return execute_vectorized(
                program, params, storage, coverage, budget,
                lambda b: _budget_error(program, b), native=native)
        scalars = program.scalar_values()
        items = _instances(program, params, budget)
        shapes = {name: arr.shape for name, arr in storage.items()}
        return _run_items(program, params, storage, coverage, items,
                          scalars, shapes)


def _run_items(program, params, storage, coverage, items, scalars,
               shapes) -> int:
    executed = 0
    for _key, si, point in items:
        stmt = program.statements[si]
        env = dict(params)
        env.update(point)
        ok = True
        for gi, guard in enumerate(stmt.guards):
            taken = guard.evaluate(env) >= 0
            if coverage is not None:
                coverage.record(stmt.name, gi, taken)
            if not taken:
                ok = False
                break
        if not ok:
            continue
        if coverage is not None:
            coverage.record(stmt.name, -1, True)
        lhs = stmt.body.lhs
        idx = lhs.index_values(env)
        shape = shapes.get(lhs.array)
        if shape is None:
            raise RuntimeExecutionError(
                f"{program.name}/{stmt.name}: write to unknown array "
                f"'{lhs.array}'")
        _check_bounds(program.name, stmt.name, lhs.array, idx, shape)
        for ref in stmt.body.rhs.reads():
            rshape = shapes.get(ref.array)
            if rshape is None:
                raise RuntimeExecutionError(
                    f"{program.name}/{stmt.name}: read of unknown array "
                    f"'{ref.array}'")
            _check_bounds(program.name, stmt.name, ref.array,
                          ref.index_values(env), rshape)
        try:
            value = stmt.body.rhs.evaluate(env, scalars, storage)
        except (KeyError, IndexError) as exc:
            raise RuntimeExecutionError(
                f"{program.name}/{stmt.name}: {exc}") from exc
        arr = storage[lhs.array]
        if stmt.body.op == "=":
            arr[idx] = value
        elif stmt.body.op == "+=":
            arr[idx] += value
        elif stmt.body.op == "-=":
            arr[idx] -= value
        elif stmt.body.op == "*=":
            arr[idx] *= value
        elif stmt.body.op == "/=":
            arr[idx] = arr[idx] / value if value != 0 else 0.0
        executed += 1
    return executed


def _check_bounds(prog: str, stmt: str, array: str,
                  idx: Tuple[int, ...], shape: Tuple[int, ...]) -> None:
    for value, size in zip(idx, shape):
        if value < 0 or value >= size:
            raise RuntimeExecutionError(
                f"{prog}/{stmt}: index {idx} out of bounds for "
                f"'{array}' with shape {shape}")


def run(program: Program, params: Mapping[str, int], variant: int = 0,
        storage: Optional[Storage] = None,
        coverage: Optional[BranchCoverage] = None,
        budget: int = 2_000_000) -> RunResult:
    """Allocate (or reuse) inputs, execute, and collect output arrays."""
    if storage is None:
        storage = allocate(program, params, variant)
    instances = execute(program, params, storage, coverage, budget)
    outputs = {name: storage[name].copy() for name in program.outputs}
    return RunResult(outputs=outputs,
                     checksum=checksum(storage, program.outputs),
                     instances=instances)
