"""Execution substrate: deterministic inputs + schedule-ordered interpreter."""

from .data import Storage, allocate, checksum, clone_storage, init_array
from .interpreter import (BranchCoverage, BudgetExceededError, RunResult,
                          RuntimeExecutionError, execute, run)

__all__ = [
    "Storage", "allocate", "checksum", "clone_storage", "init_array",
    "BranchCoverage", "BudgetExceededError", "RunResult",
    "RuntimeExecutionError", "execute", "run",
]
