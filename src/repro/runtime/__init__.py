"""Execution substrate: deterministic inputs + schedule-ordered engines.

Two engines share one strict semantics (pick with ``REPRO_ENGINE``):
the vectorized block executor (default) and the reference tree-walking
interpreter.  ``runtime.instances`` holds the batched enumeration both
build on; ``runtime.compile`` the per-statement kernel cache.
"""

from .data import Storage, allocate, checksum, clone_storage, init_array
from .interpreter import (BranchCoverage, BudgetExceededError, RunResult,
                          RuntimeExecutionError, engine_name,
                          engine_override, execute, run)

__all__ = [
    "Storage", "allocate", "checksum", "clone_storage", "init_array",
    "BranchCoverage", "BudgetExceededError", "RunResult",
    "RuntimeExecutionError", "engine_name", "engine_override", "execute",
    "run",
]
