"""Batched statement-instance enumeration.

Enumerating every statement instance, mapping it through the statement's
schedule and sorting the result globally is the common prologue of the
interpreter, the dependence concretizer and the trace simulator.  The seed
repo did it three times over with per-instance Python loops: one dict copy
and one recursive affine walk per instance, then a sort of millions of
Python tuples.  This module does it once, in bulk:

* :func:`domain_points` enumerates a domain level by level into one
  ``(points, depth)`` int64 array — bounds that reference outer iterators
  are evaluated as vectorized affine maps over the partial point matrix;
* :func:`sorted_instances` evaluates every statement's (aligned) schedule
  as a vectorized affine map and orders all instances with one
  ``np.lexsort`` (stable, so instances tying on the full schedule key and
  statement index keep source enumeration order — exactly what the Python
  ``list.sort`` on ``(key, si)`` tuples produced);
* :func:`instance_list` adapts the batch back to the legacy
  ``(key tuple, statement index, point dict)`` list for the scalar
  consumers (the reference interpreter and the dependence tracker).

Budgets are enforced during enumeration, like the scalar loops enforced
them: the caller supplies the exception to raise when the instance count
exceeds the budget, so the interpreter can raise
:class:`~repro.runtime.interpreter.BudgetExceededError` and the dependence
analysis its ``RuntimeError`` with unchanged messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

#: ``affine_column`` moved to ``ir.affine`` (shared with the analysis
#: engines); re-exported here for the runtime-side consumers
from ..ir.affine import affine_column  # noqa: F401
from ..ir.domain import Domain
from ..ir.program import Program
from ..ir.schedule import dim_column

#: column environment: iterator name -> int64 column vector
Columns = Dict[str, np.ndarray]


def domain_points(domain: Domain, params: Mapping[str, int],
                  limit: Optional[int] = None,
                  exceeded: Optional[Callable[[], Exception]] = None
                  ) -> np.ndarray:
    """All points of ``domain`` as an ``(n, depth)`` int64 array.

    Rows appear in source (nested-loop) order, matching
    ``Domain.enumerate``.  When ``limit`` is given and the point count
    would exceed it, raises ``exceeded()``; intermediate levels that grow
    past the limit defer to the scalar enumerator, which counts complete
    points exactly (an outer level larger than the budget can still yield
    few complete points when inner ranges are empty).
    """
    points = np.zeros((1, 0), dtype=np.int64)
    columns: Columns = {}
    for level, spec in enumerate(domain.iters):
        n = len(points)
        lo = affine_column(spec.lowers[0], columns, params, n)
        for bound in spec.lowers[1:]:
            np.maximum(lo, affine_column(bound, columns, params, n), out=lo)
        hi = affine_column(spec.uppers[0], columns, params, n)
        for bound in spec.uppers[1:]:
            np.minimum(hi, affine_column(bound, columns, params, n), out=hi)
        counts = np.maximum(hi - lo + 1, 0)
        total = int(counts.sum())
        if limit is not None and total > limit:
            if level == len(domain.iters) - 1:
                raise exceeded()
            return _scalar_points(domain, params, limit, exceeded)
        reps = np.repeat(np.arange(n), counts)
        starts = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        values = (np.arange(total, dtype=np.int64)
                  - np.repeat(starts, counts) + np.repeat(lo, counts))
        points = np.column_stack([points[reps], values])
        columns = {s.name: points[:, i]
                   for i, s in enumerate(domain.iters[:level + 1])}
    return points


def _scalar_points(domain: Domain, params: Mapping[str, int],
                   limit: int, exceeded: Callable[[], Exception]
                   ) -> np.ndarray:
    """Fallback enumeration with exact per-point budget accounting."""
    names = domain.iterator_names
    rows: List[Tuple[int, ...]] = []
    for point in domain.enumerate(params):
        if len(rows) >= limit:
            raise exceeded()
        rows.append(tuple(point[name] for name in names))
    if not rows:
        return np.zeros((0, len(names)), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


@dataclass(frozen=True)
class InstanceBatch:
    """Every instance of a program, sorted into global execution order.

    ``points[si]`` holds statement ``si``'s domain points in source order;
    the flat ``si`` / ``row`` vectors describe the global schedule order:
    position ``g`` executes instance ``points[si[g]][row[g]]``.  ``keys``
    are the evaluated (aligned) schedule vectors in the same global order.
    """

    points: Tuple[np.ndarray, ...]
    si: np.ndarray
    row: np.ndarray
    keys: np.ndarray

    def __len__(self) -> int:
        return len(self.si)

    def statement_order(self, si: int) -> np.ndarray:
        """Statement ``si``'s points gathered into global execution order."""
        return self.points[si][self.row[self.si == si]]

    def run_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Maximal same-statement runs as ``(starts, ends)`` index arrays."""
        n = len(self.si)
        if n == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        cuts = np.flatnonzero(np.diff(self.si)) + 1
        starts = np.concatenate(([0], cuts))
        ends = np.concatenate((cuts, [n]))
        return starts, ends


def guard_mask(program: Program, si: int, points: np.ndarray,
               params: Mapping[str, int]) -> np.ndarray:
    """Boolean mask of points whose guards all hold (vectorized)."""
    stmt = program.statements[si]
    n = len(points)
    mask = np.ones(n, dtype=bool)
    if not stmt.guards or n == 0:
        return mask
    columns = {name: points[:, d]
               for d, name in enumerate(stmt.domain.iterator_names)}
    for guard in stmt.guards:
        mask &= affine_column(guard, columns, params, n) >= 0
    return mask


def sorted_instances(program: Program, params: Mapping[str, int],
                     budget: int,
                     exceeded: Callable[[int], Exception],
                     honor_guards: bool = False) -> InstanceBatch:
    """Enumerate, schedule and globally order every statement instance.

    ``exceeded`` receives the budget and must build the exception to raise
    when enumeration passes it (counted per enumerated domain point,
    before guard filtering — the same accounting as the scalar loops).
    With ``honor_guards`` instances whose guards fail are dropped before
    sorting, as the dependence concretizer requires.
    """
    schedules = program.aligned_schedules()
    width = max((len(s.dims) for s in schedules), default=0)
    per_points: List[np.ndarray] = []
    per_keys: List[np.ndarray] = []
    per_si: List[np.ndarray] = []
    per_row: List[np.ndarray] = []
    count = 0
    for si, stmt in enumerate(program.statements):
        remaining = budget - count

        def _exceed() -> Exception:
            return exceeded(budget)

        points = domain_points(stmt.domain, params, remaining, _exceed)
        count += len(points)
        rows = np.arange(len(points), dtype=np.int64)
        if honor_guards:
            mask = guard_mask(program, si, points, params)
            rows = rows[mask]
        kept = points[rows]
        columns = {name: kept[:, d]
                   for d, name in enumerate(stmt.domain.iterator_names)}
        keys = np.empty((len(kept), width), dtype=np.int64)
        for d, dim in enumerate(schedules[si].dims):
            keys[:, d] = dim_column(dim, columns, params, len(kept))
        per_points.append(points)
        per_keys.append(keys)
        per_si.append(np.full(len(kept), si, dtype=np.int64))
        per_row.append(rows)
    keys = (np.concatenate(per_keys) if per_keys
            else np.zeros((0, width), dtype=np.int64))
    si_vec = (np.concatenate(per_si) if per_si
              else np.zeros(0, dtype=np.int64))
    row_vec = (np.concatenate(per_row) if per_row
               else np.zeros(0, dtype=np.int64))
    # lexsort's last key is primary: schedule key dims outrank the
    # statement index, mirroring sort-by-(key, si); stability keeps
    # source enumeration order within full ties
    order = np.lexsort((si_vec,) + tuple(keys[:, d]
                                         for d in range(width - 1, -1, -1)))
    return InstanceBatch(points=tuple(per_points), si=si_vec[order],
                         row=row_vec[order], keys=keys[order])


def instance_list(program: Program, params: Mapping[str, int],
                  budget: int,
                  exceeded: Callable[[int], Exception],
                  honor_guards: bool = False
                  ) -> List[Tuple[Tuple[int, ...], int, Dict[str, int]]]:
    """The batch as the legacy ``(key, si, point)`` list, in global order.

    Point dicts hold Python ints (``tolist``), so downstream formatting
    and arithmetic behave exactly as with the scalar enumeration.
    """
    batch = sorted_instances(program, params, budget, exceeded,
                             honor_guards=honor_guards)
    names = [stmt.domain.iterator_names for stmt in program.statements]
    keys = batch.keys.tolist()
    si_vec = batch.si.tolist()
    rows = batch.row.tolist()
    point_rows = [pts.tolist() for pts in batch.points]
    items: List[Tuple[Tuple[int, ...], int, Dict[str, int]]] = []
    for g, si in enumerate(si_vec):
        items.append((tuple(keys[g]), si,
                      dict(zip(names[si], point_rows[si][rows[g]]))))
    return items
