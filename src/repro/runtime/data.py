"""Deterministic array initialisation (PolyBench-style init functions).

Each :class:`~repro.ir.program.ArrayDecl` carries an ``init`` kind; the
functions here turn a kind into concrete float64 contents.  A ``variant``
integer perturbs the pattern deterministically — the seed-input mutation
machinery (§4.3) builds its test inputs on top of these variants.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from ..ir.program import ArrayDecl, Program

Storage = Dict[str, np.ndarray]


def _index_grids(shape: Tuple[int, ...]) -> Tuple[np.ndarray, ...]:
    return np.indices(shape) if shape else ()


def init_array(decl: ArrayDecl, shape: Tuple[int, ...],
               variant: int = 0) -> np.ndarray:
    """Materialise one array according to its init kind."""
    if any(s <= 0 for s in shape):
        raise ValueError(f"array {decl.name} has empty shape {shape}")
    grids = _index_grids(shape)
    mix = np.zeros(shape, dtype=np.float64)
    for d, grid in enumerate(grids):
        mix = mix + (d + 2) * grid
    kind = decl.init
    if kind == "poly":
        data = ((mix + 3.0 * variant) % 13.0 + 1.0) / 13.0
    elif kind == "zeros":
        data = np.zeros(shape) + 0.01 * variant
    elif kind == "ones":
        data = np.ones(shape) + 0.01 * variant
    elif kind == "ramp":
        data = (mix + variant) / (mix.size + 1.0)
    elif kind == "alt":
        data = np.where(mix % 2 == 0, 1.0, -1.0) * (1.0 + 0.1 * variant)
    elif kind == "identity":
        data = np.zeros(shape)
        if len(shape) == 2:
            np.fill_diagonal(data, 1.0 + 0.01 * variant)
        else:
            data.flat[:: max(1, data.size // max(shape))] = 1.0
    else:  # pragma: no cover - guarded by ArrayDecl.__post_init__
        raise ValueError(f"unknown init kind {kind!r}")
    return data.astype(np.float64)


def allocate(program: Program, params: Mapping[str, int],
             variant: int = 0) -> Storage:
    """Allocate and initialise every array of a program."""
    storage: Storage = {}
    for decl in program.arrays:
        shape = decl.shape(params)
        storage[decl.name] = init_array(decl, shape, variant)
    return storage


def clone_storage(storage: Storage) -> Storage:
    return {name: arr.copy() for name, arr in storage.items()}


def checksum(storage: Storage, arrays: Tuple[str, ...]) -> float:
    """Order-stable checksum over selected arrays (the quick filter).

    Candidates that blow up numerically leave ``inf``/``nan`` behind;
    their checksum is data, not a fault.  Non-finite handling is
    explicit and deterministic: the dot products run under ``errstate``
    (no per-kernel ``RuntimeWarning`` spam from ``inf * finite`` terms),
    IEEE-754 propagation decides the result as before, and any NaN
    outcome is canonicalized to the positive quiet ``float("nan")`` so
    its textual form ("nan") is stable across platforms and runs.
    """
    total = 0.0
    with np.errstate(invalid="ignore", over="ignore"):
        for name in sorted(arrays):
            arr = storage[name]
            weights = np.arange(1, arr.size + 1, dtype=np.float64)
            total += float(np.dot(arr.ravel(), np.sin(weights)))
    if total != total:  # NaN: canonicalize sign/payload
        return float("nan")
    return total
