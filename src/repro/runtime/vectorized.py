"""Vectorized block executor (``REPRO_ENGINE=vectorized``, the default).

Executes the same instance stream as the reference interpreter —
identical global order, identical semantics, bit-identical results — but
in blocks.  After the batched enumeration sorts all instances, maximal
runs of consecutive instances from the *same statement* are executed as
single NumPy operations whenever the run provably carries no dependence
inside itself, checked at the concrete-index level:

* **scatter** — the run's write locations are pairwise distinct and no
  read location collides with a write location except element-identical
  reads of the written cell (the compound-assignment pattern): gather all
  operands, apply the statement op elementwise, scatter once;
* **reduction** — every instance writes the *same* cell with ``+=``,
  ``-=`` or ``*=`` and no RHS read touches it: fold the batched RHS
  values with ``np.add/subtract/multiply.accumulate``, which NumPy
  defines as a strict left fold — bit-identical to the sequential loop
  (verified by the equivalence suite);
* **grouped reduction** — the run writes several cells, each repeatedly
  (GEMM's ``k``/``j`` block), and no RHS read touches any written cell:
  a stable sort groups instances by cell preserving run order, and a
  masked per-step fold applies the operator column by column — every
  cell receives exactly the sequential left fold of its own updates;
* **scalar fallback** — anything else (dependence-carrying runs, tiny
  runs, statements the compile layer refused to vectorize, potential
  out-of-bounds accesses, unknown arrays) runs one instance at a time on
  the compiled scalar step, which reproduces the reference error classes,
  messages, coverage recording and partial-write state exactly.

Bounds are validated per statement with array-level min/max over the
executed instances; any potential violation demotes the whole statement
to the scalar path so the error surfaces on exactly the instance — and
after exactly the writes — the reference interpreter would produce.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

import numpy as np

from ..ir.program import Program
from .compile import CompiledStatement, compile_program
from .data import Storage
from .instances import InstanceBatch, affine_column, sorted_instances

#: runs shorter than this skip the NumPy mode checks entirely — per-call
#: overhead beats vector width at these sizes (results are identical
#: either way, so the constant is a pure tuning knob)
_MIN_VECTOR_RUN = 8

_ACCUMULATE = {"+=": np.add, "-=": np.subtract, "*=": np.multiply}


class _StatementState:
    """Per-statement execution plan derived once per ``execute`` call."""

    __slots__ = ("cs", "points", "cursor", "dirty", "exec_mask", "all_exec",
                 "epos", "wcols", "wlin", "rcols", "overlap", "cols",
                 "values", "vector_values", "injective", "guard_taken",
                 "pending", "src_rows", "native_prep")

    def __init__(self, cs: CompiledStatement) -> None:
        self.cs = cs
        self.cursor = 0
        self.dirty = False
        self.values: Optional[np.ndarray] = None
        self.src_rows: Optional[list] = None  # source-order rows (lazy)
        self.pending: Set[Tuple[int, bool]] = set()
        self.native_prep = None  # native tier's per-execute argument prep


def _linear(cols: Tuple[np.ndarray, ...],
            shape: Tuple[int, ...]) -> np.ndarray:
    """Row-major linear index of a multi-dim index column tuple."""
    out = np.zeros(len(cols[0]), dtype=np.int64)
    stride = 1
    for col, size in zip(reversed(cols), reversed(shape)):
        out += stride * col
        stride *= size
    return out


def _prepare(state: _StatementState, si: int,
             batch: InstanceBatch, params: Mapping[str, int],
             storage: Storage, shapes: Dict[str, Tuple[int, ...]],
             scalars: Dict[str, float],
             coverage_on: bool) -> None:
    """Precompute columns/masks; any trouble demotes to the scalar path."""
    cs = state.cs
    points = batch.statement_order(si)
    state.points = points
    n = len(points)
    columns = {name: points[:, d] for d, name in enumerate(cs.iter_names)}

    # guards: cumulative reached/taken masks drive both the executed set
    # and branch-coverage recording
    exec_mask = np.ones(n, dtype=bool)
    taken: List[np.ndarray] = []
    try:
        for guard in cs.guards:
            t = affine_column(guard, columns, params, n) >= 0
            taken.append((exec_mask.copy(), t))
            exec_mask &= t
    except Exception:
        state.dirty = True
        return
    state.guard_taken = taken
    state.exec_mask = exec_mask
    state.epos = np.flatnonzero(exec_mask)
    state.all_exec = len(state.epos) == n
    if coverage_on:
        state.pending = {(gi, outcome) for gi in range(len(cs.guards))
                         for outcome in (True, False)}
        state.pending.add((-1, True))

    if not cs.vector_ok or len(state.epos) == 0:
        state.dirty = not cs.vector_ok
        return
    try:
        pts = points[state.exec_mask]
        cols = {name: pts[:, d] for d, name in enumerate(cs.iter_names)}
        state.cols = cols
        ne = len(pts)
        wshape = shapes.get(cs.write_ref.array)
        if wshape is None or len(wshape) != len(cs.write_ref.indices):
            state.dirty = True
            return
        wcols = tuple(affine_column(ix, cols, params, ne)
                      for ix in cs.write_ref.indices)
        if not _in_bounds(wcols, wshape):
            state.dirty = True
            return
        state.wcols = wcols
        state.wlin = _linear(wcols, wshape)
        state.injective = np.unique(state.wlin).size == len(state.wlin)
        rcols = []
        overlap = []  # linear read columns on the written array (or None)
        for ref in cs.read_refs:
            rshape = shapes.get(ref.array)
            if rshape is None or len(rshape) != len(ref.indices):
                state.dirty = True
                return
            cols_k = tuple(affine_column(ix, cols, params, ne)
                           for ix in ref.indices)
            if not _in_bounds(cols_k, rshape):
                state.dirty = True
                return
            rcols.append(cols_k)
            overlap.append(_linear(cols_k, rshape)
                           if ref.array == cs.write_ref.array else None)
        state.rcols = rcols
        state.overlap = overlap
        state.vector_values = cs.vector_values
        if cs.pure_input:
            # inputs this RHS reads are never written: one batched
            # evaluation covers every run up front
            state.values = cs.vector_values(storage, scalars, cols, params,
                                            rcols, ne)
    except Exception:
        state.dirty = True


def _in_bounds(cols: Tuple[np.ndarray, ...],
               shape: Tuple[int, ...]) -> bool:
    for col, size in zip(cols, shape):
        if len(col) and (int(col.min()) < 0 or int(col.max()) >= size):
            return False
    return True


def _record_pending(state: _StatementState, coverage, a: int, b: int,
                    n_act: int) -> None:
    """Record not-yet-seen branch outcomes appearing in run ``[a, b)``."""
    done = []
    for key in state.pending:
        gi, outcome = key
        if gi == -1:
            hit = n_act > 0
        else:
            reached, taken = state.guard_taken[gi]
            seen = taken[a:b] if outcome else ~taken[a:b]
            hit = bool((reached[a:b] & seen).any())
        if hit:
            coverage.record(state.cs.name, gi, outcome)
            done.append(key)
    for key in done:
        state.pending.discard(key)


def execute_vectorized(program: Program, params: Mapping[str, int],
                       storage: Storage, coverage,
                       budget: int,
                       exceeded: Callable[[int], Exception],
                       native=None) -> int:
    """Run ``program`` on ``storage`` in blocks; returns executed count.

    ``native`` (a ``repro.runtime.native.NativeContext``) upgrades
    eligible work to compiled C kernels: the whole program as one loop
    nest when provably exact, else individual runs of guard-passing
    instances.  Both execute sequentially in global order, so anything
    the context declines — and everything when it is ``None`` — falls
    through to the identical NumPy/scalar paths below.
    """
    batch = sorted_instances(program, params, budget, exceeded)
    comp = compile_program(program)
    scalars = program.scalar_values()
    shapes = {name: arr.shape for name, arr in storage.items()}
    prog = program.name
    env_base = dict(params)

    states = []
    for si, cs in enumerate(comp.statements):
        state = _StatementState(cs)
        _prepare(state, si, batch, params, storage, shapes,
                 scalars, coverage is not None)
        states.append(state)

    if native is not None:
        # whole-nest fast path: one C call covers every instance, with
        # coverage and counts recorded from the already-validated states
        total = native.try_whole(program, params, storage, states,
                                 coverage)
        if total is not None:
            return total

    executed = 0
    starts, ends = batch.run_bounds()
    run_si = batch.si[starts].tolist() if len(starts) else []
    starts_l = starts.tolist()
    ends_l = ends.tolist()
    si_list: Optional[list] = None
    row_list: Optional[list] = None
    n_runs = len(starts_l)

    r = 0
    while r < n_runs:
        si = run_si[r]
        state = states[si]
        length = ends_l[r] - starts_l[r]

        if state.dirty or length < _MIN_VECTOR_RUN:
            # sweep: walk a stretch of tiny/scalar-only runs instance by
            # instance on the compiled steps — one shared loop instead of
            # per-run setup (interleaved statements produce myriads of
            # one-instance runs)
            j = r
            while j < n_runs and (
                    states[run_si[j]].dirty
                    or ends_l[j] - starts_l[j] < _MIN_VECTOR_RUN):
                states[run_si[j]].cursor += ends_l[j] - starts_l[j]
                j += 1
            if si_list is None:
                si_list = batch.si.tolist()
                row_list = batch.row.tolist()
            for g in range(starts_l[r], ends_l[j - 1]):
                gsi = si_list[g]
                gstate = states[gsi]
                if gstate.src_rows is None:
                    gstate.src_rows = batch.points[gsi].tolist()
                env = dict(env_base)
                env.update(zip(gstate.cs.iter_names,
                               gstate.src_rows[row_list[g]]))
                if gstate.cs.scalar_step(env, storage, shapes, scalars,
                                         coverage, prog):
                    executed += 1
            r = j
            continue

        cs = state.cs
        a = state.cursor
        b = a + length
        state.cursor = b
        r += 1

        # executed sub-range of this run, in the compacted index space
        if state.all_exec:
            ea, eb = a, b
        else:
            ea, eb = np.searchsorted(state.epos, (a, b))
        n_act = int(eb - ea)
        if coverage is not None and state.pending:
            _record_pending(state, coverage, a, b, n_act)
        if n_act == 0:
            continue
        if n_act < _MIN_VECTOR_RUN:
            executed += _run_scalar_span(state, ea, eb, storage, shapes,
                                         scalars, env_base, prog)
            continue

        if native is not None:
            # a compiled kernel walks the run sequentially in schedule
            # order, so no scatter/reduce aliasing analysis is needed
            done = native.run_span(si, state, ea, eb, storage, params)
            if done is not None:
                executed += done
                continue

        wl = state.wlin[ea:eb]
        mode = None
        cells = None
        if state.injective:
            if _scatter_safe(state, ea, eb, wl):
                mode = "scatter"
        else:
            cells = np.unique(wl)
            if cells.size == n_act:
                if _scatter_safe(state, ea, eb, wl):
                    mode = "scatter"
            elif cells.size == 1:
                if cs.op != "/=" and _alias_free(state, ea, eb, cells):
                    mode = "reduce"
            elif cs.op != "/=" and _alias_free(state, ea, eb, cells):
                mode = "grouped"
        if mode is None:
            executed += _run_scalar_span(state, ea, eb, storage, shapes,
                                         scalars, env_base, prog)
            continue

        values = _run_values(state, ea, eb, storage, scalars, params,
                             n_act)
        if values is None:  # defensive: kernel failure -> scalar
            executed += _run_scalar_span(state, ea, eb, storage, shapes,
                                         scalars, env_base, prog)
            continue
        arr = storage[cs.write_ref.array]
        if mode == "scatter":
            widx = tuple(col[ea:eb] for col in state.wcols)
            _apply_scatter(arr, widx, cs.op, values)
        elif mode == "reduce":
            _apply_reduction(arr, int(wl[0]), cs.op, values)
        else:
            _apply_grouped(arr, wl, cs.op, values)
        executed += n_act
    return executed


def _scatter_safe(state: _StatementState, ea: int, eb: int,
                  wl: np.ndarray) -> bool:
    """No read may alias a write inside the run, except element-identical
    reads of the written cell (safe: gathers happen before the scatter,
    and distinct writes mean nothing else touches that cell)."""
    for rl_full in state.overlap:
        if rl_full is None:
            continue
        rl = rl_full[ea:eb]
        if np.array_equal(rl, wl):
            continue
        if np.isin(rl, wl).any():
            return False
    return True


def _alias_free(state: _StatementState, ea: int, eb: int,
                cells: np.ndarray) -> bool:
    """No RHS read may touch any cell the run writes (reduction modes)."""
    for rl_full in state.overlap:
        if rl_full is not None and np.isin(rl_full[ea:eb], cells).any():
            return False
    return True


def _run_values(state: _StatementState, ea: int, eb: int,
                storage: Storage, scalars, params,
                n_act: int) -> Optional[np.ndarray]:
    if state.values is not None:
        return state.values[ea:eb]
    try:
        cols = {name: col[ea:eb] for name, col in state.cols.items()}
        ridx = [tuple(c[ea:eb] for c in cols_k) for cols_k in state.rcols]
        return state.vector_values(storage, scalars, cols, params, ridx,
                                   n_act)
    except Exception:
        return None


def _run_scalar_span(state: _StatementState, ea: int, eb: int,
                     storage: Storage, shapes, scalars, env_base,
                     prog: str) -> int:
    """Execute the run's guard-passing instances on the scalar step.

    Coverage is handled by the pending recorder (the step gets ``None``),
    and guards are re-checked harmlessly — every row here already passed.
    """
    step = state.cs.scalar_step
    names = state.cs.iter_names
    rows = state.points[state.epos[ea:eb]].tolist()
    executed = 0
    for row in rows:
        env = dict(env_base)
        env.update(zip(names, row))
        if step(env, storage, shapes, scalars, None, prog):
            executed += 1
    return executed


def _apply_scatter(arr: np.ndarray, widx, op: str,
                   values: np.ndarray) -> None:
    if op == "=":
        arr[widx] = values
    elif op == "+=":
        arr[widx] += values
    elif op == "-=":
        arr[widx] -= values
    elif op == "*=":
        arr[widx] *= values
    else:  # "/=" with the reference's per-element zero guard
        from .compile import _vdiv
        arr[widx] = _vdiv(arr[widx], values)


def _apply_reduction(arr: np.ndarray, target: int, op: str,
                     values: np.ndarray) -> None:
    if op == "=":
        arr.flat[target] = values[-1]  # intermediate writes unobservable
        return
    ufunc = _ACCUMULATE[op]
    chain = np.empty(len(values) + 1, dtype=np.float64)
    chain[0] = arr.flat[target]
    chain[1:] = values
    arr.flat[target] = ufunc.accumulate(chain)[-1]


def _apply_grouped(arr: np.ndarray, wl: np.ndarray, op: str,
                   values: np.ndarray) -> None:
    """Segmented left fold: each written cell folds its own updates.

    A stable sort on the write cell preserves each cell's update order;
    the fold then walks update columns, masking groups that ran out.
    Cells are mutually independent here (``_alias_free`` guaranteed no
    read sees any written cell), so per-cell sequential folds reproduce
    the interleaved reference execution bit for bit.
    """
    order = np.argsort(wl, kind="stable")
    ws = wl[order]
    vs = values[order]
    bound = np.flatnonzero(ws[1:] != ws[:-1]) + 1
    gstarts = np.concatenate(([0], bound))
    gends = np.concatenate((bound, [len(ws)]))
    targets = ws[gstarts]
    if op == "=":
        arr.flat[targets] = vs[gends - 1]  # last write per cell wins
        return
    ufunc = _ACCUMULATE[op]
    lens = gends - gstarts
    lmax = int(lens.max())
    groups = len(gstarts)
    pos = np.arange(len(ws)) - np.repeat(gstarts, lens)
    mat = np.zeros((groups, lmax), dtype=np.float64)
    mat[np.repeat(np.arange(groups), lens), pos] = vs
    acc = arr.flat[targets]
    if int(lens.min()) == lmax:  # equal-length segments: unmasked fold
        for t in range(lmax):
            acc = ufunc(acc, mat[:, t])
    else:
        for t in range(lmax):
            # padded lanes compute on the 0.0 filler and are discarded
            acc = np.where(t < lens, ufunc(acc, mat[:, t]), acc)
    arr.flat[targets] = acc
