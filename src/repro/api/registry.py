"""Domain registries: the named parts a session is assembled from.

Four families (plus the transform registry that lives with the
transforms themselves):

* ``LLM_BACKENDS`` — ``name -> factory(persona, seed) -> llm``.  An llm
  object must provide ``generate(prompt, slot, round_tag)`` and
  ``note_result(slot, passed)`` (the :class:`repro.llm.SimulatedLLM`
  protocol).  ``"simulated"`` is the built-in paper backend; a real
  API-backed client registers here without touching the pipeline.
* ``BASE_COMPILER_REGISTRY`` — the ``-O3`` base compilers every
  measured binary goes through (gcc / clang / icx).
* ``OPTIMIZER_REGISTRY`` — the optimizing-compiler baselines
  (``name -> Optimizer`` class, instantiated per use).
* ``RETRIEVAL_METHODS`` — demonstration ranking strategies:
  ``name -> strategy(retriever, target, rng) -> [RetrievedDemo]``.
  The built-ins delegate to :meth:`repro.retrieval.Retriever.rank`'s
  three methods (loop-aware / bm25 / weighted, the Table 6 ablation).
* ``STORE_BACKENDS`` (re-exported from :mod:`repro.storage`) —
  artifact-store backends: ``name -> factory(root) -> ArtifactStore``.
  ``"local"`` (sharded, compacting files) and ``"memory"`` (the
  executable spec) are built in; a remote/object backend registers here
  and is picked up by ``REPRO_STORE_BACKEND`` — and by the backend
  conformance suite — without touching the stores' clients.

Unknown names raise :class:`repro.registry.UnknownComponentError`,
whose message lists every registered name.
"""

from __future__ import annotations

import random
from typing import Callable, List

from ..compilers import (BASE_COMPILERS, Graphite, IcxOptimizer,
                         Perspective, Polly, Pluto)
from ..llm.personas import Persona
from ..llm.simulated import SimulatedLLM
from ..registry import (DuplicateComponentError, Registry,
                        UnknownComponentError)
from ..retrieval.retriever import METHODS, RetrievedDemo, Retriever
from ..storage import STORE_BACKENDS
from ..transforms import TRANSFORMS

__all__ = [
    "LLM_BACKENDS", "BASE_COMPILER_REGISTRY", "OPTIMIZER_REGISTRY",
    "RETRIEVAL_METHODS", "STORE_BACKENDS", "TRANSFORMS",
    "DuplicateComponentError", "Registry", "UnknownComponentError",
]

# ----------------------------------------------------------------------
# LLM backends
# ----------------------------------------------------------------------
LLM_BACKENDS = Registry("LLM backend")


@LLM_BACKENDS.register_as("simulated")
def _simulated_backend(persona: Persona, seed: int) -> SimulatedLLM:
    return SimulatedLLM(persona, seed)


# ----------------------------------------------------------------------
# Compilers
# ----------------------------------------------------------------------
BASE_COMPILER_REGISTRY = Registry("base compiler")
for _name, _compiler in BASE_COMPILERS.items():
    BASE_COMPILER_REGISTRY.register(_name, _compiler)

OPTIMIZER_REGISTRY = Registry("optimizing compiler")
for _name, _cls in (("pluto", Pluto), ("polly", Polly),
                    ("graphite", Graphite), ("perspective", Perspective),
                    ("icx", IcxOptimizer)):
    OPTIMIZER_REGISTRY.register(_name, _cls)


# ----------------------------------------------------------------------
# Retrieval methods
# ----------------------------------------------------------------------
RETRIEVAL_METHODS = Registry("retrieval method")


def _builtin_method(method: str) -> Callable:
    def _strategy(retriever: Retriever, target, rng: random.Random
                  ) -> List[RetrievedDemo]:
        return retriever.demonstrations(target, rng, method)
    _strategy.__name__ = f"retrieve_{method.replace('-', '_')}"
    return _strategy


for _method in METHODS:
    RETRIEVAL_METHODS.register(_method, _builtin_method(_method))
