"""Retry/backoff and circuit breaking for unreliable components.

The paper's feedback loop assumes the LLM misbehaves per *round*; a
long-lived service additionally has to assume the backend misbehaves
per *call* — transient network errors, timeouts, malformed replies.
This module wraps registry-resolved components (LLM backends from
:data:`~repro.api.registry.LLM_BACKENDS`, optimizing compilers from
:data:`~repro.api.registry.OPTIMIZER_REGISTRY`) with two layers:

* **retry with decorrelated-jitter backoff** — transient failures are
  retried up to ``attempts`` times, sleeping ``uniform(base, 3*prev)``
  (capped) between tries.  Sleeps go through
  :func:`repro.cancellation.sleep_interruptible`, so deadlines and
  drain cut a backoff short instead of waiting it out.
* **a per-component circuit breaker** — after ``failure_threshold``
  consecutive failures the breaker opens and calls fail fast with
  :class:`CircuitOpenError` (no hang, no thundering retry herd); after
  ``reset_timeout`` seconds one half-open probe is let through and its
  outcome closes or re-opens the breaker.

Every retry, give-up, trip, probe and close is published as a
structured :class:`~repro.api.events.SessionEvent` on the module-level
:data:`RESILIENCE_BUS` — *not* on per-request event logs, which stay
byte-identical to fault-free runs (a retried call returns the same
deterministic response the clean call would have).

Transience: an exception is retryable when it is an instance of the
policy's ``retryable`` types or carries a truthy ``transient``
attribute (the convention :mod:`repro.testing.faults` uses).
:class:`~repro.cancellation.Cancelled` is never retried.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..cancellation import Cancelled, sleep_interruptible
from .events import EventBus, SessionEvent

#: resilience events fan out here (a process-wide bus, deliberately
#: separate from per-session buses: operators subscribe once)
RESILIENCE_BUS = EventBus()

_SEQ_LOCK = threading.Lock()
_SEQ = 0


def _emit(kind: str, **data: Any) -> SessionEvent:
    global _SEQ
    with _SEQ_LOCK:
        seq = _SEQ
        _SEQ += 1
    event = SessionEvent.make(seq, kind, data, wall=time.time())
    RESILIENCE_BUS.publish(event)
    return event


# ----------------------------------------------------------------------
# policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before giving up on one call."""

    attempts: int = 4
    base: float = 0.05      # first backoff lower bound (seconds)
    cap: float = 2.0        # backoff upper bound (seconds)
    retryable: Tuple[type, ...] = (ConnectionError, TimeoutError)
    seed: int = 0           # jitter RNG seed (deterministic tests)

    @staticmethod
    def from_env(**overrides: Any) -> "RetryPolicy":
        """Policy from ``REPRO_RETRY_ATTEMPTS`` / ``REPRO_RETRY_BASE``."""
        values: Dict[str, Any] = {}
        if "REPRO_RETRY_ATTEMPTS" in os.environ:
            values["attempts"] = int(os.environ["REPRO_RETRY_ATTEMPTS"])
        if "REPRO_RETRY_BASE" in os.environ:
            values["base"] = float(os.environ["REPRO_RETRY_BASE"])
        values.update(overrides)
        return RetryPolicy(**values)


def is_transient(exc: BaseException, policy: RetryPolicy) -> bool:
    if isinstance(exc, Cancelled):
        return False
    if isinstance(exc, CircuitOpenError):
        return False
    return (isinstance(exc, policy.retryable)
            or bool(getattr(exc, "transient", False)))


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------
class CircuitOpenError(RuntimeError):
    """Fail-fast rejection: the component's breaker is open."""

    transient = False

    def __init__(self, site: str, retry_after: float) -> None:
        super().__init__(
            f"circuit breaker for {site!r} is open; "
            f"retry in {retry_after:.1f}s")
        self.site = site
        self.retry_after = retry_after


class CircuitBreaker:
    """Closed → open after N consecutive failures → half-open probe.

    Thread-safe; while half-open exactly one caller holds the probe and
    everyone else still fails fast, so a recovering backend sees one
    request, not a stampede.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"

    def __init__(self, site: str, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.site = site
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError`."""
        with self._lock:
            if self._state == self.CLOSED:
                return
            elapsed = self._clock() - self._opened_at
            if self._state == self.OPEN and elapsed >= self.reset_timeout:
                self._state = self.HALF_OPEN
                self._probing = False
            if self._state != self.HALF_OPEN or self._probing:
                raise CircuitOpenError(
                    self.site,
                    max(0.0, self.reset_timeout - elapsed))
            self._probing = True   # this caller is the probe
        _emit("breaker_half_open", site=self.site)

    def record_success(self) -> None:
        with self._lock:
            was = self._state
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False
        if was != self.CLOSED:
            _emit("breaker_close", site=self.site)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            tripped = (self._state == self.HALF_OPEN
                       or self._failures >= self.failure_threshold)
            if tripped:
                already_open = self._state == self.OPEN
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False
                tripped = not already_open
            failures = self._failures
        if tripped:
            _emit("breaker_open", site=self.site, failures=failures)


# process-wide breakers, one per component site
_BREAKERS: Dict[str, CircuitBreaker] = {}
_BREAKERS_LOCK = threading.Lock()


def breaker_for(site: str, failure_threshold: Optional[int] = None,
                reset_timeout: Optional[float] = None) -> CircuitBreaker:
    """The process-wide breaker for ``site`` (created on first use).

    Defaults come from ``REPRO_BREAKER_THRESHOLD`` /
    ``REPRO_BREAKER_RESET``; explicit arguments only apply on creation.
    """
    with _BREAKERS_LOCK:
        breaker = _BREAKERS.get(site)
        if breaker is None:
            if failure_threshold is None:
                failure_threshold = int(
                    os.environ.get("REPRO_BREAKER_THRESHOLD", "5"))
            if reset_timeout is None:
                reset_timeout = float(
                    os.environ.get("REPRO_BREAKER_RESET", "30"))
            breaker = CircuitBreaker(site, failure_threshold,
                                     reset_timeout)
            _BREAKERS[site] = breaker
        return breaker


def breaker_states() -> Dict[str, str]:
    """Current state per known component site (for ``/metrics``)."""
    with _BREAKERS_LOCK:
        breakers = list(_BREAKERS.values())
    return {b.site: b.state for b in breakers}


def reset_resilience() -> None:
    """Forget all breakers and restart the event sequence (tests)."""
    global _SEQ
    with _BREAKERS_LOCK:
        _BREAKERS.clear()
    with _SEQ_LOCK:
        _SEQ = 0


# ----------------------------------------------------------------------
# the retry loop
# ----------------------------------------------------------------------
class ResilientCall:
    """Retry + breaker around one component site's calls."""

    def __init__(self, site: str, policy: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 sleep: Callable[[float], None] = sleep_interruptible
                 ) -> None:
        self.site = site
        self.policy = policy or RetryPolicy.from_env()
        self.breaker = breaker if breaker is not None \
            else breaker_for(site)
        self._sleep = sleep
        self._rng = random.Random(f"retry/{site}/{self.policy.seed}")
        self._rng_lock = threading.Lock()

    def _backoff(self, previous: float) -> float:
        """Decorrelated jitter: ``min(cap, uniform(base, 3*prev))``."""
        with self._rng_lock:
            return min(self.policy.cap,
                       self._rng.uniform(self.policy.base, previous * 3))

    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        policy = self.policy
        delay = policy.base
        for attempt in range(1, policy.attempts + 1):
            self.breaker.allow()
            try:
                result = fn(*args, **kwargs)
            except BaseException as exc:
                if not is_transient(exc, policy):
                    raise
                self.breaker.record_failure()
                if attempt >= policy.attempts \
                        or self.breaker.state != CircuitBreaker.CLOSED:
                    _emit("retry_give_up", site=self.site,
                          attempts=attempt, error=type(exc).__name__)
                    raise
                delay = self._backoff(delay)
                _emit("retry", site=self.site, attempt=attempt,
                      delay=round(delay, 4), error=type(exc).__name__)
                self._sleep(delay)
            else:
                self.breaker.record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# registry wrappers (the PR-4 pattern: wrapped components re-register
# under a derived name and work everywhere a name is accepted)
# ----------------------------------------------------------------------
RESILIENT_PREFIX = "resilient:"


class ResilientLLM:
    """Transparent resilience proxy over one LLM chat session.

    Only ``generate`` goes through the retry/breaker machinery (it is
    the remote call); everything else proxies straight through, so a
    wrapped backend is behaviourally byte-identical to the inner one
    whenever the inner one answers.
    """

    def __init__(self, inner: Any, call: ResilientCall) -> None:
        self._inner = inner
        self._call = call

    def generate(self, prompt: Any, k: int, round_tag: str = "r0") -> Any:
        return self._call(self._inner.generate, prompt, k, round_tag)

    def note_result(self, k: int, passed: bool) -> None:
        self._inner.note_result(k, passed)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def resilient_llm_backend(name: str,
                          policy: Optional[RetryPolicy] = None
                          ) -> Callable:
    """A backend factory wrapping ``LLM_BACKENDS[name]`` with resilience.

    All sessions created from the returned factory share one breaker
    (site ``llm:<name>``); each session gets its own retry state.
    """
    from .registry import LLM_BACKENDS

    inner_factory = LLM_BACKENDS.get(name)
    site = f"llm:{name}"

    def factory(persona: Any, seed: int) -> ResilientLLM:
        return ResilientLLM(inner_factory(persona, seed),
                            ResilientCall(site, policy=policy))
    factory.__name__ = f"resilient_{name}_backend"
    return factory


def install_resilient_llm(name: str,
                          policy: Optional[RetryPolicy] = None) -> str:
    """Register (idempotently) and return ``resilient:<name>``."""
    from .registry import LLM_BACKENDS

    if name.startswith(RESILIENT_PREFIX):
        return name
    alias = RESILIENT_PREFIX + name
    LLM_BACKENDS.register(alias, resilient_llm_backend(name, policy),
                          overwrite=True)
    return alias


class ResilientOptimizer:
    """Resilience proxy over one optimizing-compiler instance."""

    def __init__(self, inner: Any, call: ResilientCall,
                 name: str) -> None:
        self._inner = inner
        self._call = call
        self.name = name

    def optimize(self, program: Any, params: Any) -> Any:
        return self._call(self._inner.optimize, program, params)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


def install_resilient_optimizer(name: str,
                                policy: Optional[RetryPolicy] = None
                                ) -> str:
    """Register (idempotently) and return ``resilient:<name>``.

    The wrapper declares the inner optimizer's base compiler so
    :meth:`OptimizerSession._run_compiler` resolves it exactly as it
    would the unwrapped name.
    """
    from ..compilers import OPTIMIZER_BASE
    from .registry import OPTIMIZER_REGISTRY

    if name.startswith(RESILIENT_PREFIX):
        return name
    alias = RESILIENT_PREFIX + name
    inner_cls = OPTIMIZER_REGISTRY.get(name)
    site = f"compiler:{name}"
    base_name = getattr(inner_cls, "base_compiler",
                        OPTIMIZER_BASE.get(name))

    def factory() -> ResilientOptimizer:
        wrapper = ResilientOptimizer(inner_cls(),
                                     ResilientCall(site, policy=policy),
                                     name=alias)
        if base_name is not None:
            wrapper.base_compiler = base_name
        return wrapper
    factory.__name__ = f"resilient_{name}_optimizer"
    OPTIMIZER_REGISTRY.register(alias, factory, overwrite=True)
    return alias
