"""The optimizer session: shared state once, typed requests many times.

``OptimizerSession`` is the long-lived service object the ROADMAP's
production framing asks for.  It owns every piece of expensive shared
state exactly once — the synthesized corpus (via ``cached_dataset``'s
two cache layers), the retriever index, the process-wide dependence /
compiled-kernel / legality caches it shares with the rest of the
system, and the machine model — and serves typed
:class:`OptimizationRequest` → :class:`OptimizationResult` objects.

* :meth:`OptimizerSession.optimize` runs one request, streaming
  :class:`~repro.api.events.SessionEvent` records to the session's
  :class:`~repro.api.events.EventBus` and returning them on the result.
* :meth:`OptimizerSession.optimize_many` runs a batch: persistent-store
  hits are resolved first, misses fan out across the PR-1 parallel
  runner (``repro.evaluation.parallel``), and results are reassembled
  in request order — bit-identical to running each request serially.

Components are resolved from the registries in
:mod:`repro.api.registry`; unknown names raise
:class:`~repro.registry.UnknownComponentError` listing the registered
alternatives.

Determinism: each pipeline run seeds its RNG from ``(session seed,
program fingerprint)``, never from call order, so batching, pooling and
caching cannot change any result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import (Any, Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

from ..cancellation import CancelToken, cancel_scope
from ..codegen import scop_body_to_c
from ..compilers import OPTIMIZER_BASE
from ..compilers.base import BaseCompiler
from ..ir.program import Program
from ..ir.serialize import program_from_json, program_to_json
from ..llm.personas import PERSONAS, Persona
from ..machine.analytical import estimate_cached
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..pipeline.generation import (BASELINE_TIME_LIMIT, DEFAULT_K,
                                   FeedbackPipeline, LOOPRAG_TIME_LIMIT,
                                   PipelineResult)
from ..registry import UnknownComponentError
from ..retrieval.retriever import Retriever
from ..synthesis.dataset import Dataset, dataset_signature
from .events import EventBus, EventLog, SessionEvent
from .registry import (BASE_COMPILER_REGISTRY, LLM_BACKENDS,
                       OPTIMIZER_REGISTRY, RETRIEVAL_METHODS)

#: request kinds the session serves
SYSTEMS = ("looprag", "basellm", "compiler")

DEFAULT_DATASET_SIZE = 400
DEFAULT_SEED = 0

#: store payload format version; bump on incompatible result changes
RESULT_SCHEMA = 1


def _params_tuple(params: Union[Mapping[str, int],
                                Sequence[Tuple[str, int]], None]
                  ) -> Tuple[Tuple[str, int], ...]:
    if params is None:
        return ()
    if isinstance(params, Mapping):
        return tuple(sorted((str(k), int(v)) for k, v in params.items()))
    return tuple(sorted((str(k), int(v)) for k, v in params))


@dataclass(frozen=True)
class OptimizationRequest:
    """One typed unit of work for a session.

    ``system`` selects the engine: ``"looprag"`` (retrieval + feedback),
    ``"basellm"`` (instruction prompting only) or ``"compiler"`` (one
    optimizing-compiler baseline, named by ``optimizer``).  Parameter
    bindings are stored as sorted item tuples so requests are hashable
    and pickle across process pools; use :meth:`make` to pass plain
    mappings.
    """

    program: Program
    perf_params: Tuple[Tuple[str, int], ...]
    test_params: Tuple[Tuple[str, int], ...] = ()
    system: str = "looprag"
    #: persona by registered name, or a :class:`Persona` object for
    #: ad-hoc profiles (those skip the persistent store — no stable key)
    persona: Union[str, Persona] = "deepseek"
    optimizer: Optional[str] = None
    time_limit: Optional[float] = None
    tag: Optional[str] = None

    @staticmethod
    def make(program: Program,
             perf_params: Union[Mapping[str, int], None] = None,
             test_params: Union[Mapping[str, int], None] = None,
             system: str = "looprag",
             persona: Union[str, Persona] = "deepseek",
             optimizer: Optional[str] = None,
             time_limit: Optional[float] = None,
             tag: Optional[str] = None) -> "OptimizationRequest":
        if system not in SYSTEMS:
            raise UnknownComponentError("request system", system, SYSTEMS)
        return OptimizationRequest(
            program=program,
            perf_params=_params_tuple(perf_params),
            test_params=_params_tuple(test_params),
            system=system, persona=persona, optimizer=optimizer,
            time_limit=time_limit, tag=tag)

    # ------------------------------------------------------------------
    def perf(self) -> Dict[str, int]:
        return dict(self.perf_params)

    def test(self) -> Dict[str, int]:
        return dict(self.test_params)

    def effective_time_limit(self) -> float:
        if self.time_limit is not None:
            return self.time_limit
        return (LOOPRAG_TIME_LIMIT if self.system == "looprag"
                else BASELINE_TIME_LIMIT)

    def persona_name(self) -> str:
        if isinstance(self.persona, Persona):
            return self.persona.name
        return self.persona

    def echo(self) -> Dict[str, Any]:
        """Deterministic JSON form of the request (for reports)."""
        return {
            "target": self.program.name,
            "fingerprint": self.program.fingerprint(),
            "system": self.system,
            "persona": (self.persona_name()
                        if self.system != "compiler" else None),
            "optimizer": self.optimizer,
            "perf": dict(self.perf_params),
            "test": dict(self.test_params),
            "time_limit": self.effective_time_limit(),
            "tag": self.tag,
        }


@dataclass(frozen=True)
class OptimizationResult:
    """The user-facing outcome of one request.

    Everything needed downstream is first-class and serializable:
    verdict, speedup, the winning recipe and code, per-stage snapshots,
    and the deterministic event log.  ``pipeline_result`` additionally
    carries the full in-memory :class:`PipelineResult` (every candidate
    with its test report) on live runs; it is ``None`` on persistent
    store hits, where ``best_program`` is rebuilt from the exact
    structural serialization instead.
    """

    request: OptimizationRequest
    system_label: str
    passed: bool
    speedup: float
    baseline_seconds: Optional[float]
    best_seconds: Optional[float]
    recipe: Optional[str]
    best_code: Optional[str]
    stage_pass: Tuple[Tuple[str, bool], ...] = ()
    stage_speedup: Tuple[Tuple[str, float], ...] = ()
    failure: Optional[str] = None
    events: Tuple[SessionEvent, ...] = ()
    from_cache: bool = False
    pipeline_result: Optional[PipelineResult] = field(
        default=None, compare=False)
    _best_program_json: Optional[dict] = field(default=None, compare=False,
                                               repr=False)

    # ------------------------------------------------------------------
    @property
    def best_program(self) -> Optional[Program]:
        if self.pipeline_result is not None and \
                self.pipeline_result.best is not None:
            return self.pipeline_result.best.response.program
        if self._best_program_json is not None:
            return program_from_json(self._best_program_json)
        return None

    def stage(self, name: str) -> bool:
        return dict(self.stage_pass).get(name, self.passed)

    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Serialize for the persistent result store."""
        best = self.best_program
        return {
            "schema": RESULT_SCHEMA,
            "system_label": self.system_label,
            "passed": self.passed,
            "speedup": self.speedup,
            "baseline_seconds": self.baseline_seconds,
            "best_seconds": self.best_seconds,
            "recipe": self.recipe,
            "best_code": self.best_code,
            "stage_pass": [list(p) for p in self.stage_pass],
            "stage_speedup": [list(p) for p in self.stage_speedup],
            "failure": self.failure,
            "events": [e.to_dict() for e in self.events],
            "best_program": (program_to_json(best)
                             if best is not None else None),
        }

    @staticmethod
    def from_payload(request: OptimizationRequest,
                     payload: dict) -> "OptimizationResult":
        if payload.get("schema") != RESULT_SCHEMA:
            raise ValueError("stale result payload")
        return OptimizationResult(
            request=request,
            system_label=str(payload["system_label"]),
            passed=bool(payload["passed"]),
            speedup=float(payload["speedup"]),
            baseline_seconds=payload["baseline_seconds"],
            best_seconds=payload["best_seconds"],
            recipe=payload["recipe"],
            best_code=payload["best_code"],
            stage_pass=tuple((str(n), bool(v))
                             for n, v in payload["stage_pass"]),
            stage_speedup=tuple((str(n), float(v))
                                for n, v in payload["stage_speedup"]),
            failure=payload["failure"],
            events=tuple(SessionEvent.from_dict(e)
                         for e in payload["events"]),
            from_cache=True,
            _best_program_json=payload["best_program"])

    def to_json_dict(self, include_events: bool = True) -> dict:
        """Deterministic JSON document (request echo + verdict + events).

        Byte-stable across runs: no wall-clock fields, no cache-state
        flag (a warm rerun must render identically to the cold run that
        populated the store).
        """
        doc: Dict[str, Any] = {
            "request": self.request.echo(),
            "result": {
                "system": self.system_label,
                "passed": self.passed,
                "speedup": round(self.speedup, 6),
                "baseline_seconds": self.baseline_seconds,
                "best_seconds": self.best_seconds,
                "recipe": self.recipe,
                "failure": self.failure,
                "stage_pass": [list(p) for p in self.stage_pass],
                "stage_speedup": [[n, round(v, 6)]
                                  for n, v in self.stage_speedup],
                "code": self.best_code,
            },
        }
        if include_events:
            doc["events"] = [e.to_dict() for e in self.events]
        return doc


# ----------------------------------------------------------------------
# worker plumbing for optimize_many pools: each *batch* registers its
# session under a fresh token before the pool is created (forked
# workers inherit the mapping copy-on-write, thread workers share it)
# and every submitted item carries that token — concurrent
# optimize_many calls, including several on ONE session, neither
# cross-wire nor unregister each other (each batch pops only its own
# token in its `finally`).
#
# ``forked`` tells the worker whether it runs in a forked process: if
# so it must NOT forward events to its (inherited copy of the) bus —
# the parent re-publishes the result's log on completion, and emitting
# in both places would double-deliver every event to subscribers.
# Thread-pool workers share the real bus and forward live.
# ----------------------------------------------------------------------
_WORKER_SESSIONS: Dict[int, "OptimizerSession"] = {}
_WORKER_REGISTRY_LOCK = threading.Lock()
_WORKER_BATCH_COUNTER = 0


def _register_worker_session(session: "OptimizerSession") -> int:
    global _WORKER_BATCH_COUNTER
    with _WORKER_REGISTRY_LOCK:
        _WORKER_BATCH_COUNTER += 1
        token = _WORKER_BATCH_COUNTER
        _WORKER_SESSIONS[token] = session
    return token


def _worker_optimize(token: int, request: OptimizationRequest,
                     forked: bool) -> OptimizationResult:
    session = _WORKER_SESSIONS.get(token)
    assert session is not None, "worker session not registered"
    return session._execute(request, live_events=not forked)


class OptimizerSession:
    """A long-lived optimization service instance.

    All configuration is named components resolved through registries
    (validated eagerly, with actionable errors); all heavy state is
    built lazily, once, and shared across every request and worker.

    ``dataset``/``retriever`` inject pre-built corpora (the deprecated
    facades use this); such sessions skip the persistent result store
    because their corpus has no content signature to key it by.
    """

    def __init__(self,
                 dataset_size: int = DEFAULT_DATASET_SIZE,
                 seed: int = DEFAULT_SEED,
                 generator: str = "looprag",
                 retrieval_method: str = "loop-aware",
                 llm_backend: str = "simulated",
                 base_compiler: Union[str, BaseCompiler] = "gcc",
                 machine: MachineModel = DEFAULT_MACHINE,
                 k: int = DEFAULT_K,
                 dataset: Optional[Dataset] = None,
                 retriever: Optional[Retriever] = None,
                 use_store: bool = True) -> None:
        # eager component validation: typos fail at construction, with
        # the registered names in the message
        self.llm_backend = llm_backend
        LLM_BACKENDS.get(llm_backend)
        self.retrieval_method = retrieval_method
        self._demo_strategy = RETRIEVAL_METHODS.get(retrieval_method)
        if isinstance(base_compiler, str):
            self.base = BASE_COMPILER_REGISTRY.get(base_compiler)
            self.base_name = base_compiler
        else:
            self.base = base_compiler
            self.base_name = base_compiler.name
        self.machine = machine
        self.dataset_size = dataset_size
        self.seed = seed
        self.generator = generator
        self.k = k
        self.events = EventBus()
        self._retriever: Optional[Retriever] = retriever
        if retriever is None and dataset is not None:
            self._retriever = Retriever(dataset)
        #: injected corpora have no dataset signature -> not store-keyed
        self._content_keyed = (dataset is None and retriever is None
                               and machine is DEFAULT_MACHINE)
        self.use_store = use_store
        self._pipelines: Dict[Tuple, FeedbackPipeline] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # shared state (lazy, built once)
    # ------------------------------------------------------------------
    @property
    def retriever(self) -> Retriever:
        """The session's retriever (index built on first use).

        Sessions configured by size/seed share the process-wide
        memoized retriever (and through it the two-layer dataset
        cache), so N sessions over the same corpus cost one index.
        """
        if self._retriever is None:
            from ..evaluation.harness import shared_retriever
            self._retriever = shared_retriever(
                self.dataset_size, self.seed, self.generator,
                self.retrieval_method)
        return self._retriever

    @property
    def dataset(self) -> Dataset:
        return self.retriever.dataset

    def _persona(self, persona: Union[str, Persona]) -> Persona:
        if isinstance(persona, Persona):
            return persona
        if persona not in PERSONAS:
            raise UnknownComponentError("persona", persona,
                                        tuple(PERSONAS))
        return PERSONAS[persona]

    def _cacheable(self, request: OptimizationRequest) -> bool:
        """Ad-hoc persona objects have no stable content key."""
        if request.system == "compiler":
            return True
        if isinstance(request.persona, str):
            return True
        return PERSONAS.get(request.persona.name) is request.persona

    def pipeline_for(self, system: str, persona: Union[str, Persona],
                     time_limit: Optional[float] = None
                     ) -> FeedbackPipeline:
        """The memoized per-(system, persona, time limit) pipeline."""
        if time_limit is None:
            time_limit = (LOOPRAG_TIME_LIMIT if system == "looprag"
                          else BASELINE_TIME_LIMIT)
        key = (system, persona, time_limit)
        with self._lock:
            pipe = self._pipelines.get(key)
            if pipe is not None:
                return pipe
            resolved = self._persona(persona)
            backend = LLM_BACKENDS.get(self.llm_backend)
            seed = self.seed
            if system == "looprag":
                pipe = FeedbackPipeline(
                    retriever=self.retriever,
                    llm_factory=lambda: backend(resolved, seed),
                    base_compiler=self.base,
                    machine=self.machine,
                    retrieval_method=self.retrieval_method,
                    k=self.k,
                    time_limit=time_limit,
                    use_feedback=True,
                    seed=seed,
                    demo_strategy=self._demo_strategy)
            else:
                pipe = FeedbackPipeline(
                    retriever=None,
                    llm_factory=lambda: backend(resolved, seed),
                    base_compiler=self.base,
                    machine=self.machine,
                    k=self.k,
                    time_limit=time_limit,
                    use_feedback=False,
                    seed=seed)
            self._pipelines[key] = pipe
            return pipe

    # ------------------------------------------------------------------
    # store keying
    # ------------------------------------------------------------------
    def _store(self):
        if not (self.use_store and self._content_keyed):
            return None
        from ..evaluation.store import active_store
        return active_store()

    def _request_key(self, request: OptimizationRequest) -> Tuple:
        from ..evaluation.store import code_signature

        fingerprint = request.program.fingerprint()
        if request.system == "compiler":
            core: Tuple = ("api/compiler", request.optimizer,
                           request.effective_time_limit(), fingerprint,
                           request.perf_params)
        elif request.system == "basellm":
            core = ("api/basellm", request.persona_name(), self.base_name,
                    self.llm_backend, self.seed, self.k,
                    request.effective_time_limit(), fingerprint,
                    request.perf_params, request.test_params)
        else:
            core = ("api/looprag", request.persona_name(), self.base_name,
                    self.retrieval_method, self.llm_backend,
                    self.generator, self.dataset_size, self.seed, self.k,
                    request.effective_time_limit(), fingerprint,
                    request.perf_params, request.test_params,
                    dataset_signature(self.dataset_size, self.seed,
                                      self.generator))
        return core + (code_signature(),)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def optimize(self, request: OptimizationRequest,
                 use_store: Optional[bool] = None,
                 cancel: Optional[CancelToken] = None
                 ) -> OptimizationResult:
        """Serve one request: store hit or live pipeline run.

        ``cancel`` installs a cooperative cancellation scope for the
        duration of the run: the pipeline checkpoints at its step
        boundaries and raises :class:`~repro.cancellation.Cancelled`
        (or ``DeadlineExceeded``) as soon as the token is due.  Store
        hits are served regardless — they cost no pipeline work.
        """
        store = (self._store()
                 if use_store is not False and self._cacheable(request)
                 else None)
        if store is not None:
            hit = self._store_lookup(store, request)
            if hit is not None:
                return hit
        with cancel_scope(cancel):
            result = self._execute(request)
        if store is not None:
            store.put(self._request_key(request), result.to_payload())
        return result

    def optimize_many(self, requests: Sequence[OptimizationRequest],
                      jobs: Optional[int] = None,
                      pool: str = "auto") -> List[OptimizationResult]:
        """Serve a batch; results align with ``requests``.

        Persistent-store hits resolve first; misses fan out across the
        evaluation layer's pool (``jobs``/``REPRO_JOBS``, 1 = serial)
        and are persisted as they complete.  Identical to calling
        :meth:`optimize` per request in order — batching never changes
        a result, only wall-clock time.

        Event delivery: with a thread pool (or serial) subscribers see
        events live; with a process pool each worker emits inside its
        fork, so the parent re-publishes a request's event log to the
        bus when its result arrives — complete, in order, but batched
        per request rather than streamed.
        """
        from ..evaluation.parallel import (default_jobs, make_executor,
                                           resolve_pool)

        requests = list(requests)
        if jobs is None:
            jobs = default_jobs()
        store = self._store()

        def request_store(request: OptimizationRequest):
            return store if self._cacheable(request) else None

        results: List[Optional[OptimizationResult]] = [None] * len(requests)
        misses: List[int] = []
        for i, request in enumerate(requests):
            target = request_store(request)
            hit = (self._store_lookup(target, request)
                   if target is not None else None)
            if hit is not None:
                results[i] = hit
            else:
                misses.append(i)

        if misses:
            if any(requests[i].system == "looprag" for i in misses):
                _ = self.retriever  # build shared state before forking
            if jobs > 1 and len(misses) > 1:
                forked = resolve_pool(pool) == "process"
                token = _register_worker_session(self)
                try:
                    with make_executor(min(jobs, len(misses)),
                                       pool) as executor:
                        futures = [executor.submit(_worker_optimize,
                                                   token, requests[i],
                                                   forked)
                                   for i in misses]
                        for i, future in zip(misses, futures):
                            results[i] = future.result()
                            if forked:
                                # worker emitted inside its fork;
                                # surface the log to parent-side
                                # subscribers
                                for event in results[i].events:
                                    self.events.publish(event)
                            target = request_store(requests[i])
                            if target is not None:
                                target.put(
                                    self._request_key(requests[i]),
                                    results[i].to_payload())
                finally:
                    with _WORKER_REGISTRY_LOCK:
                        _WORKER_SESSIONS.pop(token, None)
            else:
                for i in misses:
                    results[i] = self._execute(requests[i])
                    target = request_store(requests[i])
                    if target is not None:
                        target.put(self._request_key(requests[i]),
                                   results[i].to_payload())
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _store_lookup(self, store, request: OptimizationRequest
                      ) -> Optional[OptimizationResult]:
        payload = store.get(self._request_key(request))
        if payload is None:
            return None
        try:
            result = OptimizationResult.from_payload(request, payload)
        except (KeyError, TypeError, ValueError):
            return None  # stale/foreign payload: recompute
        self.events.publish(SessionEvent.make(
            0, "cache_hit", {"target": request.program.name,
                             "system": request.system}))
        return result

    def _execute(self, request: OptimizationRequest,
                 live_events: bool = True) -> OptimizationResult:
        log = EventLog(forward=self.events.publish if live_events
                       else None)
        log.emit("request", **request.echo())
        if request.system == "compiler":
            return self._run_compiler(request, log)
        pipeline = self.pipeline_for(request.system, request.persona,
                                     request.effective_time_limit())
        pr = pipeline.run(request.program, request.perf(), request.test(),
                          emit=log.emit)
        best = pr.best
        label = ("looprag" if request.system == "looprag" else "base")
        return OptimizationResult(
            request=request,
            system_label=(f"{label}-{request.persona_name()}"
                          f"-{self.base_name}"),
            passed=pr.passed,
            speedup=pr.speedup,
            baseline_seconds=pr.baseline_seconds,
            best_seconds=pr.best_seconds,
            recipe=(best.response.applied.describe()
                    if best is not None else None),
            best_code=(scop_body_to_c(best.response.program)
                       if best is not None else None),
            stage_pass=pr.stage_pass,
            stage_speedup=pr.stage_speedup,
            events=log.events(),
            pipeline_result=pr)

    def _run_compiler(self, request: OptimizationRequest,
                      log: EventLog) -> OptimizationResult:
        """One optimizing-compiler baseline; mirrors the harness exactly."""
        name = request.optimizer
        if name is None:
            raise ValueError("compiler requests need optimizer=<name>")
        optimizer = OPTIMIZER_REGISTRY.get(name)()
        # plugin optimizers declare their base compiler on the class;
        # the paper's five baselines are mapped in OPTIMIZER_BASE
        base_name = getattr(optimizer, "base_compiler",
                            OPTIMIZER_BASE.get(name))
        if base_name is None:
            raise ValueError(
                f"optimizer {name!r} declares no base compiler; set a "
                f"`base_compiler` attribute on the class or add it to "
                f"repro.compilers.OPTIMIZER_BASE")
        base = BASE_COMPILER_REGISTRY.get(base_name)
        machine: MachineModel = getattr(optimizer, "machine_override",
                                        DEFAULT_MACHINE)
        limit = request.effective_time_limit()
        perf = request.perf()
        baseline = estimate_cached(base.finalize(request.program), perf,
                                   DEFAULT_MACHINE).seconds

        def done(passed: bool, speedup: float, failure: Optional[str],
                 recipe: Optional[str], program: Optional[Program],
                 seconds: Optional[float]) -> OptimizationResult:
            log.emit("selected", passed=passed, speedup=speedup,
                     failure=failure)
            return OptimizationResult(
                request=request, system_label=name, passed=passed,
                speedup=speedup, baseline_seconds=baseline,
                best_seconds=seconds, recipe=recipe,
                best_code=(scop_body_to_c(program)
                           if program is not None else None),
                failure=failure, events=log.events(),
                _best_program_json=(program_to_json(program)
                                    if program is not None else None))

        res = optimizer.optimize(request.program, perf)
        if not res.ok:
            return done(False, 0.0, res.failure, None, None, None)
        final = base.finalize(res.program)
        seconds = estimate_cached(final, perf, machine).seconds
        if seconds > limit:
            return done(False, 0.0,
                        f"execution timeout ({seconds:.0f}s > "
                        f"{limit:.0f}s)", None, None, None)
        return done(True, baseline / seconds if seconds > 0 else 0.0,
                    None, res.recipe.describe(), res.program, seconds)

    # ------------------------------------------------------------------
    # suite-level plans (the batch engine behind the deprecated run_*)
    # ------------------------------------------------------------------
    @staticmethod
    def run_plans(plans, jobs: Optional[int] = None, pool: str = "auto"):
        """Run suite-level :class:`~repro.evaluation.harness.RunPlan`
        batches through the store-backed harness driver."""
        from ..evaluation.harness import run_plans
        return run_plans(plans, jobs=jobs, pool=pool)
