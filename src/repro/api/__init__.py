"""The service-grade optimization API.

One :class:`OptimizerSession` owns every piece of expensive shared state
(the synthesized corpus, the retriever index, the dependence and
compiled-kernel caches, the machine model) exactly once, and serves
typed :class:`OptimizationRequest` → :class:`OptimizationResult`
objects — one at a time (:meth:`OptimizerSession.optimize`) or in
store-backed parallel batches (:meth:`OptimizerSession.optimize_many`).

Components are assembled from *registries* (:mod:`repro.api.registry`):
LLM backends, base compilers, optimizing compilers, retrieval methods
and transformations are all named, pluggable parts.

Progress streams through a structured event bus
(:mod:`repro.api.events`): retrieval, per-candidate generation /
compilation / testing, round transitions, cache hits.  Subscribe with
``session.events.subscribe(print)`` or read ``result.events`` after the
fact; ``repro optimize --json`` and ``repro serve-batch`` expose the
same records on the command line.

The old facades (``repro.pipeline.LoopRAG``, ``BaseLLMOptimizer``) and
suite runners (``run_looprag`` / ``run_base_llm`` / ``run_compiler``)
remain as thin deprecated shims over this API with byte-identical
outputs; see docs/architecture.md for the migration map.
"""

from .events import EventBus, EventLog, SessionEvent
from .registry import (BASE_COMPILER_REGISTRY, LLM_BACKENDS,
                       OPTIMIZER_REGISTRY, RETRIEVAL_METHODS,
                       STORE_BACKENDS, TRANSFORMS,
                       DuplicateComponentError, Registry,
                       UnknownComponentError)
from .resilience import (RESILIENCE_BUS, CircuitBreaker,
                         CircuitOpenError, ResilientCall, RetryPolicy,
                         breaker_for, breaker_states,
                         install_resilient_llm,
                         install_resilient_optimizer, reset_resilience)
from .session import (OptimizationRequest, OptimizationResult,
                      OptimizerSession)

__all__ = [
    "EventBus", "EventLog", "SessionEvent",
    "BASE_COMPILER_REGISTRY", "LLM_BACKENDS", "OPTIMIZER_REGISTRY",
    "RETRIEVAL_METHODS", "STORE_BACKENDS", "TRANSFORMS",
    "DuplicateComponentError", "Registry", "UnknownComponentError",
    "RESILIENCE_BUS", "CircuitBreaker", "CircuitOpenError",
    "ResilientCall", "RetryPolicy", "breaker_for", "breaker_states",
    "install_resilient_llm", "install_resilient_optimizer",
    "reset_resilience",
    "OptimizationRequest", "OptimizationResult", "OptimizerSession",
]
