"""Structured session events.

Every stage of an optimization emits a :class:`SessionEvent`: retrieval
done, candidate generated / compiled / tested, round transitions, cache
hits, final selection.  Events serve two audiences:

* **subscribers** on a session's :class:`EventBus` see events live
  (with wall-clock timestamps) — progress bars, log shippers, metrics;
* **results** carry the per-request :class:`EventLog` — a deterministic
  record (no wall times, request-local sequence numbers) that is safe
  to persist in the result store and renders byte-stable in
  ``repro optimize --json`` / ``repro serve-batch``.

Determinism contract: ``data`` holds only JSON-able, run-deterministic
values.  Wall-clock time lives in the separate ``wall`` field, which is
excluded from :meth:`SessionEvent.to_dict` (and therefore from every
serialized artifact); emitting events never consumes pipeline RNG.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, Mapping, Optional, Tuple)

logger = logging.getLogger("repro.api.events")

#: ring-buffer capacity of an :class:`EventLog` unless overridden —
#: far above what any real optimization emits (so determinism of
#: persisted logs is unaffected) yet a hard bound on daemon heap when a
#: pathological request streams forever
DEFAULT_EVENT_LOG_LIMIT = 100_000


def _default_event_log_limit() -> int:
    raw = os.environ.get("REPRO_EVENT_LOG_LIMIT", "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_EVENT_LOG_LIMIT

#: event kinds emitted by the session/pipeline (a vocabulary, not a
#: closed set — subscribers must tolerate unknown kinds)
EVENT_REQUEST = "request"
EVENT_CACHE_HIT = "cache_hit"
EVENT_RETRIEVAL = "retrieval_done"
EVENT_ROUND = "round_start"
EVENT_GENERATED = "candidate_generated"
EVENT_COMPILED = "candidate_compiled"
EVENT_TESTED = "candidate_tested"
EVENT_STAGE = "stage_done"
EVENT_SELECTED = "selected"


@dataclass(frozen=True)
class SessionEvent:
    """One structured progress record.

    ``seq`` is request-local (0, 1, 2, ... within one optimization) so
    logs compare equal across identical runs; ``wall`` is the emission
    timestamp for live subscribers and is deliberately excluded from
    equality and serialization.
    """

    seq: int
    kind: str
    data: Tuple[Tuple[str, Any], ...] = ()
    wall: float = field(default=0.0, compare=False)

    @staticmethod
    def make(seq: int, kind: str, data: Mapping[str, Any],
             wall: float = 0.0) -> "SessionEvent":
        return SessionEvent(seq=seq, kind=kind,
                            data=tuple(sorted(data.items())), wall=wall)

    def get(self, key: str, default: Any = None) -> Any:
        return dict(self.data).get(key, default)

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic JSON form (no wall-clock time)."""
        return {"seq": self.seq, "kind": self.kind,
                "data": {k: v for k, v in self.data}}

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "SessionEvent":
        return SessionEvent.make(int(payload["seq"]), str(payload["kind"]),
                                 dict(payload["data"]))

    def __str__(self) -> str:
        rendered = " ".join(f"{k}={v}" for k, v in self.data)
        return f"[{self.seq:03d}] {self.kind} {rendered}".rstrip()


class EventLog:
    """Collects one request's events with a local sequence counter.

    Memory is bounded: the log is a ring buffer of ``limit`` events
    (``REPRO_EVENT_LOG_LIMIT``, default :data:`DEFAULT_EVENT_LOG_LIMIT`;
    ``limit <= 0`` = unbounded).  When the ring is full the *oldest*
    event is dropped and :attr:`dropped` counts it — live subscribers
    still saw every event via ``forward``, only the retained tail is
    truncated.  Sequence numbers keep counting monotonically, so a
    truncated log is recognizable by ``events()[0].seq > 0``.
    """

    def __init__(self, forward: Optional[Callable[[SessionEvent], None]]
                 = None, limit: Optional[int] = None) -> None:
        if limit is None:
            limit = _default_event_log_limit()
        self._events: Deque[SessionEvent] = deque(
            maxlen=limit if limit > 0 else None)
        self._seq = 0
        self._forward = forward
        #: events evicted from the ring (oldest-first) since creation
        self.dropped = 0

    def emit(self, kind: str, **data: Any) -> SessionEvent:
        event = SessionEvent.make(self._seq, kind, data,
                                  wall=time.time())
        self._seq += 1
        if (self._events.maxlen is not None
                and len(self._events) == self._events.maxlen):
            self.dropped += 1
        self._events.append(event)
        if self._forward is not None:
            self._forward(event)
        return event

    def events(self) -> Tuple[SessionEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)


class EventBus:
    """Fan-out of session events to subscribers.

    Subscribers are called synchronously, in subscription order, under
    no lock of their own — a slow subscriber slows the session, a
    raising subscriber is dropped after the first error (a monitoring
    hook must never kill an optimization).  A drop is never silent: it
    is logged with the traceback and announced to the surviving
    subscribers as a ``subscriber_dropped`` event, so operators can see
    that their log shipper / metrics hook died instead of wondering why
    the stream went quiet.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: "Dict[int, Callable[[SessionEvent], None]]" = {}
        self._next_token = 0

    def subscribe(self, callback: Callable[[SessionEvent], None]
                  ) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe closure."""
        with self._lock:
            token = self._next_token
            self._next_token += 1
            self._subscribers[token] = callback

        def _unsubscribe() -> None:
            with self._lock:
                self._subscribers.pop(token, None)
        return _unsubscribe

    def publish(self, event: SessionEvent) -> None:
        with self._lock:
            subscribers = list(self._subscribers.items())
        for token, callback in subscribers:
            try:
                callback(event)
            except Exception as exc:
                logger.warning(
                    "dropping event subscriber %r after %s on %r event",
                    callback, type(exc).__name__, event.kind,
                    exc_info=True)
                with self._lock:
                    removed = self._subscribers.pop(token, None)
                if removed is not None:
                    # recursion is bounded: every drop removes one
                    # subscriber, so a hook that also raises on this
                    # notice just drops too
                    self.publish(SessionEvent.make(
                        event.seq, "subscriber_dropped",
                        {"error": type(exc).__name__,
                         "during": event.kind},
                        wall=time.time()))

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return len(self._subscribers)
