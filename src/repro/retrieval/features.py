"""Loop feature extraction for retrieval (Appendix D, Figure 13).

Two feature families per statement, both *name-free* so that renaming
arrays or iterators does not change them (§4.2 — renaming never affects
which transformations apply):

* **schedule features** — the 2d+1 vector split into constant (partial
  order) and iterator dimensions; iterator dims are encoded by position;
* **array index features** — one item per subscript dimension per
  reference, as the tuple of (iterator-position, coefficient) pairs plus
  the constant column, tagged read or write.  All-zero iterator columns
  are dropped so references of different depths can still match.

Features are *multisets* (``Counter``): the LAScore equations count
intersections.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..ir.program import Program
from ..ir.schedule import ConstDim, TileDim
from ..ir.statement import Statement

#: feature family names (the j axis in Eqs 2-4)
FEATURE_KINDS = ("schedule", "write_index", "read_index")


@dataclass(frozen=True)
class StatementFeatures:
    """Feature multisets of one statement."""

    statement: str
    features: Tuple[Tuple[str, Tuple[Tuple[object, int], ...]], ...]

    def counter(self, kind: str) -> Counter:
        for name, items in self.features:
            if name == kind:
                return Counter(dict(items))
        return Counter()


def _iterator_positions(stmt: Statement) -> Dict[str, int]:
    return {name: pos
            for pos, name in enumerate(stmt.domain.iterator_names)}


def _schedule_items(stmt: Statement) -> Counter:
    positions = _iterator_positions(stmt)
    items: Counter = Counter()
    for level, dim in enumerate(stmt.schedule.dims):
        if isinstance(dim, ConstDim):
            items[("const", level, dim.value)] += 1
            continue
        coeffs = tuple(sorted(
            (positions[v], dim.expr.coeff(v))
            for v in dim.expr.variables() if v in positions))
        tag = "tile" if isinstance(dim, TileDim) else "iter"
        items[(tag, level, coeffs, dim.expr.const)] += 1
    return items


def _index_items(stmt: Statement, want_write: bool) -> Counter:
    positions = _iterator_positions(stmt)
    items: Counter = Counter()
    for ref, is_write in stmt.all_refs():
        if is_write != want_write:
            continue
        for dim_pos, index in enumerate(ref.indices):
            coeffs = tuple(sorted(
                (positions[v], index.coeff(v))
                for v in index.variables()
                if v in positions and index.coeff(v) != 0))
            # zero columns removed: only non-zero coefficients encoded
            items[(dim_pos, coeffs, index.const)] += 1
    return items


def statement_features(stmt: Statement) -> StatementFeatures:
    """Extract the three feature multisets of one statement."""
    packed = []
    for kind, counter in (
            ("schedule", _schedule_items(stmt)),
            ("write_index", _index_items(stmt, True)),
            ("read_index", _index_items(stmt, False))):
        packed.append((kind, tuple(sorted(counter.items(),
                                          key=lambda kv: repr(kv[0])))))
    return StatementFeatures(statement=stmt.name,
                             features=tuple(packed))


def program_features(program: Program) -> List[StatementFeatures]:
    """Features for every statement, in schedule (textual) order."""
    return [statement_features(stmt) for stmt in program.statements]


def intersection_count(a: Counter, b: Counter) -> int:
    """Multiset intersection size, Count(F_T ∩ F_E)."""
    return sum((a & b).values())
