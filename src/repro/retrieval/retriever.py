"""The demonstration retriever.

Indexes a synthesized :class:`Dataset` and ranks example SCoPs for a
target program under one of three methods (the Table 6 ablation):

* ``loop-aware`` — full LAScore (BM25 base + weighted loop features),
* ``bm25``       — text similarity only,
* ``weighted``   — loop features only (LAScore w/o BM25).

The pipeline takes the top-N (N = 10, §5) and samples three entries as
demonstrations.

Complexity: ``rank`` scores the BM25 component once per query via
``BM25Index.scores`` — O(|query terms| + total matching postings) — and
then adds the loop-feature score per entry, so a loop-aware ranking over
a corpus of N entries costs O(postings + N · |features|).  (It used to
call ``BM25Index.score`` per document, re-tokenizing the query N times.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..codegen import scop_body_to_c
from ..ir.program import Program
from ..synthesis.dataset import Dataset, DatasetEntry
from .bm25 import BM25Index
from .features import StatementFeatures, program_features
from .lascore import ScoreBreakdown, lascore

METHODS = ("loop-aware", "bm25", "weighted")

DEFAULT_TOP_N = 10
DEFAULT_DEMOS = 3


@dataclass(frozen=True)
class RetrievedDemo:
    """One ranked demonstration."""

    entry: DatasetEntry
    score: float
    breakdown: Optional[ScoreBreakdown]


class Retriever:
    """Dataset index + ranking."""

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self.index = BM25Index()
        self._features: List[List[StatementFeatures]] = []
        for entry in dataset:
            self.index.add(entry.example_text)
            self._features.append(program_features(entry.example))

    def rank(self, target: Program, method: str = "loop-aware",
             top_n: int = DEFAULT_TOP_N) -> List[RetrievedDemo]:
        """Rank dataset entries for the target program."""
        if method not in METHODS:
            raise ValueError(f"unknown retrieval method {method!r}; "
                             f"expected one of {METHODS}")
        query = scop_body_to_c(target)
        target_features = program_features(target)
        scored: List[RetrievedDemo] = []
        if method == "bm25":
            for doc in self.index.search(query, top_n):
                scored.append(RetrievedDemo(
                    entry=self.dataset[doc.doc_id], score=doc.score,
                    breakdown=None))
            return scored
        base_scores: Dict[int, float] = \
            self.index.scores(query) if method == "loop-aware" else {}
        for doc_id, entry in enumerate(self.dataset):
            breakdown = lascore(target_features, self._features[doc_id],
                                base_scores.get(doc_id, 0.0))
            scored.append(RetrievedDemo(entry=entry,
                                        score=breakdown.total,
                                        breakdown=breakdown))
        scored.sort(key=lambda d: (-d.score, d.entry.name))
        return scored[:top_n]

    def demonstrations(self, target: Program, rng: random.Random,
                       method: str = "loop-aware",
                       top_n: int = DEFAULT_TOP_N,
                       count: int = DEFAULT_DEMOS) -> List[RetrievedDemo]:
        """Top-N then random sample of ``count`` (§5: N=10, three demos)."""
        ranked = self.rank(target, method, top_n)
        if len(ranked) <= count:
            return ranked
        return rng.sample(ranked, count)
