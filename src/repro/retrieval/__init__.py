"""Demonstration retrieval: BM25, loop features and LAScore."""

from .bm25 import BM25Index, ScoredDoc
from .features import (FEATURE_KINDS, StatementFeatures,
                       intersection_count, program_features,
                       statement_features)
from .lascore import (DEFAULT_PENALTY_WEIGHTS, DEFAULT_REWARD_WEIGHTS,
                      ScoreBreakdown, feature_score, lascore,
                      statement_mismatch)
from .retriever import (DEFAULT_DEMOS, DEFAULT_TOP_N, METHODS,
                        RetrievedDemo, Retriever)
from .tokenize import tokenize

__all__ = [
    "BM25Index", "ScoredDoc",
    "FEATURE_KINDS", "StatementFeatures", "intersection_count",
    "program_features", "statement_features",
    "DEFAULT_PENALTY_WEIGHTS", "DEFAULT_REWARD_WEIGHTS", "ScoreBreakdown",
    "feature_score", "lascore", "statement_mismatch",
    "DEFAULT_DEMOS", "DEFAULT_TOP_N", "METHODS", "RetrievedDemo",
    "Retriever",
    "tokenize",
]
