"""Code tokenizer for sparse retrieval.

BM25 operates on token multisets; for code, identifiers, numbers and
operator glyphs all carry signal (§4.2 keeps BM25 as the syntactic-
robustness base of LAScore).
"""

from __future__ import annotations

import re
from typing import List

_TOKEN = re.compile(r"[A-Za-z_]\w*|\d+|\+=|-=|\*=|/=|<=|>=|==|[-+*/%<>=\[\]()]")

#: tokens too common in loop code to discriminate anything
_STOPWORDS = frozenset({"for", "if", "int", "double", "pragma", "scop",
                        "endscop", "omp", "parallel", "simd"})


def tokenize(text: str) -> List[str]:
    """Split code text into lowercase tokens, dropping boilerplate."""
    out: List[str] = []
    for tok in _TOKEN.findall(text):
        low = tok.lower()
        if low in _STOPWORDS:
            continue
        out.append(low)
    return out
