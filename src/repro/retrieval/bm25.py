"""Okapi BM25 over an in-memory inverted index.

Replaces the Elasticsearch 7.13.2 deployment of §5 — BM25 is a pure
function of the corpus (k1 = 1.2, b = 0.75, Lucene-style idf), so an
in-process index is behaviourally identical for our corpus sizes.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .tokenize import tokenize


@dataclass(frozen=True)
class ScoredDoc:
    doc_id: int
    score: float


class BM25Index:
    """Inverted index with Okapi BM25 scoring."""

    def __init__(self, k1: float = 1.2, b: float = 0.75) -> None:
        self.k1 = k1
        self.b = b
        self._docs: List[Counter] = []
        self._lengths: List[int] = []
        self._postings: Dict[str, List[Tuple[int, int]]] = {}
        self._avg_len = 0.0

    def __len__(self) -> int:
        return len(self._docs)

    def add(self, text: str) -> int:
        """Index a document; returns its id."""
        tokens = tokenize(text)
        counts = Counter(tokens)
        doc_id = len(self._docs)
        self._docs.append(counts)
        self._lengths.append(len(tokens))
        for term, tf in counts.items():
            self._postings.setdefault(term, []).append((doc_id, tf))
        total = sum(self._lengths)
        self._avg_len = total / len(self._lengths)
        return doc_id

    def idf(self, term: str) -> float:
        n = len(self._postings.get(term, ()))
        if n == 0:
            return 0.0
        N = len(self._docs)
        return math.log(1.0 + (N - n + 0.5) / (n + 0.5))

    def score(self, query_text: str, doc_id: int) -> float:
        """BM25 score of one document for a query.

        Re-tokenizes the query on every call; when scoring many
        documents for one query use :meth:`scores` instead.
        """
        counts = self._docs[doc_id]
        length = self._lengths[doc_id]
        score = 0.0
        for term in sorted(set(tokenize(query_text))):
            tf = counts.get(term, 0)
            if tf == 0:
                continue
            idf = self.idf(term)
            denom = tf + self.k1 * (1 - self.b
                                    + self.b * length / self._avg_len)
            score += idf * tf * (self.k1 + 1) / denom
        return score

    def scores(self, query_text: str) -> Dict[int, float]:
        """BM25 scores of every matching document for one query.

        Tokenizes the query once and walks each query term's postings
        list — O(|query terms| + total matching postings) — where
        calling :meth:`score` per document re-tokenizes and re-scores
        the full query for each of the N documents, O(N · |query|).
        Documents sharing no term with the query are absent (their BM25
        score is 0.0).  Terms are visited in sorted order so the
        floating-point accumulation matches :meth:`score` exactly and
        is independent of hash seeding.
        """
        candidates: Dict[int, float] = {}
        for term in sorted(set(tokenize(query_text))):
            idf = self.idf(term)
            if idf == 0.0:
                continue
            for doc_id, tf in self._postings.get(term, ()):
                length = self._lengths[doc_id]
                denom = tf + self.k1 * (1 - self.b + self.b * length
                                        / self._avg_len)
                candidates[doc_id] = candidates.get(doc_id, 0.0) + \
                    idf * tf * (self.k1 + 1) / denom
        return candidates

    def search(self, query_text: str, top_n: int = 10) -> List[ScoredDoc]:
        """Rank all documents containing at least one query term."""
        ranked = sorted(self.scores(query_text).items(),
                        key=lambda kv: (-kv[1], kv[0]))[:top_n]
        return [ScoredDoc(doc_id, score) for doc_id, score in ranked]
