"""LAScore — the loop-aware retrieval score (Eqs 1–5, §4.2).

``LAScore = SB + (SF − SM) / NS_T`` where

* ``SB`` is the BM25 base score (syntactic robustness),
* ``SM`` (Eq 1) penalises a statement-count mismatch,
* ``SF`` (Eq 4) sums per-statement, per-feature reward ``R`` (Eq 2,
  matched features) minus penalty ``P`` (Eq 3, *extra* features in the
  example — demonstrations of transformations the target cannot use),
  normalised by the target's feature count.

Sign convention: Eq 3 writes ``P = (Count(F_T∩F_E) − NF_E) × WP``, which
is ≤ 0; combined with Eq 4's ``R − P`` the net effect the text describes
("penalty applied when the example SCoP has more features") corresponds to
subtracting ``max(0, NF_E − Count∩) × WP``, which is what we compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from .features import (FEATURE_KINDS, StatementFeatures, intersection_count)

#: reward weight per feature kind (W_R in Eq 2)
DEFAULT_REWARD_WEIGHTS: Mapping[str, float] = {
    "schedule": 2.0, "write_index": 3.0, "read_index": 2.0}
#: penalty weight per feature kind (W_P in Eqs 1 and 3)
DEFAULT_PENALTY_WEIGHTS: Mapping[str, float] = {
    "schedule": 1.0, "write_index": 1.5, "read_index": 1.0}


@dataclass(frozen=True)
class ScoreBreakdown:
    """LAScore with its components, for inspection and tests."""

    base: float          # SB
    feature_score: float  # SF
    mismatch: float       # SM
    n_target_statements: int

    @property
    def weighted(self) -> float:
        return (self.feature_score - self.mismatch) / max(
            1, self.n_target_statements)

    @property
    def total(self) -> float:
        return self.base + self.weighted


def statement_mismatch(target: Sequence[StatementFeatures],
                       example: Sequence[StatementFeatures],
                       penalty_weights: Mapping[str, float]
                       ) -> float:
    """Eq 1: SM = |NS_T − NS_E| × Σ_j WP_j."""
    total_wp = sum(penalty_weights.get(kind, 1.0)
                   for kind in FEATURE_KINDS)
    return abs(len(target) - len(example)) * total_wp


def feature_score(target: Sequence[StatementFeatures],
                  example: Sequence[StatementFeatures],
                  reward_weights: Mapping[str, float],
                  penalty_weights: Mapping[str, float]) -> float:
    """Eqs 2–4: Σ_{i,j} (R_ij − P_ij) / NF_T_ij."""
    total = 0.0
    for t_feat, e_feat in zip(target, example):
        for kind in FEATURE_KINDS:
            t_counter = t_feat.counter(kind)
            e_counter = e_feat.counter(kind)
            nft = sum(t_counter.values())
            nfe = sum(e_counter.values())
            if nft == 0 and nfe == 0:
                continue
            matched = intersection_count(t_counter, e_counter)
            reward = matched * reward_weights.get(kind, 1.0)
            penalty = max(0, nfe - matched) * penalty_weights.get(kind, 1.0)
            total += (reward - penalty) / max(1, nft)
    return total


def lascore(target: Sequence[StatementFeatures],
            example: Sequence[StatementFeatures],
            base_score: float,
            reward_weights: Mapping[str, float] = DEFAULT_REWARD_WEIGHTS,
            penalty_weights: Mapping[str, float] = DEFAULT_PENALTY_WEIGHTS,
            ) -> ScoreBreakdown:
    """Eq 5: LAScore = SB + (SF − SM) / NS_T."""
    sm = statement_mismatch(target, example, penalty_weights)
    sf = feature_score(target, example, reward_weights, penalty_weights)
    return ScoreBreakdown(base=base_score, feature_score=sf, mismatch=sm,
                          n_target_statements=len(target))
