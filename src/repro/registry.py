"""A minimal component registry.

The service API (:mod:`repro.api`) assembles pipelines from *named*
parts — LLM backends, base compilers, optimizing compilers, retrieval
methods, transforms — instead of hard-coding constructors.  Each family
of parts is one :class:`Registry`; registering a new implementation
makes it addressable from every entry point (``OptimizerSession``,
``repro serve-batch``, recipes) without touching the call sites.

This module is dependency-free on purpose: low-level packages (e.g.
:mod:`repro.transforms`) host their own registries without importing
the high-level API package.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, Optional, Tuple


class UnknownComponentError(ValueError):
    """Lookup of a name that was never registered.

    Always carries the full list of registered names in the message, so
    a typo in a backend/method name is immediately actionable.
    """

    def __init__(self, kind: str, name: str,
                 registered: Tuple[str, ...]) -> None:
        self.kind = kind
        self.name = name
        self.registered = registered
        options = ", ".join(registered) if registered else "<none>"
        super().__init__(
            f"unknown {kind} {name!r}; registered: {options}")


class DuplicateComponentError(ValueError):
    """Registration under a name that is already taken."""


class Registry:
    """A named, ordered, thread-safe mapping of component factories.

    ``kind`` is the human-readable family name used in error messages
    ("LLM backend", "retrieval method", ...).  Registration order is
    preserved — ``names()`` doubles as the documented default ordering.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def register(self, name: str, value: Any,
                 overwrite: bool = False) -> Any:
        """Register ``value`` under ``name``; returns ``value``.

        Use as a decorator (``@registry.register_as("x")``) or a call.
        Duplicate names raise unless ``overwrite=True`` — silently
        shadowing a built-in is how plugin bugs hide.
        """
        with self._lock:
            if name in self._entries and not overwrite:
                raise DuplicateComponentError(
                    f"{self.kind} {name!r} is already registered; "
                    f"pass overwrite=True to replace it")
            self._entries[name] = value
        return value

    def register_as(self, name: str,
                    overwrite: bool = False) -> Callable[[Any], Any]:
        """Decorator form of :meth:`register`."""
        def _decorate(value: Any) -> Any:
            return self.register(name, value, overwrite=overwrite)
        return _decorate

    def unregister(self, name: str) -> None:
        with self._lock:
            self._entries.pop(name, None)

    # ------------------------------------------------------------------
    def get(self, name: str) -> Any:
        """The registered value, or :class:`UnknownComponentError`."""
        with self._lock:
            if name not in self._entries:
                raise UnknownComponentError(self.kind, name,
                                            tuple(self._entries))
            return self._entries[name]

    def maybe(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._entries.get(name)

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def items(self) -> Tuple[Tuple[str, Any], ...]:
        with self._lock:
            return tuple(self._entries.items())

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return dict(self._entries)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.names()})"
