"""Scalar renaming of reductions (register accumulation).

§6.3 notes LOOPRAG can beat PLuTo partly via auxiliary techniques like
scalar renaming of reductions.  Marking ``reg_accum`` on an accumulation
statement models hoisting the running sum into a register across the
innermost loop: semantics are unchanged, the store traffic disappears from
the cost model.  Legal only when the written element is invariant in the
statement's innermost loop.
"""

from __future__ import annotations

from ..ir.program import Program
from .base import TransformError, pad_statements


def accumulate_in_register(program: Program, stmt_name: str) -> Program:
    """Set ``reg_accum`` on a reduction statement."""
    program = pad_statements(program)
    try:
        stmt = program.statement(stmt_name)
    except KeyError:
        raise TransformError(f"unknown statement {stmt_name!r}") from None
    if stmt.body.op not in ("+=", "-=", "*="):
        raise TransformError(
            f"{stmt_name} is not an accumulation ({stmt.body.op})")
    if stmt.reg_accum:
        raise TransformError(f"{stmt_name} already accumulates in register")
    inner_iter = None
    for col in range(len(stmt.schedule.dims) - 1, -1, -1):
        dim = stmt.schedule.dims[col]
        if dim.is_dynamic:
            own = set(stmt.domain.iterator_names)
            cands = [v for v in dim.expr.variables() if v in own]
            inner_iter = cands[-1] if cands else None
            break
    if inner_iter is not None:
        for ix in stmt.body.lhs.indices:
            if ix.coeff(inner_iter) != 0:
                raise TransformError(
                    f"{stmt_name} writes a location varying with the "
                    f"innermost loop '{inner_iter}'; register accumulation "
                    "would change semantics")
    new = stmt.with_reg_accum(True)
    return program.with_statement(stmt_name, new).with_provenance(
        f"reg_accum({stmt_name})")
