"""Loop tiling: block a band of schedule dimensions.

For a band of columns ``[c0, c1, ...]`` with sizes ``[b0, b1, ...]`` the
transform prepends tile dimensions ``floor(e/b)`` at the band's first
column, exactly PLuTo's rectangular tiling in schedule form: the executed
order becomes tiles-lexicographic, then points within a tile.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..ir.program import Program
from ..ir.schedule import ConstDim, Schedule, TileDim
from .base import (TransformError, pad_statements, rebuild, selected,
                   shift_pragma_columns)

DEFAULT_TILE = 32


def tile(program: Program, columns: Sequence[int],
         sizes: Union[int, Sequence[int]] = DEFAULT_TILE,
         stmts: Optional[Sequence[str]] = None,
         at: Optional[int] = None) -> Program:
    """Tile the band formed by ``columns`` (aligned schedule columns).

    The tile dimensions are inserted at column ``at`` (default: in front of
    the band).  Passing an earlier column hoists the tile loops above
    intervening loops — how PLuTo places the tile loop of an inner
    reduction dimension outside the point band.
    """
    if not columns:
        raise TransformError("tile needs at least one column")
    if isinstance(sizes, int):
        sizes = [sizes] * len(columns)
    if len(sizes) != len(columns):
        raise TransformError("one tile size per tiled column required")
    if any(b <= 1 for b in sizes):
        raise TransformError(f"tile sizes must exceed 1, got {list(sizes)}")
    program = pad_statements(program)
    width = program.schedule_width
    for col in columns:
        if not 0 <= col < width:
            raise TransformError(f"column {col} out of width {width}")
    if sorted(set(columns)) != list(columns):
        raise TransformError("band columns must be strictly increasing")
    chosen = selected(program, stmts)
    insert_at = columns[0] if at is None else at
    if not 0 <= insert_at <= columns[0]:
        raise TransformError(
            f"tile insertion point {insert_at} must lie in [0, "
            f"{columns[0]}]")
    new_stmts = []
    any_dynamic = False
    for stmt in program.statements:
        dims = list(stmt.schedule.dims)
        new_dims = []
        for col, size in zip(columns, sizes):
            dim = dims[col]
            if stmt.name in chosen and dim.is_dynamic:
                new_dims.append(TileDim(dim.expr, size))
                any_dynamic = True
            elif dim.is_dynamic:
                # statement not selected: keep ordering via a copy
                new_dims.append(dim)
            else:
                new_dims.append(ConstDim(dim.value))
        new_stmts.append(stmt.with_schedule(
            Schedule(tuple(dims)).insert_dims(insert_at, new_dims)))
    if not any_dynamic:
        raise TransformError("tile band contains no dynamic dimension")
    out = rebuild(program, new_stmts,
                  f"tile(cols={list(columns)},sizes={list(sizes)})")
    out = out.with_parallel(
        shift_pragma_columns(out.parallel_dims, insert_at, len(columns)))
    out = out.with_vector(
        shift_pragma_columns(out.vector_dims, insert_at, len(columns)))
    return out
