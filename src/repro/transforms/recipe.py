"""Transformation recipes: named, replayable compositions.

A recipe is the serialized form of "what the optimizer did": the dataset
stores one per optimized example (so the retriever can hand an LLM the
composition behind a demonstration), Table 4 counts the kinds appearing in
a corpus, and the simulated LLM adapts recipes from demonstrations onto
target programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..ir.program import Program
from ..registry import Registry, UnknownComponentError
from .base import TransformError
from .fusion import distribute, fuse
from .interchange import interchange
from .parallel import parallelize, vectorize
from .scalar import accumulate_in_register
from .skewing import shift, skew
from .tiling import tile

#: Transformation kinds (Table 4 vocabulary + pragmas + scalar renaming).
KIND_TILING = "tiling"
KIND_INTERCHANGE = "interchange"
KIND_SKEWING = "skewing"
KIND_FUSION = "fusion"
KIND_DISTRIBUTION = "distribution"
KIND_SHIFTING = "shifting"
KIND_PARALLEL = "parallel"
KIND_VECTORIZE = "vectorize"
KIND_REG_ACCUM = "reg_accum"

LOOP_KINDS = (KIND_TILING, KIND_INTERCHANGE, KIND_SKEWING, KIND_FUSION,
              KIND_DISTRIBUTION, KIND_SHIFTING)
ALL_KINDS = LOOP_KINDS + (KIND_PARALLEL, KIND_VECTORIZE, KIND_REG_ACCUM)

#: transform appliers by kind: ``(program, args dict) -> Program``.
#: :meth:`TransformStep.apply` dispatches through this registry, so new
#: transformations plug in by registering an applier — recipes, the
#: simulated LLMs and the compilers all pick them up by name.
TRANSFORMS = Registry("transformation kind")


@TRANSFORMS.register_as(KIND_TILING)
def _apply_tiling(program: Program, args: Dict[str, Any]) -> Program:
    return tile(program, args["columns"], args.get("sizes", 32),
                args.get("stmts"), args.get("at"))


@TRANSFORMS.register_as(KIND_INTERCHANGE)
def _apply_interchange(program: Program, args: Dict[str, Any]) -> Program:
    return interchange(program, args["col_a"], args["col_b"],
                       args.get("stmts"))


@TRANSFORMS.register_as(KIND_SKEWING)
def _apply_skewing(program: Program, args: Dict[str, Any]) -> Program:
    return skew(program, args["target_col"], args["source_col"],
                args["factor"], args.get("stmts"))


@TRANSFORMS.register_as(KIND_FUSION)
def _apply_fusion(program: Program, args: Dict[str, Any]) -> Program:
    return fuse(program, args["col"], args.get("stmts"))


@TRANSFORMS.register_as(KIND_DISTRIBUTION)
def _apply_distribution(program: Program, args: Dict[str, Any]) -> Program:
    return distribute(program, args["col"], args.get("stmts"))


@TRANSFORMS.register_as(KIND_SHIFTING)
def _apply_shifting(program: Program, args: Dict[str, Any]) -> Program:
    return shift(program, args["stmt"], args["col"], args["offset"])


@TRANSFORMS.register_as(KIND_PARALLEL)
def _apply_parallel(program: Program, args: Dict[str, Any]) -> Program:
    return parallelize(program, args["col"])


@TRANSFORMS.register_as(KIND_VECTORIZE)
def _apply_vectorize(program: Program, args: Dict[str, Any]) -> Program:
    return vectorize(program, args["col"])


@TRANSFORMS.register_as(KIND_REG_ACCUM)
def _apply_reg_accum(program: Program, args: Dict[str, Any]) -> Program:
    return accumulate_in_register(program, args["stmt"])


def _resolve_applier(kind: str):
    """Registry lookup re-raised as the package's own error type."""
    try:
        return TRANSFORMS.get(kind)
    except UnknownComponentError as exc:
        raise TransformError(str(exc)) from None


@dataclass(frozen=True)
class TransformStep:
    """One transformation with its arguments."""

    kind: str
    args: Tuple[Tuple[str, Any], ...] = ()

    @staticmethod
    def make(kind: str, **args: Any) -> "TransformStep":
        _resolve_applier(kind)  # validate eagerly
        frozen = tuple(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in args.items()))
        return TransformStep(kind, frozen)

    def arg_dict(self) -> Dict[str, Any]:
        return {k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.args}

    def apply(self, program: Program) -> Program:
        return _resolve_applier(self.kind)(program, self.arg_dict())

    def __str__(self) -> str:
        rendered = ", ".join(f"{k}={v}" for k, v in self.args)
        return f"{self.kind}({rendered})"


@dataclass(frozen=True)
class TransformRecipe:
    """An ordered sequence of steps applied to a program."""

    steps: Tuple[TransformStep, ...] = ()

    @staticmethod
    def of(*steps: TransformStep) -> "TransformRecipe":
        return TransformRecipe(tuple(steps))

    def __len__(self) -> int:
        return len(self.steps)

    def __bool__(self) -> bool:
        return bool(self.steps)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(step.kind for step in self.steps))

    def extended(self, step: TransformStep) -> "TransformRecipe":
        return TransformRecipe(self.steps + (step,))

    def without(self, index: int) -> "TransformRecipe":
        return TransformRecipe(
            self.steps[:index] + self.steps[index + 1:])

    def apply(self, program: Program) -> Program:
        """Apply all steps; raises :class:`TransformError` on failure."""
        for step in self.steps:
            program = step.apply(program)
        return program

    def try_apply(self, program: Program) -> Tuple[Program, List[int]]:
        """Apply what applies; return (program, indices of skipped steps)."""
        skipped: List[int] = []
        for index, step in enumerate(self.steps):
            try:
                program = step.apply(program)
            except TransformError:
                skipped.append(index)
        return program, skipped

    def describe(self) -> str:
        if not self.steps:
            return "<identity>"
        return " ; ".join(str(s) for s in self.steps)

    def __str__(self) -> str:
        return self.describe()
