"""Loop interchange: permute two schedule dimensions.

The classic enabling transformation for stride/locality repair (§2.2): the
``syrk`` demonstration interchanges ``k`` and ``j`` so the innermost loop
walks rows of ``A`` contiguously.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.program import Program
from .base import TransformError, pad_statements, rebuild, selected


def interchange(program: Program, col_a: int, col_b: int,
                stmts: Optional[Sequence[str]] = None) -> Program:
    """Swap schedule columns ``col_a`` and ``col_b`` for chosen statements."""
    if col_a == col_b:
        raise TransformError("interchange needs two distinct columns")
    program = pad_statements(program)
    width = program.schedule_width
    for col in (col_a, col_b):
        if not 0 <= col < width:
            raise TransformError(
                f"column {col} out of schedule width {width}")
    chosen = selected(program, stmts)
    new_stmts = []
    touched = False
    for stmt in program.statements:
        if stmt.name not in chosen:
            new_stmts.append(stmt)
            continue
        dims = list(stmt.schedule.dims)
        if not (dims[col_a].is_dynamic or dims[col_b].is_dynamic):
            new_stmts.append(stmt)
            continue
        dims[col_a], dims[col_b] = dims[col_b], dims[col_a]
        touched = True
        new_stmts.append(stmt.with_schedule(
            stmt.schedule.__class__(tuple(dims))))
    if not touched:
        raise TransformError(
            f"interchange({col_a},{col_b}) touches no dynamic dimension")
    return rebuild(program, new_stmts, f"interchange({col_a},{col_b})")
