"""Loop transformations over SCoP schedules (§2.2 vocabulary)."""

from .base import (TransformError, const_column_before, dynamic_columns,
                   innermost_column, pad_statements, shared_band,
                   statement_loop_columns)
from .fusion import distribute, fuse
from .interchange import interchange
from .parallel import parallelize, vectorize
from .recipe import (ALL_KINDS, KIND_DISTRIBUTION, KIND_FUSION,
                     KIND_INTERCHANGE, KIND_PARALLEL, KIND_REG_ACCUM,
                     KIND_SHIFTING, KIND_SKEWING, KIND_TILING,
                     KIND_VECTORIZE, LOOP_KINDS, TRANSFORMS,
                     TransformRecipe, TransformStep)
from .scalar import accumulate_in_register
from .skewing import shift, skew
from .tiling import DEFAULT_TILE, tile

__all__ = [
    "TransformError", "const_column_before", "dynamic_columns",
    "innermost_column", "pad_statements", "shared_band",
    "statement_loop_columns",
    "distribute", "fuse", "interchange", "parallelize", "vectorize",
    "ALL_KINDS", "KIND_DISTRIBUTION", "KIND_FUSION", "KIND_INTERCHANGE",
    "KIND_PARALLEL", "KIND_REG_ACCUM", "KIND_SHIFTING", "KIND_SKEWING",
    "KIND_TILING", "KIND_VECTORIZE", "LOOP_KINDS", "TRANSFORMS",
    "TransformRecipe", "TransformStep",
    "accumulate_in_register", "shift", "skew", "tile", "DEFAULT_TILE",
]
