"""Parallelization and vectorization pragmas.

These mark schedule columns as ``#pragma omp parallel for`` / vectorized.
They change modeled cost only; legality is validated against dependences
exactly like schedule rewrites (`repro.analysis.is_parallel_dim`).
"""

from __future__ import annotations

from ..ir.program import Program
from .base import TransformError, dynamic_columns, pad_statements


def parallelize(program: Program, col: int) -> Program:
    """Mark aligned schedule column ``col`` as an OpenMP parallel loop."""
    program = pad_statements(program)
    if col not in dynamic_columns(program):
        raise TransformError(
            f"column {col} is not a loop dimension of any statement")
    if col in program.parallel_dims:
        raise TransformError(f"column {col} is already parallel")
    out = program.with_parallel(program.parallel_dims | {col})
    return out.with_provenance(f"parallel(col={col})")


def vectorize(program: Program, col: int) -> Program:
    """Mark aligned schedule column ``col`` as vectorized (SIMD)."""
    program = pad_statements(program)
    if col not in dynamic_columns(program):
        raise TransformError(
            f"column {col} is not a loop dimension of any statement")
    if col in program.vector_dims:
        raise TransformError(f"column {col} is already vectorized")
    out = program.with_vector(program.vector_dims | {col})
    return out.with_provenance(f"vectorize(col={col})")
