"""Loop skewing and shifting: affine rewrites of schedule dimensions.

Skewing replaces dimension ``t`` by ``t + f*s`` (wavefront schedules for
stencils, Listing 4/5 of the paper); shifting adds a per-statement constant
offset to align iterations across fused statements (Listing 5's
``t3 - t4 < t4`` alignment).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.program import Program
from ..ir.schedule import LoopDim, TileDim
from .base import TransformError, pad_statements, rebuild, selected


def skew(program: Program, target_col: int, source_col: int, factor: int,
         stmts: Optional[Sequence[str]] = None) -> Program:
    """Rewrite ``dims[target] += factor * dims[source]`` (both dynamic)."""
    if factor == 0:
        raise TransformError("skew factor must be non-zero")
    if target_col == source_col:
        raise TransformError("skew needs distinct target/source columns")
    program = pad_statements(program)
    chosen = selected(program, stmts)
    new_stmts = []
    touched = False
    for stmt in program.statements:
        sched = stmt.schedule
        if (stmt.name not in chosen
                or target_col >= len(sched.dims)
                or source_col >= len(sched.dims)):
            new_stmts.append(stmt)
            continue
        tdim = sched.dims[target_col]
        sdim = sched.dims[source_col]
        if not (tdim.is_dynamic and sdim.is_dynamic):
            new_stmts.append(stmt)
            continue
        if isinstance(tdim, TileDim) or isinstance(sdim, TileDim):
            raise TransformError("skewing tile dimensions is not supported")
        new_expr = tdim.expr + sdim.expr * factor
        new_stmts.append(stmt.with_schedule(
            sched.with_dim(target_col, LoopDim(new_expr))))
        touched = True
    if not touched:
        raise TransformError(
            f"skew({target_col},{source_col}) touches no statement")
    return rebuild(program, new_stmts,
                   f"skew(t={target_col},s={source_col},f={factor})")


def shift(program: Program, stmt_name: str, col: int,
          offset: int) -> Program:
    """Add ``offset`` to one statement's dimension at ``col``."""
    if offset == 0:
        raise TransformError("shift offset must be non-zero")
    program = pad_statements(program)
    names = [s.name for s in program.statements]
    if stmt_name not in names:
        raise TransformError(f"unknown statement {stmt_name!r}")
    new_stmts = []
    for stmt in program.statements:
        if stmt.name != stmt_name:
            new_stmts.append(stmt)
            continue
        sched = stmt.schedule
        if col >= len(sched.dims) or not sched.dims[col].is_dynamic:
            raise TransformError(
                f"column {col} is not a loop dimension of {stmt_name}")
        dim = sched.dims[col]
        if isinstance(dim, TileDim):
            raise TransformError("shifting a tile dimension is not supported")
        new_stmts.append(stmt.with_schedule(
            sched.with_dim(col, LoopDim(dim.expr + offset))))
    return rebuild(program, new_stmts,
                   f"shift({stmt_name},col={col},off={offset})")
