"""Shared plumbing for loop transformations.

Transformations are pure functions ``Program -> Program`` that rewrite
statement schedules (and occasionally guards/flags).  They do **not**
guarantee legality: that mirrors reality — a compiler pass must consult the
dependence checker before keeping a rewrite, while an LLM persona may skip
that step and emit a semantically broken candidate.  Legality lives in
``repro.analysis.dependences``.

Schedule dimensions are addressed by *aligned column index*: the position
in the program-wide padded schedule matrix (see
:meth:`Program.aligned_schedules`).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..ir.program import Program
from ..ir.schedule import ConstDim, LoopDim, Schedule, TileDim
from ..ir.statement import Statement


class TransformError(ValueError):
    """A transformation that cannot be applied to this program."""


def pad_statements(program: Program) -> Program:
    """Return an equivalent program with all schedules at equal width."""
    width = program.schedule_width
    stmts = [s.with_schedule(s.schedule.padded(width))
             for s in program.statements]
    return program.with_statements(stmts)


def dynamic_columns(program: Program) -> List[int]:
    """Columns that are dynamic (loop/tile) for at least one statement."""
    width = program.schedule_width
    cols: List[int] = []
    schedules = program.aligned_schedules()
    for col in range(width):
        if any(sched.dims[col].is_dynamic for sched in schedules):
            cols.append(col)
    return cols


def shared_band(program: Program) -> List[int]:
    """Columns dynamic for *every* statement — the fusable/tilable band."""
    schedules = program.aligned_schedules()
    width = program.schedule_width
    return [col for col in range(width)
            if all(sched.dims[col].is_dynamic for sched in schedules)]


def statement_loop_columns(program: Program, stmt_name: str) -> List[int]:
    """Dynamic columns of one statement, outermost first."""
    idx = [s.name for s in program.statements].index(stmt_name)
    sched = program.aligned_schedules()[idx]
    return [col for col, dim in enumerate(sched.dims) if dim.is_dynamic]


def innermost_column(program: Program, stmt_name: str) -> Optional[int]:
    cols = statement_loop_columns(program, stmt_name)
    return cols[-1] if cols else None


def const_column_before(program: Program, loop_col: int) -> Optional[int]:
    """The closest column left of ``loop_col`` that is constant everywhere.

    Fusion/distribution act on these "text" columns (the 2d+1 constants).
    """
    schedules = program.aligned_schedules()
    for col in range(loop_col - 1, -1, -1):
        if all(not sched.dims[col].is_dynamic for sched in schedules):
            return col
    return None


def selected(program: Program,
             stmts: Optional[Sequence[str]]) -> Set[str]:
    """Resolve an optional statement-name selection (default: all)."""
    names = {s.name for s in program.statements}
    if stmts is None:
        return names
    chosen = set(stmts)
    unknown = chosen - names
    if unknown:
        raise TransformError(f"unknown statements {sorted(unknown)}")
    return chosen


def shift_pragma_columns(dims: FrozenSet[int], at: int,
                         count: int) -> FrozenSet[int]:
    """Remap pragma column indices after inserting ``count`` dims at ``at``."""
    return frozenset(d if d < at else d + count for d in dims)


def rebuild(program: Program, stmts: Sequence[Statement],
            note: str) -> Program:
    return program.with_statements(stmts).with_provenance(note)
