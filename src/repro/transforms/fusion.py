"""Loop fusion and distribution: rewrite the 2d+1 text dimensions.

Fusion makes statements share a loop level by equalising the constant
dimension in front of it (the ``syrk`` demonstration fuses ``S1`` into the
tiled ``t4`` loop).  Distribution is the inverse: it separates statements
into consecutive loop nests by assigning increasing constants.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..ir.program import Program
from ..ir.schedule import ConstDim
from .base import TransformError, pad_statements, rebuild, selected


def _const_col(program: Program, col: int, names) -> None:
    width = program.schedule_width
    if not 0 <= col < width:
        raise TransformError(f"column {col} out of schedule width {width}")
    for stmt, sched in zip(program.statements, program.aligned_schedules()):
        if stmt.name in names and sched.dims[col].is_dynamic:
            raise TransformError(
                f"column {col} is a loop dimension of {stmt.name}; fusion "
                "and distribution act on constant (text) dimensions")


def fuse(program: Program, col: int,
         stmts: Optional[Sequence[str]] = None) -> Program:
    """Give the chosen statements the same constant at column ``col``."""
    program = pad_statements(program)
    chosen = selected(program, stmts)
    if len(chosen) < 2:
        raise TransformError("fusion needs at least two statements")
    _const_col(program, col, chosen)
    values = [sched.dims[col].value
              for stmt, sched in zip(program.statements,
                                     program.aligned_schedules())
              if stmt.name in chosen]
    if len(set(values)) == 1:
        raise TransformError(
            f"statements already share constant {values[0]} at column {col}")
    target = min(values)
    new_stmts = []
    # deeper text positions keep original textual order inside the fused loop
    order = 0
    for stmt in program.statements:
        if stmt.name not in chosen:
            new_stmts.append(stmt)
            continue
        sched = stmt.schedule.padded(program.schedule_width)
        sched = sched.with_dim(col, ConstDim(target))
        # renumber the *next* constant column to keep in-loop order stable
        for nxt in range(col + 1, len(sched.dims)):
            if not sched.dims[nxt].is_dynamic:
                sched = sched.with_dim(nxt, ConstDim(order))
                break
        order += 1
        new_stmts.append(stmt.with_schedule(sched))
    return rebuild(program, new_stmts, f"fuse(col={col})")


def distribute(program: Program, col: int,
               stmts: Optional[Sequence[str]] = None) -> Program:
    """Assign increasing constants at ``col`` to split a fused loop."""
    program = pad_statements(program)
    chosen = selected(program, stmts)
    if len(chosen) < 2:
        raise TransformError("distribution needs at least two statements")
    _const_col(program, col, chosen)
    base = min(sched.dims[col].value
               for stmt, sched in zip(program.statements,
                                      program.aligned_schedules())
               if stmt.name in chosen)
    new_stmts = []
    offset = 0
    for stmt in program.statements:
        if stmt.name not in chosen:
            new_stmts.append(stmt)
            continue
        sched = stmt.schedule.padded(program.schedule_width)
        sched = sched.with_dim(col, ConstDim(base + offset))
        offset += 1
        new_stmts.append(stmt.with_schedule(sched))
    if offset < 2:
        raise TransformError("distribution selected fewer than 2 statements")
    return rebuild(program, new_stmts, f"distribute(col={col})")
