"""Simulated LLMs: prompts (Appendix E), personas, generation."""

from .adapt import (Intent, intents_from_recipe, materialize,
                    semantic_slip, syntax_slip)
from .personas import (DEEPSEEK_V25, DEEPSEEK_V3, GPT_4O, PERSONAS,
                       Persona)
from .prompts import (AttemptRecord, KIND_BASE, KIND_COMPILE_FEEDBACK,
                      KIND_DEMO, KIND_TEST_RANK_FEEDBACK, Prompt,
                      base_prompt, compile_feedback_prompt, demo_prompt,
                      test_rank_feedback_prompt)
from .simulated import LLMResponse, SimulatedLLM

__all__ = [
    "Intent", "intents_from_recipe", "materialize", "semantic_slip",
    "syntax_slip",
    "DEEPSEEK_V25", "DEEPSEEK_V3", "GPT_4O", "PERSONAS", "Persona",
    "AttemptRecord", "KIND_BASE", "KIND_COMPILE_FEEDBACK", "KIND_DEMO",
    "KIND_TEST_RANK_FEEDBACK", "Prompt", "base_prompt",
    "compile_feedback_prompt", "demo_prompt", "test_rank_feedback_prompt",
    "LLMResponse", "SimulatedLLM",
]
