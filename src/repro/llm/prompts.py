"""Prompt construction (Appendix E).

Prompt *text* is built exactly in the paper's four shapes — base,
demonstration, compilation-feedback, and testing-results + performance-
rankings feedback.  The simulated LLM also receives the structured payload
(target program, demonstrations, feedback records); the text is the
human-auditable rendering that a real LLM would consume, and examples
print it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir.program import Program
from ..retrieval.retriever import RetrievedDemo

GENERATION_RULES = (
    "Here are some generation rules: 1. Provide one optimized code. "
    "2. Do not include the original C program in your response. "
    "3. Do not define new function. 4. Existed variables do not need to "
    "be redefined. If you generate new variable for computing, please "
    "use the double type. 5. Put your code in markdown code block.")

KIND_BASE = "base"
KIND_DEMO = "demo"
KIND_COMPILE_FEEDBACK = "compile-feedback"
KIND_TEST_RANK_FEEDBACK = "test-rank-feedback"


@dataclass(frozen=True)
class AttemptRecord:
    """One prior candidate shown in the feedback prompt."""

    index: int
    code_text: str
    program: Optional[Program]
    passed: bool
    seconds: Optional[float]


@dataclass(frozen=True)
class Prompt:
    """Prompt text plus the structured payload the simulated LLM reads."""

    kind: str
    text: str
    target: Program
    target_text: str
    demos: Tuple[RetrievedDemo, ...] = ()
    compile_error: Optional[str] = None
    last_program: Optional[Program] = None
    attempts: Tuple[AttemptRecord, ...] = ()


def base_prompt(target: Program, target_text: str) -> Prompt:
    """Appendix E.1 — the baseline-LLM prompt."""
    text = ("As a compiler, given the C program below, improve its "
            "performance using meaning-preserving loop transformation "
            f"methods:\n\n{target_text}\n\n{GENERATION_RULES}")
    return Prompt(kind=KIND_BASE, text=text, target=target,
                  target_text=target_text)


def demo_prompt(target: Program, target_text: str,
                demos: Sequence[RetrievedDemo]) -> Prompt:
    """Appendix E.2 — generation step 1 with demonstrations."""
    blocks: List[str] = []
    for demo in demos:
        blocks.append("// original code\n" + demo.entry.example_text)
        blocks.append("// optimized code\n" + demo.entry.optimized_text)
    text = ("\n\n".join(blocks)
            + "\n\nPlease analyze what meaning-preserving loop "
              "transformation methods are used in above examples, and "
              "tell me what you learn.\n\n"
              "please use appropriate methods you learn from examples to "
              f"improve its performance:\n\n{target_text}\n\n"
            + GENERATION_RULES)
    return Prompt(kind=KIND_DEMO, text=text, target=target,
                  target_text=target_text, demos=tuple(demos))


def compile_feedback_prompt(previous: Prompt, last_code: str,
                            last_program: Optional[Program],
                            error: str) -> Prompt:
    """Appendix E.3 — regenerate after a compilation error."""
    text = (f"This optimized version:\n\n{last_code}\n\n"
            "did a wrong transformation from the source code, resulting "
            "in a compilation error. This is the compiler error "
            f"message:\n\n{error}\n\n"
            "Please check the optimized code and regenerate it.")
    return Prompt(kind=KIND_COMPILE_FEEDBACK, text=text,
                  target=previous.target, target_text=previous.target_text,
                  demos=previous.demos, compile_error=error,
                  last_program=last_program)


def test_rank_feedback_prompt(previous: Prompt,
                              attempts: Sequence[AttemptRecord]) -> Prompt:
    """Appendix E.4 — testing results + performance rankings feedback."""
    blocks: List[str] = []
    for record in attempts:
        label = "Available" if record.passed else "Failed"
        blocks.append(f"{label} Example [{record.index}]:\n"
                      + record.code_text)
    passing = sorted((r for r in attempts if r.passed),
                     key=lambda r: r.seconds or float("inf"))
    rank_line = " > ".join(str(r.index) for r in passing) or "(none)"
    failed_line = ", ".join(str(r.index) for r in attempts
                            if not r.passed) or "(none)"
    text = ("\n\n".join(blocks)
            + "\n\nThe above examples are optimized by LLMs using "
              "meaning-preserving loop transformation methods. Available "
              "examples pass compilation, execution and equivalence "
              "checks; failed examples do not. Here is the original "
              f"code:\n\n{previous.target_text}\n\n"
              f"Performance rank result (\">\" means better than):\n"
              f"{rank_line}\nFailed: {failed_line}\n\n"
              "Task: Analyze why available examples succeeded and failed "
              "examples broke correctness. Improve the performance of "
              "original code using the highest-impact meaning-preserving "
              "loop transformation methods learnt from the ranked "
              "examples.")
    return Prompt(kind=KIND_TEST_RANK_FEEDBACK, text=text,
                  target=previous.target, target_text=previous.target_text,
                  demos=previous.demos, attempts=tuple(attempts))
