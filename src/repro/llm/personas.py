"""Simulated-LLM personas.

A persona is the behavioural profile of one model: which transformations
it can produce unprompted, how reliably it adopts demonstrated ones, and
how often it slips (syntax errors → CE, semantic corruption → IA/RE).
Profiles are calibrated against the paper's observed marginals:

* base GPT-4/DeepSeek rarely tile and only sometimes parallelize (Fig 1,
  Table 2's ~1.6× PolyBench speedups; the ``gemm`` case study's scalar-
  temp rewrite in Listing 7);
* with demonstrations they adopt most demonstrated steps (Listing 1);
* compilation feedback repairs most CE cases in round one (Table 7's
  +14-22% pass@k), less in round two;
* ``deepseek-v3-0324`` edges out ``gpt-4o-2024-08-06`` in adoption and
  slip rates (§6.2.2 attributes DeepSeek's wins to recency), while the
  older ``deepseek-v2.5`` trails GPT-4.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class Persona:
    """Behavioural profile of one simulated LLM."""

    name: str
    model_id: str
    #: transformation kinds the model applies without demonstrations
    repertoire: Tuple[str, ...]
    p_attempt: float          # tries any loop transformation at all
    p_parallel: float         # adds "#pragma omp parallel for" unprompted
    p_vectorize: float        # adds "#pragma omp simd" unprompted
    p_reg_accum: float        # scalar-renames reductions (Listing 7)
    p_adopt_step: float       # adopts each demonstrated step
    p_skip_legality: float    # applies a transform without dependence care
    p_semantic_slip: float    # corrupts the candidate (bounds/guards)
    p_syntax_slip: float      # emits a non-compiling candidate
    p_fix_compile: float      # repairs given compiler diagnostics
    p_fix_compile_round2: float
    p_drop_bad_step: float    # removes suspect step after test failure
    #: probability of systematically misreading a kernel when rewriting it
    #: with demonstrations (scaled by kernel complexity; halved without
    #: demonstrations, where the model rewrites less).  A misread corrupts
    #: *every* candidate the same way — the correlated failure mode that
    #: bounds pass@k in Fig 1 / Tables 1-2.
    p_misread: float = 0.55
    #: probability that testing-results feedback snaps the model out of a
    #: semantic misread (Table 7's test+rank gains)
    p_recover: float = 0.30
    tile_size: int = 32

    def with_seedless_name(self, suffix: str) -> "Persona":
        return replace(self, name=f"{self.name}-{suffix}")


DEEPSEEK_V3 = Persona(
    name="deepseek",
    model_id="deepseek-v3-0324",
    repertoire=("interchange", "fusion", "reg_accum"),
    p_attempt=0.95,
    p_parallel=0.55,
    p_vectorize=0.35,
    p_reg_accum=0.45,
    p_adopt_step=0.90,
    p_skip_legality=0.35,
    p_semantic_slip=0.16,
    p_syntax_slip=0.10,
    p_fix_compile=0.80,
    p_fix_compile_round2=0.45,
    p_drop_bad_step=0.75,
    p_misread=0.52,
    p_recover=0.32,
)

GPT_4O = Persona(
    name="gpt4",
    model_id="gpt-4o-2024-08-06",
    repertoire=("interchange", "fusion", "reg_accum"),
    p_attempt=0.95,
    p_parallel=0.45,
    p_vectorize=0.30,
    p_reg_accum=0.40,
    p_adopt_step=0.82,
    p_skip_legality=0.40,
    p_semantic_slip=0.18,
    p_syntax_slip=0.12,
    p_fix_compile=0.75,
    p_fix_compile_round2=0.40,
    p_drop_bad_step=0.70,
    p_misread=0.62,
    p_recover=0.26,
)

DEEPSEEK_V25 = Persona(
    name="deepseek-v2.5",
    model_id="deepseek-v2.5",
    repertoire=("interchange", "reg_accum"),
    p_attempt=0.90,
    p_parallel=0.40,
    p_vectorize=0.25,
    p_reg_accum=0.35,
    p_adopt_step=0.72,
    p_skip_legality=0.45,
    p_semantic_slip=0.22,
    p_syntax_slip=0.15,
    p_fix_compile=0.65,
    p_fix_compile_round2=0.35,
    p_drop_bad_step=0.60,
    p_misread=0.75,
    p_recover=0.18,
)

PERSONAS = {p.name: p for p in (DEEPSEEK_V3, GPT_4O, DEEPSEEK_V25)}
