"""The simulated LLM.

``SimulatedLLM`` is a stateful chat session: it consumes the prompts of
Appendix E and emits candidate *code* (a transformed program plus its
pseudo-C rendering).  The pipeline treats responses as opaque — it
validates, tests and times them exactly as it would real LLM output; all
five failure classes (CE/IA/RE/ET/IC) arise from genuine mechanisms.

Behaviour per prompt kind:

* **base** — samples transformations from the persona's own repertoire
  (plus unprompted OpenMP/SIMD pragmas with persona probabilities);
* **demo** — abstracts the demonstrated recipes into intents and adopts
  each with ``p_adopt_step``, then adds its own repertoire items;
* **compile-feedback** — regenerates its remembered intent without the
  syntax slip with ``p_fix_compile`` (round 2: ``p_fix_compile_round2``);
* **test+rank feedback** — restarts from the best-ranked passing
  attempt's intent, drops a suspect step of failing ones with
  ``p_drop_bad_step`` and tries one additional intent.

Every random draw comes from a stable per-(persona, target, k, round)
seed, so whole experiments replay bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.dependences import dependences, is_legal_schedule
from ..codegen import scop_body_to_c
from ..ir.program import Program
from ..transforms import TransformError, TransformRecipe, TransformStep
from .adapt import (Intent, intents_from_recipe, materialize,
                    semantic_slip, syntax_slip)
from .personas import Persona
from .prompts import (KIND_BASE, KIND_COMPILE_FEEDBACK, KIND_DEMO,
                      KIND_TEST_RANK_FEEDBACK, Prompt)


#: canonical phase order of a coherent composition: enabling interchanges
#: and shifts first, then loop-structure changes, tiling, scalar rewrites,
#: pragmas last — the order every demonstrated recipe also follows
_PHASE = {"interchange": 0, "shifting": 1, "fusion": 2, "distribution": 2,
          "skewing": 3, "tiling": 4, "reg_accum": 5, "parallel": 6,
          "vectorize": 7}


def _phase_sorted(intents: List[Intent]) -> List[Intent]:
    return sorted(intents, key=lambda i: _PHASE.get(i.kind, 9))


@dataclass(frozen=True)
class LLMResponse:
    """One generated candidate."""

    program: Program
    text: str
    applied: TransformRecipe
    slipped: Optional[str] = None


class SimulatedLLM:
    """One chat session of a persona."""

    def __init__(self, persona: Persona, seed: int = 0) -> None:
        self.persona = persona
        self.seed = seed
        #: remembered intents per candidate index (the chat history)
        self._intents: Dict[int, List[Intent]] = {}
        self._passed: Dict[int, bool] = {}
        #: per-target systematic misunderstanding: None (fine), "syntax"
        #: (every candidate fails to compile the same way) or "semantic"
        #: (every candidate carries the same wrong rewrite)
        self._misread: Dict[str, Optional[str]] = {}
        #: targets the session recovered on after failures; it rewrites
        #: those conservatively from then on (drops aggressive tiling) —
        #: the reason paper-LOOPRAG trails PLuTo on PolyBench despite
        #: learning from PLuTo's own demonstrations (§6.3)
        self._recovered: set = set()

    # ------------------------------------------------------------------
    @staticmethod
    def _complexity(program: Program) -> float:
        """How easy a kernel is to misread when rewriting it by hand."""
        imperfect = len({len(s.domain.iters)
                         for s in program.statements}) > 1
        score = (0.18 * len(program.statements)
                 + 0.25 * max(0, program.max_depth - 1)
                 + (0.1 if imperfect else 0.0)
                 + 0.05 * sum(len(s.guards) for s in program.statements))
        return min(1.2, score)

    def _misread_state(self, prompt: Prompt) -> Optional[str]:
        fp = prompt.target.fingerprint()
        if fp not in self._misread:
            rng = random.Random(
                f"misread/{self.persona.name}/{self.seed}/{fp}")
            p = self.persona.p_misread * self._complexity(prompt.target)
            if prompt.kind == KIND_BASE:
                p *= 0.5  # without demos the model rewrites less
            if rng.random() < p:
                kind = "syntax" if rng.random() < 0.6 else "semantic"
            else:
                kind = None
            self._misread[fp] = kind
        return self._misread[fp]

    # ------------------------------------------------------------------
    def _rng(self, prompt: Prompt, k: int, round_tag: str) -> random.Random:
        return random.Random(
            f"{self.persona.name}/{self.seed}/"
            f"{prompt.target.fingerprint()}/{k}/{round_tag}")

    def generate(self, prompt: Prompt, k: int,
                 round_tag: str = "r0") -> LLMResponse:
        """Produce one candidate for slot ``k``."""
        rng = self._rng(prompt, k, round_tag)
        state = self._misread_state(prompt)
        fp = prompt.target.fingerprint()
        if prompt.kind == KIND_COMPILE_FEEDBACK:
            return self._repair(prompt, k, rng, round_tag)
        if prompt.kind == KIND_TEST_RANK_FEEDBACK:
            if state == "semantic":
                recover = random.Random(
                    f"recover/{self.persona.name}/{self.seed}/{fp}")
                if recover.random() < self.persona.p_recover:
                    self._misread[fp] = None
                    self._recovered.add(fp)
            intents = self._refine_intents(prompt, k, rng)
            if fp in self._recovered:
                intents = [i for i in intents
                           if i.kind != "tiling" or rng.random() < 0.4]
        elif prompt.kind == KIND_DEMO:
            intents = self._learn_intents(prompt, rng)
        else:
            intents = self._own_intents(rng, prompt.target)
        self._intents[k] = intents
        return self._emit(prompt, intents, rng, allow_slips=True)

    def note_result(self, k: int, passed: bool) -> None:
        """Pipeline telling the session which candidates passed."""
        self._passed[k] = passed

    # ------------------------------------------------------------------
    @staticmethod
    def _is_simple(program: Program) -> bool:
        """Flat single-statement loops — where base LLMs confidently add
        pragmas (TSVC); on dependence-rich imperfect nests (PolyBench)
        they rarely do, and break semantics when they try (Fig 1)."""
        return (len(program.statements) == 1
                and program.max_depth <= 2)

    def _own_intents(self, rng: random.Random,
                     program: Program) -> List[Intent]:
        persona = self.persona
        intents: List[Intent] = []
        if rng.random() >= persona.p_attempt:
            return intents
        simple = self._is_simple(program)
        damp = 1.0 if simple else 0.2
        for kind in persona.repertoire:
            p = {"interchange": 0.5, "fusion": 0.3,
                 "reg_accum": persona.p_reg_accum}.get(kind, 0.25)
            if rng.random() < p:
                intents.append(Intent(kind=kind))
        if rng.random() < persona.p_parallel * damp:
            intents.append(Intent(kind="parallel"))
        if rng.random() < persona.p_vectorize * damp:
            intents.append(Intent(kind="vectorize"))
        return _phase_sorted(intents)

    def _learn_intents(self, prompt: Prompt,
                       rng: random.Random) -> List[Intent]:
        persona = self.persona
        intents: List[Intent] = []
        seen = set()
        for demo in prompt.demos:
            for intent in intents_from_recipe(demo.entry.recipe):
                if intent.kind in seen:
                    continue
                if rng.random() < persona.p_adopt_step:
                    seen.add(intent.kind)
                    intents.append(intent)
        # demonstrations guide the model but do not erase its own
        # repertoire (§1: "while preserving their inherent optimization
        # capabilities") — enabling interchanges especially
        for kind in persona.repertoire:
            if kind in seen:
                continue
            p = {"interchange": 0.6, "fusion": 0.25,
                 "reg_accum": persona.p_reg_accum * 0.5}.get(kind, 0.2)
            if rng.random() < p:
                seen.add(kind)
                intents.append(Intent(kind=kind))
        if "parallel" not in seen and rng.random() < persona.p_parallel:
            intents.append(Intent(kind="parallel"))
        if "vectorize" not in seen and rng.random() < persona.p_vectorize:
            intents.append(Intent(kind="vectorize"))
        return _phase_sorted(intents)

    def _refine_intents(self, prompt: Prompt, k: int,
                        rng: random.Random) -> List[Intent]:
        persona = self.persona
        best: Optional[List[Intent]] = None
        best_seconds = float("inf")
        for record in prompt.attempts:
            if record.passed and record.index in self._intents:
                seconds = record.seconds or float("inf")
                if seconds < best_seconds:
                    best_seconds = seconds
                    best = self._intents[record.index]
        own = self._intents.get(k, [])
        if best is not None:
            intents = list(best)
        elif own and rng.random() < persona.p_drop_bad_step:
            intents = list(own)
            if intents:
                intents.pop(rng.randrange(len(intents)))
        else:
            intents = list(own)
        # half the slots try one extra idea learnt from demos or habits;
        # the other half simplify — drop a demonstrated step and keep the
        # pragmas (rank feedback telling the model "less is more")
        demo_kinds = []
        for demo in prompt.demos:
            demo_kinds.extend(intents_from_recipe(demo.entry.recipe))
        have = {i.kind for i in intents}
        if rng.random() < 0.5:
            extras = [i for i in demo_kinds if i.kind not in have]
            for kind in ("parallel", "vectorize"):
                if kind not in have:
                    extras.append(Intent(kind=kind))
            if extras and rng.random() < 0.8:
                intents.append(rng.choice(extras))
        else:
            droppable = [i for i in intents
                         if i.kind not in ("parallel", "vectorize")]
            if droppable:
                victim = rng.choice(droppable)
                intents = [i for i in intents if i is not victim]
            for kind in ("parallel", "vectorize"):
                if kind not in have:
                    intents.append(Intent(kind=kind))
        return _phase_sorted(intents)

    # ------------------------------------------------------------------
    def _repair(self, prompt: Prompt, k: int, rng: random.Random,
                round_tag: str) -> LLMResponse:
        persona = self.persona
        p_fix = (persona.p_fix_compile if round_tag == "r1-fix"
                 else persona.p_fix_compile_round2)
        fp = prompt.target.fingerprint()
        if self._misread.get(fp) == "syntax":
            # one correlated decision per (target, round): either the
            # diagnostics snap the model out of its misunderstanding for
            # every slot, or none of them
            decide = random.Random(
                f"fix/{persona.name}/{self.seed}/{fp}/{round_tag}")
            if decide.random() < p_fix:
                self._misread[fp] = None
                self._recovered.add(fp)
        intents = self._intents.get(k, [])
        if rng.random() < p_fix:
            return self._emit(prompt, intents, rng, allow_slips=False)
        # failed repair: another slip-prone attempt
        return self._emit(prompt, intents, rng, allow_slips=True)

    def _emit(self, prompt: Prompt, intents: Sequence[Intent],
              rng: random.Random, allow_slips: bool) -> LLMResponse:
        persona = self.persona
        program = prompt.target
        deps = dependences(prompt.target)
        applied: List[TransformStep] = []
        for intent in intents:
            step = materialize(intent, program, rng)
            if step is None:
                continue
            try:
                candidate = step.apply(program)
            except TransformError:
                continue
            careless = rng.random() < persona.p_skip_legality
            if not careless:
                if step.kind in ("parallel", "vectorize"):
                    # LLMs add reduction clauses, so accumulation-carried
                    # dependences don't block their pragmas
                    from ..compilers.base import concurrency_violations
                    col = step.arg_dict()["col"]
                    if concurrency_violations(candidate, deps, col):
                        if step.kind != "parallel":
                            continue
                        # a careful model moves the pragma inward until
                        # it finds a loop that is actually parallel
                        fallback = self._parallel_fallback(
                            program, deps, col)
                        if fallback is None:
                            # last resort: split the statements into
                            # separate nests and rotate each nest's
                            # parallel loop outermost — one pragma per
                            # distributed loop (the s233 pattern)
                            multi = self._parallel_distribute_fallback(
                                program, deps)
                            if multi is None:
                                continue
                            fb_steps, candidate = multi
                            program = candidate
                            applied.extend(fb_steps)
                            continue
                        step, candidate = fallback
                elif not is_legal_schedule(candidate, deps):
                    if step.kind != "tiling":
                        continue
                    # demos show separately tiled nests: imitate by
                    # distributing first, then tiling (Listing 8's gemm)
                    fallback = self._tiling_fallback(program, deps, step)
                    if fallback is None:
                        continue
                    fb_steps, candidate = fallback
                    program = candidate
                    applied.extend(fb_steps)
                    continue
            program = candidate
            applied.append(step)
        slipped = None
        if allow_slips and applied and \
                rng.random() < persona.p_semantic_slip:
            program, slipped = semantic_slip(program, rng)
        if allow_slips and rng.random() < persona.p_syntax_slip:
            program, detail = syntax_slip(program, rng)
            slipped = f"syntax: {detail}"
        # systematic misread: the same corruption lands in every candidate
        fp = prompt.target.fingerprint()
        state = self._misread.get(fp)
        if state == "semantic":
            det = random.Random(f"misslip/{fp}")
            program, detail = semantic_slip(program, det)
            slipped = f"misread: {detail}"
        elif state == "syntax":
            det = random.Random(f"misslip/{fp}")
            program, detail = syntax_slip(program, det)
            slipped = f"misread syntax: {detail}"
        text = "```c\n" + scop_body_to_c(program) + "\n```"
        return LLMResponse(program=program, text=text,
                           applied=TransformRecipe(tuple(applied)),
                           slipped=slipped)

    @staticmethod
    def _tiling_fallback(program: Program, deps, tile_step: TransformStep):
        """Distribute statements into nests, then retry the tiling."""
        from ..transforms import shared_band
        if len(program.statements) < 2:
            return None
        schedules = program.aligned_schedules()
        for col in range(program.schedule_width):
            if any(s.dims[col].is_dynamic for s in schedules):
                continue
            if len({s.dims[col].value for s in schedules}) != 1:
                continue
            try:
                dist = TransformStep.make("distribution", col=col)
                candidate = dist.apply(program)
            except TransformError:
                continue
            if not is_legal_schedule(candidate, deps):
                continue
            band = shared_band(candidate)
            if not band:
                continue
            sizes = tile_step.arg_dict().get("sizes") or [32]
            try:
                retile = TransformStep.make(
                    "tiling", columns=list(band[:3]),
                    sizes=[int(sizes[0])] * len(band[:3]))
                tiled = retile.apply(candidate)
            except TransformError:
                continue
            if is_legal_schedule(tiled, deps):
                return [dist, retile], tiled
        return None

    @staticmethod
    def _parallel_distribute_fallback(program: Program, deps):
        """Distribute statements, rotate each nest's parallel loop to the
        shared outer column, then mark it parallel."""
        from ..compilers.base import concurrency_violations
        from ..transforms import statement_loop_columns
        if len(program.statements) < 2:
            return None
        schedules = program.aligned_schedules()
        dist_col = None
        for col in range(program.schedule_width):
            if any(s.dims[col].is_dynamic for s in schedules):
                continue
            if len({s.dims[col].value for s in schedules}) == 1:
                dist_col = col
                break
        if dist_col is None:
            return None
        steps = []
        try:
            step = TransformStep.make("distribution", col=dist_col)
            candidate = step.apply(program)
        except TransformError:
            return None
        if not is_legal_schedule(candidate, deps):
            return None
        steps.append(step)
        outer = None
        for stmt in candidate.statements:
            cols = statement_loop_columns(candidate, stmt.name)
            if not cols:
                return None
            if outer is None:
                outer = cols[0]
            # find a loop of this statement that is parallel-safe for its
            # own dependences and rotate it to the shared outer column
            own = {stmt.name}
            for col in cols:
                trial = candidate
                trial_steps = []
                if col != outer:
                    swap = TransformStep.make(
                        "interchange", col_a=outer, col_b=col,
                        stmts=[stmt.name])
                    try:
                        trial = swap.apply(candidate)
                    except TransformError:
                        continue
                    trial_steps.append(swap)
                racy = [d for d in concurrency_violations(trial, deps,
                                                          outer)
                        if d.source in own or d.target in own]
                if not racy and is_legal_schedule(trial, deps):
                    candidate = trial
                    steps.extend(trial_steps)
                    break
            else:
                return None
        try:
            mark = TransformStep.make("parallel", col=outer)
            final = mark.apply(candidate)
        except TransformError:
            return None
        if concurrency_violations(final, deps, outer):
            return None
        steps.append(mark)
        return steps, final

    @staticmethod
    def _parallel_fallback(program: Program, deps, skip_col: int):
        """Find the next-deeper legal parallel column, if any."""
        from ..compilers.base import concurrency_violations
        from ..transforms.base import dynamic_columns
        for col in dynamic_columns(program):
            if col <= skip_col or col in program.parallel_dims:
                continue
            try:
                step = TransformStep.make("parallel", col=col)
                candidate = step.apply(program)
            except TransformError:
                continue
            if not concurrency_violations(candidate, deps, col):
                return step, candidate
        return None
