"""Intent materialisation and slip injection for simulated LLMs.

A persona reasons in *abstract intents* ("tile the band by 32",
"interchange toward stride-1") learned from demonstrations or its own
repertoire; :func:`materialize` concretises an intent against the current
program the way an LLM rewrites code — heuristically, with no solver.

Slips turn a correct candidate into the paper's failure classes through
*real* mechanisms: a corrupted bound or dropped guard executes to wrong
outputs (IA) or out-of-bounds accesses (RE); an undeclared identifier
fails validation (CE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ir.affine import Affine, var
from ..ir.domain import Domain, IterSpec
from ..ir.expr import Ref
from ..ir.program import Program
from ..machine.analytical import _array_strides, _ref_step
from ..machine.loopview import build_view
from ..transforms import (TransformError, TransformStep, innermost_column,
                          shared_band, statement_loop_columns)
from ..transforms.base import dynamic_columns


@dataclass(frozen=True)
class Intent:
    """Abstract transformation intention."""

    kind: str
    size: int = 32
    factor: int = 1
    offset: int = 1

    def __str__(self) -> str:
        return f"intent:{self.kind}"


def intents_from_recipe(recipe) -> List[Intent]:
    """Abstract the demonstrated composition (what the LLM 'learns')."""
    intents: List[Intent] = []
    seen = set()
    for step in recipe.steps:
        if step.kind in seen:
            continue
        seen.add(step.kind)
        args = step.arg_dict()
        sizes = args.get("sizes") or [32]
        intents.append(Intent(
            kind=step.kind,
            size=int(sizes[0]) if step.kind == "tiling" else 32,
            factor=int(args.get("factor", 1)),
            offset=int(args.get("offset", 1))))
    return intents


# ----------------------------------------------------------------------
# Materialisation heuristics
# ----------------------------------------------------------------------
def _stride_pair(program: Program, rng: random.Random
                 ) -> Optional[Tuple[int, int, List[str]]]:
    """Find (col_a, col_b, stmts) whose swap improves innermost stride."""
    params = {p: 64 for p in program.params}
    strides_of = _array_strides(program, params)
    candidates = []
    for stmt in program.statements:
        cols = statement_loop_columns(program, stmt.name)
        if len(cols) < 2:
            continue
        view = build_view(program, stmt, params)
        if not view.loops:
            continue
        inner = view.loops[-1]
        for ref, _w in stmt.all_refs():
            inner_step = abs(_ref_step(ref, inner, strides_of[ref.array]))
            if inner_step <= 1:
                continue
            for other in view.loops[:-1]:
                other_step = abs(_ref_step(ref, other,
                                           strides_of[ref.array]))
                if other_step == 1:
                    candidates.append((other.col, inner.col, [stmt.name]))
    if not candidates:
        return None
    return rng.choice(candidates)


def materialize(intent: Intent, program: Program,
                rng: random.Random) -> Optional[TransformStep]:
    """Concretise one intent against the current program."""
    kind = intent.kind
    dyn = dynamic_columns(program)
    if not dyn:
        return None
    if kind == "tiling":
        band = shared_band(program) or dyn[:1]
        band = band[:3]
        return TransformStep.make("tiling", columns=list(band),
                                  sizes=[intent.size] * len(band))
    if kind == "interchange":
        pair = _stride_pair(program, rng)
        if pair is None:
            if len(dyn) < 2:
                return None
            col_a, col_b = rng.sample(dyn, 2)
            return TransformStep.make("interchange",
                                      col_a=min(col_a, col_b),
                                      col_b=max(col_a, col_b))
        col_a, col_b, stmts = pair
        return TransformStep.make("interchange", col_a=col_a, col_b=col_b,
                                  stmts=stmts)
    if kind == "fusion":
        col = _const_col(program, want_distinct=True)
        if col is None:
            return None
        return TransformStep.make("fusion", col=col)
    if kind == "distribution":
        col = _const_col(program, want_distinct=False)
        if col is None:
            return None
        return TransformStep.make("distribution", col=col)
    if kind == "skewing":
        band = shared_band(program)
        if len(band) < 2:
            return None
        return TransformStep.make("skewing", target_col=band[1],
                                  source_col=band[0],
                                  factor=intent.factor or 1)
    if kind == "shifting":
        if len(program.statements) < 2:
            return None
        stmt = rng.choice(program.statements[1:])
        cols = statement_loop_columns(program, stmt.name)
        if not cols:
            return None
        return TransformStep.make("shifting", stmt=stmt.name,
                                  col=cols[0], offset=intent.offset or 1)
    if kind == "parallel":
        for col in dyn[:2]:
            if col not in program.parallel_dims:
                return TransformStep.make("parallel", col=col)
        return None
    if kind == "vectorize":
        inner_cols = sorted({
            innermost_column(program, s.name)
            for s in program.statements}
            - {None} - set(program.vector_dims))
        if not inner_cols:
            return None
        return TransformStep.make("vectorize", col=rng.choice(inner_cols))
    if kind == "reg_accum":
        accums = [s.name for s in program.statements
                  if s.body.op in ("+=", "-=", "*=") and not s.reg_accum]
        if not accums:
            return None
        return TransformStep.make("reg_accum", stmt=rng.choice(accums))
    return None


def _const_col(program: Program, want_distinct: bool) -> Optional[int]:
    schedules = program.aligned_schedules()
    if len(schedules) < 2:
        return None
    for col in range(program.schedule_width):
        if any(s.dims[col].is_dynamic for s in schedules):
            continue
        values = {s.dims[col].value for s in schedules}
        if want_distinct and len(values) > 1:
            return col
        if not want_distinct and len(values) == 1:
            return col
    return None


# ----------------------------------------------------------------------
# Slips
# ----------------------------------------------------------------------
def semantic_slip(program: Program, rng: random.Random
                  ) -> Tuple[Program, str]:
    """Corrupt the candidate in a way only testing can catch (IA/RE)."""
    choices = ["shrink_bound", "extend_bound", "illegal_swap"]
    if any(s.guards for s in program.statements):
        choices.append("drop_guard")
    kind = rng.choice(choices)
    stmts = list(program.statements)
    si = rng.randrange(len(stmts))
    stmt = stmts[si]
    if kind == "drop_guard":
        guarded = [s for s in stmts if s.guards]
        stmt = rng.choice(guarded)
        new = stmt.with_guards(stmt.guards[1:])
        return program.with_statement(stmt.name, new), "dropped a guard"
    if kind in ("shrink_bound", "extend_bound") and stmt.domain.iters:
        delta = -1 if kind == "shrink_bound" else 1
        level = rng.randrange(stmt.domain.depth)
        specs = list(stmt.domain.iters)
        spec = specs[level]
        specs[level] = IterSpec(spec.name, spec.lowers,
                                tuple(u + delta for u in spec.uppers))
        new = stmt.with_domain(Domain(tuple(specs)))
        return (program.with_statement(stmt.name, new),
                f"off-by-one bound on {spec.name}")
    # illegal_swap: reorder two of the statement's own dimensions
    cols = statement_loop_columns(program, stmt.name)
    if len(cols) >= 2:
        a, b = rng.sample(cols, 2)
        try:
            step = TransformStep.make("interchange", col_a=min(a, b),
                                      col_b=max(a, b), stmts=[stmt.name])
            return step.apply(program), "unchecked interchange"
        except TransformError:
            pass
    return program, "no-op slip"


def syntax_slip(program: Program, rng: random.Random
                ) -> Tuple[Program, str]:
    """Corrupt the candidate so that it fails to compile (CE)."""
    stmts = list(program.statements)
    stmt = rng.choice(stmts)
    if rng.random() < 0.5:
        body = stmt.body.rename_arrays({stmt.body.lhs.array: "tmp_buf"})
        new = stmt.with_body(body)
        detail = "undeclared identifier 'tmp_buf'"
    else:
        lhs = stmt.body.lhs
        bad = Ref(lhs.array, lhs.indices + (var("t99"),))
        new = stmt.with_body(
            stmt.body.__class__(bad, stmt.body.op, stmt.body.rhs))
        detail = "subscript rank mismatch / undefined iterator 't99'"
    return program.with_statement(stmt.name, new), detail
