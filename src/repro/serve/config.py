"""Daemon configuration (flags + ``REPRO_SERVE_*`` env knobs)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

#: env knob -> (field, parser); documented in README "Environment knobs"
_ENV_KNOBS = {
    "REPRO_SERVE_INFLIGHT": ("max_inflight", int),
    "REPRO_SERVE_QUEUE": ("queue_depth", int),
    "REPRO_SERVE_PER_CLIENT": ("per_client", int),
    "REPRO_SERVE_DEADLINE": ("default_deadline", float),
    "REPRO_SERVE_DRAIN": ("drain_grace", float),
    "REPRO_SERVE_SESSIONS": ("max_sessions", int),
}


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to know.

    ``max_inflight`` requests execute concurrently; up to
    ``queue_depth`` more wait in the admission queue; anything beyond
    that — and anything over ``per_client`` concurrent requests from
    one client — is answered ``503`` with a ``Retry-After`` header
    instead of growing memory without bound.  ``default_deadline``
    (seconds, 0 = none) applies to requests that do not carry their
    own; ``drain_grace`` is how long SIGTERM waits for in-flight work
    before deadline-cancelling it.
    """

    host: str = "127.0.0.1"
    port: int = 8459
    max_inflight: int = 4
    queue_depth: int = 8
    per_client: int = 4
    default_deadline: float = 0.0
    drain_grace: float = 10.0
    max_sessions: int = 4
    resilience: bool = True
    #: session defaults for requests that send no "session" object
    default_session: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def from_env(**overrides: Any) -> "ServeConfig":
        values: Dict[str, Any] = {}
        for env, (name, parse) in _ENV_KNOBS.items():
            if env in os.environ:
                values[name] = parse(os.environ[env])
        values.update(overrides)
        return ServeConfig(**values)

    def with_overrides(self, **overrides: Any) -> "ServeConfig":
        filtered = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **filtered) if filtered else self
