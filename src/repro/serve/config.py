"""Daemon configuration (flags + ``REPRO_SERVE_*`` env knobs)."""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

def _parse_bool(raw: str) -> bool:
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


#: env knob -> (field, parser); documented in README "Environment knobs"
_ENV_KNOBS = {
    "REPRO_SERVE_INFLIGHT": ("max_inflight", int),
    "REPRO_SERVE_QUEUE": ("queue_depth", int),
    "REPRO_SERVE_PER_CLIENT": ("per_client", int),
    "REPRO_SERVE_DEADLINE": ("default_deadline", float),
    "REPRO_SERVE_DRAIN": ("drain_grace", float),
    "REPRO_SERVE_SESSIONS": ("max_sessions", int),
    "REPRO_SERVE_JOURNAL": ("journal", _parse_bool),
    "REPRO_WORKER_POOL": ("workers", int),
    "REPRO_WORKER_MEM_MB": ("worker_memory_mb", int),
    "REPRO_WORKER_CPU_S": ("worker_cpu_s", int),
    "REPRO_WORKER_HANG": ("worker_hang_timeout", float),
    "REPRO_WORKER_CRASH_LIMIT": ("worker_crash_limit", int),
    "REPRO_WORKER_RESTART_BASE": ("worker_restart_base", float),
    "REPRO_WORKER_RESTART_CAP": ("worker_restart_cap", float),
}


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` needs to know.

    ``max_inflight`` requests execute concurrently; up to
    ``queue_depth`` more wait in the admission queue; anything beyond
    that — and anything over ``per_client`` concurrent requests from
    one client — is answered ``503`` with a ``Retry-After`` header
    instead of growing memory without bound.  ``default_deadline``
    (seconds, 0 = none) applies to requests that do not carry their
    own; ``drain_grace`` is how long SIGTERM waits for in-flight work
    before deadline-cancelling it.

    ``workers > 0`` switches execution into a pool of supervised
    forked worker processes (crash containment: a segfault, OOM, or
    hang takes down one worker, never the daemon) with optional
    per-worker rlimits — ``worker_memory_mb`` caps address space
    (``RLIMIT_AS``), ``worker_cpu_s`` caps CPU seconds
    (``RLIMIT_CPU``); 0 disables either.  The watchdog kills a worker
    busy longer than ``worker_hang_timeout`` seconds, restarts crashed
    workers with exponential backoff (``worker_restart_base`` ..
    ``worker_restart_cap`` seconds), and a request signature that
    crashes workers ``worker_crash_limit`` times is quarantined (422).

    ``journal`` write-ahead-logs every non-streaming request to the
    artifact store's "journal" stream: duplicates short-circuit to the
    journaled result and ``repro serve --recover`` (``recover=True``)
    replays admitted-but-unfinished requests after a daemon crash.
    """

    host: str = "127.0.0.1"
    port: int = 8459
    max_inflight: int = 4
    queue_depth: int = 8
    per_client: int = 4
    default_deadline: float = 0.0
    drain_grace: float = 10.0
    max_sessions: int = 4
    resilience: bool = True
    workers: int = 0
    worker_memory_mb: int = 0
    worker_cpu_s: int = 0
    worker_hang_timeout: float = 300.0
    worker_crash_limit: int = 2
    worker_restart_base: float = 0.25
    worker_restart_cap: float = 5.0
    journal: bool = True
    recover: bool = False
    #: session defaults for requests that send no "session" object
    default_session: Dict[str, Any] = field(default_factory=dict)

    @staticmethod
    def from_env(**overrides: Any) -> "ServeConfig":
        values: Dict[str, Any] = {}
        for env, (name, parse) in _ENV_KNOBS.items():
            if env in os.environ:
                values[name] = parse(os.environ[env])
        values.update(overrides)
        return ServeConfig(**values)

    def with_overrides(self, **overrides: Any) -> "ServeConfig":
        filtered = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **filtered) if filtered else self
