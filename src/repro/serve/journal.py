"""Durable write-ahead request journal for ``repro serve``.

Every non-streaming request the daemon admits is journaled to the
artifact store's ``"journal"`` stream *before* it executes, keyed by an
idempotency signature derived from the request content.  A record walks
a tiny state machine::

    admitted -> started -> completed | failed

which buys two things a crash-prone world needs:

* **idempotent resubmission** — a duplicate of a ``completed`` request
  short-circuits to the journaled result document (byte-identical to
  the original response, by the daemon's canonical-JSON rendering);
* **crash recovery** — ``repro serve --recover`` replays every
  ``admitted``/``started`` record through the normal execution path at
  startup, so requests that were in flight when the daemon died are
  finished rather than lost.

``failed`` records do *not* short-circuit: a request that failed (crash,
deadline, backend exhaustion) is re-executed when resubmitted, because
failure is circumstance, not content.

The journal opens the artifact store directly (same root/backend as the
result cache) and deliberately ignores ``REPRO_NO_CACHE`` — that knob
disables the *result memo*, while the journal is the daemon's write-ahead
log.  Volatile backends make a write-ahead log a lie, which is why the
daemon refuses to start with journaling on a backend whose entries do
not live on disk (see :class:`JournalUnavailable`).
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..storage import ArtifactStore, StreamStats

#: stream name on the artifact store (shows up in ``repro store stats``)
JOURNAL_STREAM = "journal"

#: journal record format version
JOURNAL_SCHEMA = 1

#: statuses a record can hold; "admitted" and "started" are the
#: unfinished ones --recover replays
UNFINISHED = ("admitted", "started")

#: retention for finished journal records (``repro store compact
#: --journal-keep N`` falls back to this)
ENV_JOURNAL_KEEP = "REPRO_JOURNAL_KEEP"


class JournalUnavailable(RuntimeError):
    """Journaling requested on a store that cannot durably hold it."""


def request_signature(body: Any) -> str:
    """Idempotency key: a content hash of what the request *computes*.

    Covers the kernel/request entry, the session spec, and the
    ``use_store`` toggle — and deliberately excludes delivery options
    (``deadline_s``, ``stream``, ``include_events``) so the same
    computation submitted with a different timeout or event verbosity
    still deduplicates onto one journal record.
    """
    if not isinstance(body, dict):
        body = {"request": body}
    core = {
        "request": body.get("request"),
        "session": body.get("session") or {},
        "use_store": body.get("use_store"),
    }
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"),
                           default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class RequestJournal:
    """The admitted→started→completed/failed log over an ArtifactStore.

    Transitions are read-modify-write on the underlying last-write-wins
    stream, serialized by a process-local lock (one daemon owns its
    journal; concurrent request threads within it must not tear each
    other's updates).
    """

    def __init__(self, store: ArtifactStore) -> None:
        if not store.on_disk:
            raise JournalUnavailable(
                f"refusing to journal onto volatile store backend "
                f"{store.name!r} ({store.describe()}): a write-ahead "
                f"log that evaporates with the process cannot recover "
                f"anything; pass --no-journal to serve without one")
        self._store = store
        self._lock = threading.Lock()
        self._seq: Optional[int] = None  # resolved on first transition
        store.open(JOURNAL_STREAM)

    # -- record access -------------------------------------------------
    def record(self, signature: str) -> Optional[Dict[str, Any]]:
        return self._store.read(JOURNAL_STREAM, signature)

    def result(self, signature: str) -> Optional[Dict[str, Any]]:
        """The journaled result document iff the record is completed."""
        record = self.record(signature)
        if record and record.get("status") == "completed":
            return record.get("result")
        return None

    def unfinished(self) -> List[Tuple[str, Optional[Dict[str, Any]]]]:
        """(signature, record) for every admitted/started record.

        A signature whose record is listed but cannot be read back —
        its stored line failed the crc check — is surfaced as
        ``(signature, None)`` so recovery can refuse to replay it
        (marking it failed with a diagnostic) instead of silently
        skipping a request that *was* admitted.
        """
        out: List[Tuple[str, Optional[Dict[str, Any]]]] = []
        for key in self._store.list(JOURNAL_STREAM):
            record = self._store.read(JOURNAL_STREAM, key)
            if not isinstance(record, dict):
                out.append((key, None))  # damaged journal record
            elif record.get("status") in UNFINISHED:
                out.append((key, record))
        return out

    def stats(self) -> StreamStats:
        return self._store.stream_stats(JOURNAL_STREAM)

    def describe(self) -> str:
        return f"{JOURNAL_STREAM}@{self._store.describe()}"

    # -- the state machine ---------------------------------------------
    def admitted(self, signature: str, body: Dict[str, Any]) -> None:
        """Write-ahead: the request is validated and about to run.

        Stores the full request body so --recover can re-materialize
        and re-execute it without the client.  Resubmission of a failed
        request lands here again and bumps ``attempts``.
        """
        def update(record: Dict[str, Any]) -> None:
            record["status"] = "admitted"
            record["body"] = body
            record["attempts"] = int(record.get("attempts", 0)) + 1
            record.pop("error", None)
        self._transition(signature, update)

    def started(self, signature: str) -> None:
        self._transition(
            signature, lambda record: record.update(status="started"))

    def completed(self, signature: str,
                  result_doc: Dict[str, Any]) -> None:
        def update(record: Dict[str, Any]) -> None:
            record["status"] = "completed"
            record["result"] = result_doc
            record.pop("error", None)
        self._transition(signature, update)

    def failed(self, signature: str, error: Dict[str, Any]) -> None:
        def update(record: Dict[str, Any]) -> None:
            record["status"] = "failed"
            record["error"] = error
        self._transition(signature, update)

    def _transition(self, signature: str, update) -> None:
        with self._lock:
            record = self.record(signature) or {
                "schema": JOURNAL_SCHEMA, "attempts": 0}
            update(record)
            record["seq"] = self._next_seq()
            self._store.append(JOURNAL_STREAM, signature, record)

    def _next_seq(self) -> int:
        """A monotonically increasing transition counter.

        Journal records carry no wall-clock timestamp (byte-stability),
        so retention orders finished records by ``seq``.  The counter
        resumes from the highest stored value across daemon lifetimes.
        """
        if self._seq is None:
            self._seq = _max_seq(self._store)
        self._seq += 1
        return self._seq


def _max_seq(store: ArtifactStore) -> int:
    highest = 0
    for key in store.list(JOURNAL_STREAM):
        record = store.read(JOURNAL_STREAM, key)
        if isinstance(record, dict):
            try:
                highest = max(highest, int(record.get("seq", 0)))
            except (TypeError, ValueError):
                continue
    return highest


def prune_finished(store: ArtifactStore, keep: int) -> Dict[str, int]:
    """Tombstone finished journal records beyond the newest ``keep``.

    ``admitted``/``started`` records are never touched — they are what
    ``--recover`` replays.  Damaged records (unreadable payloads) are
    left for ``repro store verify`` to deal with.  Follow with a
    compaction of the journal stream to reclaim the bytes.
    """
    keep = max(0, int(keep))
    finished = []
    unfinished = 0
    for key in store.list(JOURNAL_STREAM):
        record = store.read(JOURNAL_STREAM, key)
        if not isinstance(record, dict):
            continue
        if record.get("status") in UNFINISHED:
            unfinished += 1
            continue
        try:
            seq = int(record.get("seq", 0))
        except (TypeError, ValueError):
            seq = 0
        finished.append((seq, key))
    finished.sort()
    drop = finished[:max(0, len(finished) - keep)]
    for _seq, key in drop:
        store.delete(JOURNAL_STREAM, key)
    return {"dropped": len(drop),
            "kept_finished": len(finished) - len(drop),
            "unfinished": unfinished}
