"""Bounded admission: in-flight cap, wait queue, per-client limits.

The daemon never buffers unbounded work: at most ``max_inflight``
requests execute, at most ``queue_depth`` wait, and one client can
hold at most ``per_client`` slots (queued + running).  Everything else
is rejected *immediately* with :class:`Rejected` — the HTTP layer
turns that into ``503`` + ``Retry-After`` — so overload degrades into
fast, honest push-back instead of latency collapse or OOM.

Queued requests keep honoring their cancellation token while they
wait: a deadline that expires in the queue, or a drain that cancels
the token, unblocks the waiter right away.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

from ..cancellation import CancelToken


class Rejected(Exception):
    """Admission refused; tell the client when to come back."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(f"admission rejected: {reason}")
        self.reason = reason
        self.retry_after = retry_after


class AdmissionController:
    def __init__(self, max_inflight: int, queue_depth: int,
                 per_client: int,
                 latency_hint: Optional[Callable[[], float]] = None
                 ) -> None:
        self.max_inflight = max(1, max_inflight)
        self.queue_depth = max(0, queue_depth)
        self.per_client = max(1, per_client)
        #: optional p50-latency source (seconds), e.g.
        #: ``Metrics.latency_p50`` — turns Retry-After from a guess
        #: into an estimate of when a slot will actually free up
        self._latency_hint = latency_hint
        self._cond = threading.Condition()
        self._inflight = 0
        self._queued = 0
        self._clients: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._cond:
            return self._queued

    def _retry_after_locked(self) -> float:
        """Seconds until a slot plausibly frees up.

        With latency data: the work ahead of a returning client
        (everything queued plus everything running) divided by the
        service rate, at observed p50 per request.  Without data (cold
        daemon, no hint): one second per queued request.  Clamped to
        [1, 30] so clients neither hammer nor give up.
        """
        p50 = 0.0
        if self._latency_hint is not None:
            try:
                p50 = float(self._latency_hint())
            except Exception:  # a hint must never break admission
                p50 = 0.0
        if p50 <= 0.0:
            return min(30.0, 1.0 + float(self._queued))
        backlog = self._queued + self._inflight
        estimate = backlog * p50 / float(self.max_inflight)
        return min(30.0, max(1.0, estimate))

    def retry_after_estimate(self) -> float:
        """Public snapshot of the Retry-After estimate (for 503s built
        outside admission, e.g. the drain rejection path)."""
        with self._cond:
            return self._retry_after_locked()

    # ------------------------------------------------------------------
    def acquire(self, client: str,
                token: Optional[CancelToken] = None) -> None:
        """Take one execution slot (waiting in the bounded queue).

        Raises :class:`Rejected` on overload or per-client limit, and
        propagates :class:`~repro.cancellation.Cancelled` if ``token``
        becomes due while queued.
        """
        with self._cond:
            held = self._clients.get(client, 0)
            if held >= self.per_client:
                raise Rejected("client_limit", retry_after=1.0)
            if self._inflight >= self.max_inflight \
                    and self._queued >= self.queue_depth:
                raise Rejected("overloaded",
                               retry_after=self._retry_after_locked())
            self._clients[client] = held + 1
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            self._queued += 1
            try:
                while self._inflight >= self.max_inflight:
                    if token is not None:
                        token.check()  # deadline/drain while queued
                    self._cond.wait(timeout=0.05)
                self._inflight += 1
            except BaseException:
                self._release_client_locked(client)
                raise
            finally:
                self._queued -= 1

    def release(self, client: str) -> None:
        with self._cond:
            self._inflight -= 1
            self._release_client_locked(client)
            self._cond.notify_all()

    def _release_client_locked(self, client: str) -> None:
        held = self._clients.get(client, 0) - 1
        if held <= 0:
            self._clients.pop(client, None)
        else:
            self._clients[client] = held

    def wait_idle(self, timeout: float) -> bool:
        """Block until nothing is in flight or queued (drain helper)."""
        end = time.monotonic() + timeout
        with self._cond:
            while self._inflight > 0 or self._queued > 0:
                left = end - time.monotonic()
                if left <= 0:
                    return False
                self._cond.wait(timeout=min(0.05, left))
            return True
