"""The fault-tolerant ``repro serve`` daemon.

A stdlib-only long-lived HTTP/JSON service over warm
:class:`~repro.api.OptimizerSession` pools, with bounded admission,
per-request deadlines, retry/breaker resilience around backends,
graceful drain, and ``/healthz`` + ``/metrics``.  See
:mod:`repro.serve.daemon` for the endpoint contract and
docs/architecture.md ("Service daemon & resilience") for the design.
"""

from .admission import AdmissionController, Rejected
from .config import ServeConfig
from .daemon import BadRequest, ServeDaemon
from .metrics import Metrics

__all__ = [
    "AdmissionController", "Rejected", "ServeConfig", "BadRequest",
    "ServeDaemon", "Metrics",
]
