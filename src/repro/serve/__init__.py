"""The fault-tolerant ``repro serve`` daemon.

A stdlib-only long-lived HTTP/JSON service over warm
:class:`~repro.api.OptimizerSession` pools, with bounded admission,
per-request deadlines, retry/breaker resilience around backends,
supervised worker-process isolation (:mod:`repro.serve.supervisor`),
a durable write-ahead request journal (:mod:`repro.serve.journal`),
graceful drain, and ``/healthz`` + ``/metrics`` + ``/quarantine``.
See :mod:`repro.serve.daemon` for the endpoint contract and
docs/architecture.md ("Service daemon & resilience") for the design.
"""

from .admission import AdmissionController, Rejected
from .config import ServeConfig
from .daemon import BadRequest, ServeDaemon
from .journal import (ENV_JOURNAL_KEEP, JOURNAL_STREAM,
                      JournalUnavailable, RequestJournal,
                      prune_finished, request_signature)
from .metrics import Metrics
from .supervisor import (QuarantineRegistry, WorkerCrashed,
                         WorkerSupervisor)

__all__ = [
    "AdmissionController", "Rejected", "ServeConfig", "BadRequest",
    "ServeDaemon", "Metrics",
    "ENV_JOURNAL_KEEP", "JOURNAL_STREAM", "JournalUnavailable",
    "RequestJournal", "prune_finished", "request_signature",
    "QuarantineRegistry", "WorkerCrashed", "WorkerSupervisor",
]
