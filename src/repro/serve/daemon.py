"""The ``repro serve`` daemon: HTTP/JSON front door over warm sessions.

Stdlib only (:mod:`http.server` + threads).  One
:class:`ServeDaemon` owns:

* a **session pool** — warm :class:`~repro.api.OptimizerSession`
  objects keyed by their (dataset size, seed, method, backend, ...)
  configuration, LRU-bounded, shared across requests;
* an **admission controller** — bounded in-flight + queue with
  per-client limits; overload answers ``503`` + ``Retry-After``;
* **deadlines** — per-request (``deadline_s``) or the configured
  default, propagated into the pipeline as a cooperative
  :class:`~repro.cancellation.CancelToken`; expiry answers ``504``;
* the **resilience layer** — unless disabled, the request's LLM
  backend is transparently re-registered as ``resilient:<name>``
  (retry/backoff + circuit breaker, see :mod:`repro.api.resilience`);
* **graceful drain** — SIGTERM/SIGINT stop admission, let in-flight
  work finish (``drain_grace`` seconds), cancel what remains, then
  exit 0;
* ``/healthz`` and ``/metrics`` endpoints.

Endpoints
---------
``POST /v1/optimize``
    body: ``{"request": {"source": ..., "system": ..., "persona": ...,
    "perf": {...}, "test": {...}}, "session": {...},
    "deadline_s": 5.0, "stream": true|false, "use_store": bool}``.
    Non-streaming responses are the byte-stable ``repro optimize
    --json`` document; ``"stream": true`` answers NDJSON — one line
    per :class:`SessionEvent` as it happens (resilience events
    included), then a final ``{"kind": "result", ...}`` line.
``GET /healthz``
    200 while serving, 503 while draining.
``GET /metrics``
    queue depth, in-flight, totals (completed / failed / rejected /
    cancelled / retries / breaker trips), breaker states, p50/p95
    latency.

Errors are structured: ``{"error": {"kind": ..., "message": ...}}``
with kinds ``bad_request`` (400), ``deadline`` (504), ``draining`` /
``overloaded`` / ``client_limit`` (503 + Retry-After),
``breaker_open`` (503 + Retry-After), ``backend`` (502) and
``internal`` (500).  A request that fails *never* takes the daemon
down with it.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..api import (OptimizationRequest, OptimizerSession,
                   UnknownComponentError)
from ..api.resilience import (CircuitOpenError, RESILIENCE_BUS,
                              RetryPolicy, breaker_states,
                              install_resilient_llm)
from ..cancellation import (Cancelled, CancelToken, DeadlineExceeded,
                            cancel_scope)
from ..ir import parse_scop
from ..testing.faults import register_fault_backends
from .admission import AdmissionController, Rejected
from .config import ServeConfig
from .metrics import Metrics

logger = logging.getLogger("repro.serve")

#: session-spec keys a request may set; everything else is a 400
SESSION_KEYS = ("dataset_size", "seed", "generator", "retrieval_method",
                "llm_backend", "base_compiler", "k", "use_store")

#: resilience event kinds -> metrics counters
_RESILIENCE_COUNTERS = {
    "retry": "retries_total",
    "retry_give_up": "retry_give_ups_total",
    "breaker_open": "breaker_opens_total",
    "breaker_half_open": "breaker_probes_total",
    "breaker_close": "breaker_closes_total",
}


class BadRequest(Exception):
    """Client error: malformed body / unknown fields."""


def _default_params(program, value: int) -> Dict[str, int]:
    return {p: value for p in program.params}


class ServeDaemon:
    """Everything behind the HTTP surface; usable in-process in tests."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig.from_env()
        self.metrics = Metrics()
        self.admission = AdmissionController(self.config.max_inflight,
                                             self.config.queue_depth,
                                             self.config.per_client)
        self._sessions: "OrderedDict[Tuple, OptimizerSession]" = \
            OrderedDict()
        self._sessions_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._tokens: set = set()
        self._tokens_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        register_fault_backends()
        self._unsub_resilience = RESILIENCE_BUS.subscribe(
            self._on_resilience_event)
        self.metrics.gauge("queue_depth", lambda: self.admission.queued)
        self.metrics.gauge("inflight", lambda: self.admission.inflight)
        self.metrics.gauge("sessions", self._session_count)
        self.metrics.gauge("breakers", breaker_states)
        self.metrics.gauge("draining", self._draining.is_set)

    # ------------------------------------------------------------------
    # session pool
    # ------------------------------------------------------------------
    def _session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    def _effective_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        merged = dict(self.config.default_session)
        merged.update(spec or {})
        unknown = sorted(set(merged) - set(SESSION_KEYS))
        if unknown:
            raise BadRequest(
                f"unknown session field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(SESSION_KEYS)}")
        if self.config.resilience:
            backend = merged.get("llm_backend", "simulated")
            merged["llm_backend"] = install_resilient_llm(
                backend, RetryPolicy.from_env())
        return merged

    def session_for(self, spec: Dict[str, Any]) -> OptimizerSession:
        """The pooled warm session for this configuration (LRU)."""
        merged = self._effective_spec(spec)
        key = tuple(sorted(merged.items()))
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        # build outside the lock: construction validates components and
        # may raise; two racing builders just build twice, last one wins
        session = OptimizerSession(**merged)
        with self._sessions_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.config.max_sessions:
                self._sessions.popitem(last=False)
        return session

    # ------------------------------------------------------------------
    # request materialization
    # ------------------------------------------------------------------
    @staticmethod
    def materialize_request(entry: Dict[str, Any]) -> OptimizationRequest:
        if not isinstance(entry, dict):
            raise BadRequest("'request' must be an object")
        source = entry.get("source")
        if not isinstance(source, str) or not source.strip():
            raise BadRequest("'request.source' (SCoP text) is required")
        try:
            program = parse_scop(source)
        except Exception as exc:
            raise BadRequest(f"unparseable SCoP source: {exc}")
        perf = {k: int(v) for k, v in entry.get("perf", {}).items()} \
            or _default_params(program, 1500)
        test = {k: int(v) for k, v in entry.get("test", {}).items()} \
            or _default_params(program, 8)
        try:
            return OptimizationRequest.make(
                program, perf, test,
                system=entry.get("system", "looprag"),
                persona=entry.get("persona", "deepseek"),
                optimizer=entry.get("optimizer"),
                time_limit=entry.get("time_limit"),
                tag=entry.get("tag"))
        except UnknownComponentError as exc:
            raise BadRequest(str(exc))

    # ------------------------------------------------------------------
    # the request path (called from handler threads)
    # ------------------------------------------------------------------
    def _on_resilience_event(self, event) -> None:
        counter = _RESILIENCE_COUNTERS.get(event.kind)
        if counter is not None:
            self.metrics.inc(counter)

    def _register_token(self, token: CancelToken) -> None:
        with self._tokens_lock:
            self._tokens.add(token)

    def _unregister_token(self, token: CancelToken) -> None:
        with self._tokens_lock:
            self._tokens.discard(token)

    def handle_optimize(self, handler: "_Handler",
                        body: Dict[str, Any]) -> None:
        self.metrics.inc("requests_total")
        started = time.monotonic()
        if self._draining.is_set():
            self.metrics.inc("rejected_total")
            _send_error(handler, 503, "draining",
                        "daemon is draining", retry_after=5.0)
            return
        client = handler.headers.get("X-Client-Id") \
            or handler.client_address[0]
        deadline_s = body.get("deadline_s",
                              self.config.default_deadline or None)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        token = CancelToken.with_timeout(deadline_s)
        self._register_token(token)
        admitted = False
        try:
            try:
                self.admission.acquire(client, token)
                admitted = True
            except Rejected as exc:
                self.metrics.inc("rejected_total")
                self.metrics.inc(f"rejected_{exc.reason}_total")
                _send_error(handler, 503, exc.reason, str(exc),
                            retry_after=exc.retry_after)
                return
            request = self.materialize_request(body.get("request", {}))
            session = self.session_for(body.get("session", {}))
            use_store = body.get("use_store")
            if bool(body.get("stream")):
                self.metrics.inc("streams_total")
                self._run_streaming(handler, session, request, token,
                                    use_store)
            else:
                result = session.optimize(request, use_store=use_store,
                                          cancel=token)
                doc = result.to_json_dict(
                    include_events=bool(body.get("include_events", True)))
                _send_json(handler, 200, doc)
            self.metrics.inc("completed_total")
            self.metrics.observe_latency(time.monotonic() - started)
        except BadRequest as exc:
            self.metrics.inc("failed_total")
            _send_error(handler, 400, "bad_request", str(exc))
        except UnknownComponentError as exc:
            self.metrics.inc("failed_total")
            _send_error(handler, 400, "bad_request", str(exc))
        except DeadlineExceeded:
            self.metrics.inc("cancelled_total")
            self.metrics.inc("deadline_total")
            _send_error(handler, 504, "deadline",
                        f"request exceeded its deadline "
                        f"({deadline_s}s)")
        except Cancelled as exc:
            self.metrics.inc("cancelled_total")
            _send_error(handler, 503, exc.reason, str(exc),
                        retry_after=5.0)
        except CircuitOpenError as exc:
            self.metrics.inc("failed_total")
            _send_error(handler, 503, "breaker_open", str(exc),
                        retry_after=exc.retry_after,
                        site=exc.site)
        except Exception as exc:
            transient = bool(getattr(exc, "transient", False)) \
                or isinstance(exc, (ConnectionError, TimeoutError))
            self.metrics.inc("failed_total")
            if transient:
                _send_error(handler, 502, "backend",
                            f"backend failed after retries: "
                            f"{type(exc).__name__}: {exc}")
            else:
                logger.exception("internal error serving request")
                _send_error(handler, 500, "internal",
                            f"{type(exc).__name__}: {exc}")
        finally:
            if admitted:
                self.admission.release(client)
            self._unregister_token(token)

    def _run_streaming(self, handler: "_Handler",
                       session: OptimizerSession,
                       request: OptimizationRequest,
                       token: CancelToken,
                       use_store: Optional[bool]) -> None:
        """NDJSON: live events (this thread's only), then the result."""
        handler.send_response(200)
        handler.send_header("Content-Type", "application/x-ndjson")
        handler.send_header("Connection", "close")
        handler.end_headers()
        ident = threading.get_ident()
        write_lock = threading.Lock()

        def write_line(doc: Dict[str, Any]) -> None:
            data = (json.dumps(doc, sort_keys=True) + "\n").encode()
            with write_lock:
                handler.wfile.write(data)
                handler.wfile.flush()

        def forward(event) -> None:
            if threading.get_ident() != ident:
                return  # another request's event
            try:
                write_line({"kind": event.kind, "seq": event.seq,
                            "data": {k: v for k, v in event.data}})
            except OSError:
                # client went away: stop paying for the request
                token.cancel("client_disconnected")

        unsub_session = session.events.subscribe(forward)
        unsub_resilience = RESILIENCE_BUS.subscribe(forward)
        try:
            result = session.optimize(request, use_store=use_store,
                                      cancel=token)
            doc = result.to_json_dict(include_events=False)
            doc["kind"] = "result"
            write_line(doc)
        except Cancelled as exc:
            self.metrics.inc("cancelled_total")
            if isinstance(exc, DeadlineExceeded):
                self.metrics.inc("deadline_total")
            try:
                write_line({"kind": "error", "error": {
                    "kind": exc.reason, "message": str(exc)}})
            except OSError:
                pass
        finally:
            unsub_session()
            unsub_resilience()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_server(self) -> ThreadingHTTPServer:
        server = _Server((self.config.host, self.config.port), _Handler)
        server.repro_daemon = self
        self._httpd = server
        return server

    @property
    def address(self) -> Tuple[str, int]:
        assert self._httpd is not None, "daemon not started"
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def start(self) -> Tuple[str, int]:
        """Start serving on a background thread (tests)."""
        server = self._make_server()
        self._serve_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self.address

    def begin_drain(self, reason: str = "sigterm") -> None:
        """Stop admission, finish/cancel in-flight, stop the server."""
        if self._draining.is_set():
            return
        self._draining.set()
        self.metrics.inc("drains_total")
        logger.info("drain started (%s): %d in flight, %d queued",
                    reason, self.admission.inflight,
                    self.admission.queued)

        def _drain() -> None:
            clean = self.admission.wait_idle(self.config.drain_grace)
            if not clean:
                with self._tokens_lock:
                    tokens = list(self._tokens)
                for token in tokens:
                    token.cancel("drain")
                self.admission.wait_idle(5.0)
            if self._httpd is not None:
                self._httpd.shutdown()
            self._drained.set()

        threading.Thread(target=_drain, name="repro-serve-drain",
                         daemon=True).start()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join (in-process use)."""
        self.begin_drain(reason="stop")
        self._drained.wait(timeout)
        if self._httpd is not None:
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        self._unsub_resilience()

    def run_forever(self, announce=print) -> int:
        """Foreground serve loop with SIGTERM/SIGINT drain; returns 0."""
        server = self._make_server()
        host, port = self.address

        def _signal_drain(signum, frame) -> None:
            self.begin_drain(reason=signal.Signals(signum).name)

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _signal_drain)
        announce(f"repro-serve listening on http://{host}:{port} "
                 f"(inflight={self.config.max_inflight} "
                 f"queue={self.config.queue_depth} "
                 f"deadline={self.config.default_deadline or 'none'})",
                 flush=True)
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
            for signum, old in previous.items():
                signal.signal(signum, old)
        announce("repro-serve drained cleanly", flush=True)
        return 0

    # ------------------------------------------------------------------
    def health(self) -> Tuple[int, Dict[str, Any]]:
        draining = self._draining.is_set()
        doc = {
            "status": "draining" if draining else "ok",
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "sessions": self._session_count(),
        }
        return (503 if draining else 200), doc


class _Server(ThreadingHTTPServer):
    # non-daemon handler threads + block_on_close: server_close() waits
    # for in-flight handlers, which is exactly what drain wants
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    repro_daemon: ServeDaemon


class _Handler(BaseHTTPRequestHandler):
    server: _Server

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.repro_daemon

    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        if self.path == "/healthz":
            status, doc = self.daemon.health()
            _send_json(self, status, doc)
        elif self.path == "/metrics":
            _send_json(self, 200, self.daemon.metrics.snapshot())
        else:
            _send_error(self, 404, "not_found",
                        f"no such endpoint: {self.path}")

    def do_POST(self) -> None:
        if self.path != "/v1/optimize":
            _send_error(self, 404, "not_found",
                        f"no such endpoint: {self.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            raw = self.rfile.read(length) if length else b""
            body = json.loads(raw.decode("utf-8")) if raw else {}
            if not isinstance(body, dict):
                raise ValueError("body must be a JSON object")
        except (ValueError, UnicodeDecodeError) as exc:
            self.daemon.metrics.inc("requests_total")
            self.daemon.metrics.inc("failed_total")
            _send_error(self, 400, "bad_request",
                        f"invalid JSON body: {exc}")
            return
        try:
            self.daemon.handle_optimize(self, body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-response


def _send_json(handler: BaseHTTPRequestHandler, status: int,
               doc: Dict[str, Any],
               retry_after: Optional[float] = None) -> None:
    body = json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
    try:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            handler.send_header("Retry-After",
                                str(max(1, int(round(retry_after)))))
        handler.end_headers()
        handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError):
        pass  # client hung up; nothing to salvage


def _send_error(handler: BaseHTTPRequestHandler, status: int, kind: str,
                message: str, retry_after: Optional[float] = None,
                **extra: Any) -> None:
    error: Dict[str, Any] = {"kind": kind, "message": message}
    error.update(extra)
    if retry_after is not None:
        error["retry_after"] = max(1, int(round(retry_after)))
    _send_json(handler, status, {"error": error},
               retry_after=retry_after)
