"""The ``repro serve`` daemon: HTTP/JSON front door over warm sessions.

Stdlib only (:mod:`http.server` + threads).  One
:class:`ServeDaemon` owns:

* a **session pool** — warm :class:`~repro.api.OptimizerSession`
  objects keyed by their (dataset size, seed, method, backend, ...)
  configuration, LRU-bounded, shared across requests;
* an **admission controller** — bounded in-flight + queue with
  per-client limits; overload answers ``503`` + ``Retry-After``;
* **deadlines** — per-request (``deadline_s``) or the configured
  default, propagated into the pipeline as a cooperative
  :class:`~repro.cancellation.CancelToken`; expiry answers ``504``;
* the **resilience layer** — unless disabled, the request's LLM
  backend is transparently re-registered as ``resilient:<name>``
  (retry/backoff + circuit breaker, see :mod:`repro.api.resilience`);
* **graceful drain** — SIGTERM/SIGINT stop admission, let in-flight
  work finish (``drain_grace`` seconds), cancel what remains, then
  exit 0;
* optionally (``workers > 0``) a **supervised worker pool** —
  requests execute in forked worker processes with rlimits, a hang
  watchdog, backoff restarts and a poison-request quarantine (see
  :mod:`repro.serve.supervisor`): a crashing request answers ``500``
  and never takes the daemon down;
* unless ``--no-journal``, a **write-ahead request journal** on the
  artifact store (see :mod:`repro.serve.journal`): duplicates
  short-circuit to the journaled result, ``--recover`` replays
  unfinished requests after a crash;
* ``/healthz``, ``/metrics`` and ``/quarantine`` endpoints.

Endpoints
---------
``POST /v1/optimize``
    body: ``{"request": {"source": ..., "system": ..., "persona": ...,
    "perf": {...}, "test": {...}}, "session": {...},
    "deadline_s": 5.0, "stream": true|false, "use_store": bool}``.
    Non-streaming responses are the byte-stable ``repro optimize
    --json`` document; ``"stream": true`` answers NDJSON — one line
    per :class:`SessionEvent` as it happens (resilience events
    included), then a final ``{"kind": "result", ...}`` line.
``GET /healthz``
    200 while serving, 503 while draining.
``GET /metrics``
    queue depth, in-flight, totals (completed / failed / rejected /
    cancelled / retries / breaker trips), breaker states, worker-pool
    and quarantine state, journal hits/replays, p50/p95 latency.
``GET /quarantine``
    quarantined request signatures with crash diagnostics.
``POST /quarantine/clear``
    body ``{}`` or ``{"signature": "..."}`` — release all (or one)
    quarantined signature.

Errors are structured: ``{"error": {"kind": ..., "message": ...}}``
with kinds ``bad_request`` (400), ``quarantined`` (422),
``deadline`` (504), ``draining`` / ``overloaded`` / ``client_limit``
(503 + Retry-After), ``breaker_open`` (503 + Retry-After),
``backend`` (502), ``worker_crashed`` (500, with the crash reason)
and ``internal`` (500).  A request that fails — or kills its worker —
*never* takes the daemon down with it.
"""

from __future__ import annotations

import json
import logging
import signal
import threading
import time
from collections import OrderedDict
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from pathlib import Path

from ..api import (OptimizationRequest, OptimizerSession,
                   UnknownComponentError)
from ..api.resilience import (CircuitOpenError, RESILIENCE_BUS,
                              RetryPolicy, breaker_states,
                              install_resilient_llm)
from ..cancellation import (Cancelled, CancelToken, DeadlineExceeded,
                            cancel_scope)
from ..evaluation.store import STORE_DIR, cache_dir
from ..ir import parse_scop
from ..storage import open_store
from ..testing.faults import register_fault_backends
from .admission import AdmissionController, Rejected
from .config import ServeConfig
from .journal import RequestJournal, request_signature
from .metrics import Metrics
from .supervisor import (QuarantineRegistry, WorkerCrashed,
                         WorkerSupervisor)

logger = logging.getLogger("repro.serve")

#: session-spec keys a request may set; everything else is a 400
SESSION_KEYS = ("dataset_size", "seed", "generator", "retrieval_method",
                "llm_backend", "base_compiler", "k", "use_store")

#: resilience event kinds -> metrics counters
_RESILIENCE_COUNTERS = {
    "retry": "retries_total",
    "retry_give_up": "retry_give_ups_total",
    "breaker_open": "breaker_opens_total",
    "breaker_half_open": "breaker_probes_total",
    "breaker_close": "breaker_closes_total",
}

#: native kernel-cache events (local or relayed from a worker process)
#: -> metrics counters; `kernel_cache_hits_total` counts disk hits, the
#: proof that a restarted worker reused the shared cache
_KERNEL_COUNTERS = {
    "kernel_compile": "kernel_compiles_total",
    "kernel_disk_hit": "kernel_cache_hits_total",
    "kernel_memory_hit": "kernel_memory_hits_total",
}


class BadRequest(Exception):
    """Client error: malformed body / unknown fields."""


def _default_params(program, value: int) -> Dict[str, int]:
    return {p: value for p in program.params}


class ServeDaemon:
    """Everything behind the HTTP surface; usable in-process in tests."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig.from_env()
        self.metrics = Metrics()
        self.admission = AdmissionController(
            self.config.max_inflight, self.config.queue_depth,
            self.config.per_client,
            latency_hint=self.metrics.latency_p50)
        self._sessions: "OrderedDict[Tuple, OptimizerSession]" = \
            OrderedDict()
        self._sessions_lock = threading.Lock()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._tokens: set = set()
        self._tokens_lock = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._serve_thread: Optional[threading.Thread] = None
        self._booted = False
        self.quarantine = QuarantineRegistry(
            self.config.worker_crash_limit)
        self.supervisor: Optional[WorkerSupervisor] = None
        if self.config.workers > 0:
            self.supervisor = WorkerSupervisor(
                self.config.workers,
                memory_mb=self.config.worker_memory_mb,
                cpu_s=self.config.worker_cpu_s,
                max_sessions=self.config.max_sessions,
                hang_timeout=self.config.worker_hang_timeout,
                restart_base=self.config.worker_restart_base,
                restart_cap=self.config.worker_restart_cap)
        self.journal: Optional[RequestJournal] = None
        if self.config.journal:
            # raises JournalUnavailable on a volatile backend — the
            # operator must opt out explicitly with --no-journal
            self.journal = RequestJournal(
                open_store(Path(cache_dir()) / STORE_DIR))
        register_fault_backends()
        self._unsub_resilience = RESILIENCE_BUS.subscribe(
            self._on_resilience_event)
        # in-process executions (workers=0, or tests) report kernel-cache
        # events directly; supervised workers relay them over the stat
        # pipe instead (see supervisor._worker_run_job)
        from ..runtime import native as _native
        _native.on_cache_event = \
            lambda kind: self._on_worker_stat("kernel_" + kind)
        self.metrics.gauge("queue_depth", lambda: self.admission.queued)
        self.metrics.gauge("inflight", lambda: self.admission.inflight)
        self.metrics.gauge("sessions", self._session_count)
        self.metrics.gauge("breakers", breaker_states)
        self.metrics.gauge("draining", self._draining.is_set)
        self.metrics.gauge("quarantined", lambda: self.quarantine.count)
        if self.supervisor is not None:
            self.metrics.gauge("workers", self.supervisor.describe)
        from ..storage import INTEGRITY
        self.metrics.gauge("integrity", INTEGRITY.snapshot)

    # ------------------------------------------------------------------
    # session pool
    # ------------------------------------------------------------------
    def _session_count(self) -> int:
        with self._sessions_lock:
            return len(self._sessions)

    def _merged_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        """Defaults + request spec, validated — resilience not applied.

        This is what a supervised worker receives: the worker installs
        its own ``resilient:`` alias (breakers/retries are per-process
        state), which keeps the session key — and therefore the result
        bytes — identical to the in-process path.
        """
        merged = dict(self.config.default_session)
        merged.update(spec or {})
        unknown = sorted(set(merged) - set(SESSION_KEYS))
        if unknown:
            raise BadRequest(
                f"unknown session field(s) {', '.join(unknown)}; "
                f"allowed: {', '.join(SESSION_KEYS)}")
        return merged

    def _effective_spec(self, spec: Dict[str, Any]) -> Dict[str, Any]:
        merged = self._merged_spec(spec)
        if self.config.resilience:
            backend = merged.get("llm_backend", "simulated")
            merged["llm_backend"] = install_resilient_llm(
                backend, RetryPolicy.from_env())
        return merged

    def session_for(self, spec: Dict[str, Any]) -> OptimizerSession:
        """The pooled warm session for this configuration (LRU)."""
        merged = self._effective_spec(spec)
        key = tuple(sorted(merged.items()))
        with self._sessions_lock:
            session = self._sessions.get(key)
            if session is not None:
                self._sessions.move_to_end(key)
                return session
        # build outside the lock: construction validates components and
        # may raise; two racing builders just build twice, last one wins
        session = OptimizerSession(**merged)
        with self._sessions_lock:
            self._sessions[key] = session
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.config.max_sessions:
                self._sessions.popitem(last=False)
        return session

    # ------------------------------------------------------------------
    # request materialization
    # ------------------------------------------------------------------
    @staticmethod
    def materialize_request(entry: Dict[str, Any]) -> OptimizationRequest:
        if not isinstance(entry, dict):
            raise BadRequest("'request' must be an object")
        source = entry.get("source")
        if not isinstance(source, str) or not source.strip():
            raise BadRequest("'request.source' (SCoP text) is required")
        try:
            program = parse_scop(source)
        except Exception as exc:
            raise BadRequest(f"unparseable SCoP source: {exc}")
        perf = {k: int(v) for k, v in entry.get("perf", {}).items()} \
            or _default_params(program, 1500)
        test = {k: int(v) for k, v in entry.get("test", {}).items()} \
            or _default_params(program, 8)
        try:
            return OptimizationRequest.make(
                program, perf, test,
                system=entry.get("system", "looprag"),
                persona=entry.get("persona", "deepseek"),
                optimizer=entry.get("optimizer"),
                time_limit=entry.get("time_limit"),
                tag=entry.get("tag"))
        except UnknownComponentError as exc:
            raise BadRequest(str(exc))

    # ------------------------------------------------------------------
    # the request path (called from handler threads)
    # ------------------------------------------------------------------
    def _on_resilience_event(self, event) -> None:
        counter = _RESILIENCE_COUNTERS.get(event.kind)
        if counter is not None:
            self.metrics.inc(counter)

    def _on_worker_stat(self, kind: str) -> None:
        """Resilience/kernel-cache events relayed from a worker."""
        counter = (_RESILIENCE_COUNTERS.get(kind)
                   or _KERNEL_COUNTERS.get(kind))
        if counter is not None:
            self.metrics.inc(counter)

    def _register_token(self, token: CancelToken) -> None:
        with self._tokens_lock:
            self._tokens.add(token)

    def _unregister_token(self, token: CancelToken) -> None:
        with self._tokens_lock:
            self._tokens.discard(token)

    def _execute_doc(self, request: OptimizationRequest,
                     spec: Dict[str, Any], use_store: Optional[bool],
                     token: CancelToken, signature: str,
                     on_event=None, stream: bool = False
                     ) -> Dict[str, Any]:
        """One request through whichever execution path is configured.

        Returns the full result document (events included); callers
        strip events per the client's ``include_events``.  The worker
        path runs the same ``OptimizerSession.optimize`` as the
        in-process path, so the documents are byte-identical.
        """
        if self.supervisor is not None:
            job = {"request": request, "spec": spec,
                   "resilience": self.config.resilience,
                   "use_store": use_store,
                   "deadline": token.remaining(),
                   "stream": stream, "signature": signature}
            return self.supervisor.execute(
                job, token=token, on_event=on_event,
                on_stat=self._on_worker_stat)
        session = self.session_for(spec)
        result = session.optimize(request, use_store=use_store,
                                  cancel=token)
        return result.to_json_dict(include_events=True)

    def _journal_failed(self, journaled: bool, signature: str,
                        kind: str, message: str) -> None:
        if journaled and self.journal is not None:
            try:
                self.journal.failed(signature, {"kind": kind,
                                                "message": message})
            except Exception:
                logger.exception("journal write failed for %s",
                                 signature[:12])

    def handle_optimize(self, handler: "_Handler",
                        body: Dict[str, Any]) -> None:
        self.metrics.inc("requests_total")
        started = time.monotonic()
        if self._draining.is_set():
            self.metrics.inc("rejected_total")
            _send_error(handler, 503, "draining",
                        "daemon is draining",
                        retry_after=self.admission.retry_after_estimate())
            return
        client = handler.headers.get("X-Client-Id") \
            or handler.client_address[0]
        signature = request_signature(body)
        stream = bool(body.get("stream"))
        include_events = bool(body.get("include_events", True))
        if self.journal is not None and not stream:
            hit = self.journal.result(signature)
            if hit is not None:
                self.metrics.inc("journal_hits_total")
                self.metrics.inc("completed_total")
                self.metrics.observe_latency(time.monotonic() - started)
                _send_json(handler, 200,
                           _strip_events(hit, include_events))
                return
        poisoned = self.quarantine.lookup(signature)
        if poisoned is not None:
            self.metrics.inc("rejected_total")
            self.metrics.inc("rejected_quarantined_total")
            _send_error(handler, 422, "quarantined",
                        f"request signature {signature[:12]} is "
                        f"quarantined after {poisoned['crashes']} "
                        f"worker crashes (POST /quarantine/clear to "
                        f"release)",
                        signature=signature,
                        crashes=poisoned["crashes"],
                        last_reason=poisoned.get("last_reason"),
                        last_error=poisoned.get("last_error"))
            return
        deadline_s = body.get("deadline_s",
                              self.config.default_deadline or None)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        token = CancelToken.with_timeout(deadline_s)
        self._register_token(token)
        admitted = False
        journaled = False
        # non-streaming replies are rendered *after* the finally below
        # releases the admission slot: the client only sees its bytes
        # once the slot is free, so reading a reply and immediately
        # re-posting can never race the slot this request still held
        # (with queue_depth=0 that race answered a spurious 503)
        reply = None
        try:
            try:
                self.admission.acquire(client, token)
                admitted = True
            except Rejected as exc:
                self.metrics.inc("rejected_total")
                self.metrics.inc(f"rejected_{exc.reason}_total")
                # no slot held: safe (and simplest) to answer inline
                _send_error(handler, 503, exc.reason, str(exc),
                            retry_after=exc.retry_after)
                return
            request = self.materialize_request(body.get("request", {}))
            spec = self._merged_spec(body.get("session", {}))
            use_store = body.get("use_store")
            if self.journal is not None and not stream:
                # write-ahead: only after validation, so every
                # journaled body is replayable by --recover
                self.journal.admitted(signature, body)
                journaled = True
            if stream:
                self.metrics.inc("streams_total")
                self._run_streaming(handler, request, spec, token,
                                    use_store, signature)
            else:
                if journaled:
                    self.journal.started(signature)
                doc = self._execute_doc(request, spec, use_store,
                                        token, signature)
                if journaled:
                    self.journal.completed(signature, doc)
                self.quarantine.note_success(signature)
                reply = partial(_send_json, handler, 200,
                                _strip_events(doc, include_events))
            self.metrics.inc("completed_total")
            self.metrics.observe_latency(time.monotonic() - started)
        except BadRequest as exc:
            self.metrics.inc("failed_total")
            reply = partial(_send_error, handler, 400, "bad_request",
                            str(exc))
        except UnknownComponentError as exc:
            self.metrics.inc("failed_total")
            reply = partial(_send_error, handler, 400, "bad_request",
                            str(exc))
        except DeadlineExceeded:
            self.metrics.inc("cancelled_total")
            self.metrics.inc("deadline_total")
            self._journal_failed(journaled, signature, "deadline",
                                 f"deadline {deadline_s}s exceeded")
            reply = partial(_send_error, handler, 504, "deadline",
                            f"request exceeded its deadline "
                            f"({deadline_s}s)")
        except Cancelled as exc:
            self.metrics.inc("cancelled_total")
            self._journal_failed(journaled, signature, exc.reason,
                                 str(exc))
            reply = partial(
                _send_error, handler, 503, exc.reason, str(exc),
                retry_after=self.admission.retry_after_estimate())
        except CircuitOpenError as exc:
            self.metrics.inc("failed_total")
            self._journal_failed(journaled, signature, "breaker_open",
                                 str(exc))
            reply = partial(_send_error, handler, 503, "breaker_open",
                            str(exc), retry_after=exc.retry_after,
                            site=exc.site)
        except WorkerCrashed as exc:
            self.metrics.inc("failed_total")
            self.metrics.inc("worker_crashes_total")
            entry = self.quarantine.note_crash(signature, exc.reason,
                                               str(exc))
            self._journal_failed(journaled, signature, "worker_crashed",
                                 str(exc))
            reply = partial(_send_error, handler, 500, "worker_crashed",
                            f"worker crashed mid-request: {exc}",
                            reason=exc.reason, signature=signature,
                            crashes=entry["crashes"],
                            quarantined=entry["quarantined"])
        except Exception as exc:
            transient = bool(getattr(exc, "transient", False)) \
                or isinstance(exc, (ConnectionError, TimeoutError))
            self.metrics.inc("failed_total")
            type_name = getattr(exc, "remote_type", type(exc).__name__)
            if transient:
                self._journal_failed(journaled, signature, "backend",
                                     str(exc))
                reply = partial(_send_error, handler, 502, "backend",
                                f"backend failed after retries: "
                                f"{type_name}: {exc}")
            else:
                logger.exception("internal error serving request")
                self._journal_failed(journaled, signature, "internal",
                                     str(exc))
                reply = partial(_send_error, handler, 500, "internal",
                                f"{type_name}: {exc}")
        finally:
            if admitted:
                self.admission.release(client)
            self._unregister_token(token)
        if reply is not None:
            reply()

    def _run_streaming(self, handler: "_Handler",
                       request: OptimizationRequest,
                       spec: Dict[str, Any],
                       token: CancelToken,
                       use_store: Optional[bool],
                       signature: str) -> None:
        """NDJSON: live events (this request's only), then the result.

        Streaming requests bypass the journal (a byte-stream already
        delivered cannot be replayed idempotently) but do execute in
        the worker pool when one is configured — worker events are
        relayed over the pipe and written as they arrive.
        """
        handler.send_response(200)
        handler.send_header("Content-Type", "application/x-ndjson")
        handler.send_header("Connection", "close")
        handler.end_headers()
        write_lock = threading.Lock()

        def write_line(doc: Dict[str, Any]) -> None:
            data = (json.dumps(doc, sort_keys=True) + "\n").encode()
            with write_lock:
                handler.wfile.write(data)
                handler.wfile.flush()

        if self.supervisor is not None:
            def on_event(doc: Dict[str, Any]) -> None:
                try:
                    write_line(doc)
                except OSError:
                    # client went away: stop paying for the request
                    token.cancel("client_disconnected")
                    raise  # the dispatcher stops forwarding to us
            try:
                doc = self._execute_doc(request, spec, use_store,
                                        token, signature,
                                        on_event=on_event, stream=True)
                doc = _strip_events(doc, include_events=False)
                doc["kind"] = "result"
                write_line(doc)
                self.quarantine.note_success(signature)
            except Cancelled as exc:
                self.metrics.inc("cancelled_total")
                if isinstance(exc, DeadlineExceeded):
                    self.metrics.inc("deadline_total")
                try:
                    write_line({"kind": "error", "error": {
                        "kind": exc.reason, "message": str(exc)}})
                except OSError:
                    pass
            except WorkerCrashed as exc:
                self.metrics.inc("failed_total")
                self.metrics.inc("worker_crashes_total")
                entry = self.quarantine.note_crash(
                    signature, exc.reason, str(exc))
                try:
                    write_line({"kind": "error", "error": {
                        "kind": "worker_crashed", "message": str(exc),
                        "reason": exc.reason,
                        "quarantined": entry["quarantined"]}})
                except OSError:
                    pass
            except Exception as exc:
                # the 200 + NDJSON header is already on the wire; an
                # in-stream error line is the best remaining answer
                self.metrics.inc("failed_total")
                try:
                    write_line({"kind": "error", "error": {
                        "kind": "failure", "message": str(exc)}})
                except OSError:
                    pass
            return

        session = self.session_for(spec)
        ident = threading.get_ident()

        def forward(event) -> None:
            if threading.get_ident() != ident:
                return  # another request's event
            try:
                write_line({"kind": event.kind, "seq": event.seq,
                            "data": {k: v for k, v in event.data}})
            except OSError:
                # client went away: stop paying for the request
                token.cancel("client_disconnected")

        unsub_session = session.events.subscribe(forward)
        unsub_resilience = RESILIENCE_BUS.subscribe(forward)
        try:
            result = session.optimize(request, use_store=use_store,
                                      cancel=token)
            doc = result.to_json_dict(include_events=False)
            doc["kind"] = "result"
            write_line(doc)
        except Cancelled as exc:
            self.metrics.inc("cancelled_total")
            if isinstance(exc, DeadlineExceeded):
                self.metrics.inc("deadline_total")
            try:
                write_line({"kind": "error", "error": {
                    "kind": exc.reason, "message": str(exc)}})
            except OSError:
                pass
        finally:
            unsub_session()
            unsub_resilience()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _make_server(self) -> ThreadingHTTPServer:
        server = _Server((self.config.host, self.config.port), _Handler)
        server.repro_daemon = self
        self._httpd = server
        return server

    @property
    def address(self) -> Tuple[str, int]:
        assert self._httpd is not None, "daemon not started"
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def _boot(self) -> None:
        """Fork the worker pool and replay the journal, exactly once."""
        if self._booted:
            return
        self._booted = True
        if self.supervisor is not None:
            self.supervisor.start()
        if self.config.recover:
            replayed = self.recover()
            if replayed:
                logger.info("recovered %d journaled request(s)",
                            replayed)

    def recover(self) -> int:
        """Replay admitted-but-unfinished journal records.

        Each is re-materialized from its journaled body and executed
        through the normal path (workers included) with no deadline —
        the original client is gone; the point is that the work
        admitted before the crash ends up completed in the journal,
        byte-identical to what the original request would have
        returned, ready for the client's resubmission to short-circuit
        onto.
        """
        if self.journal is None:
            return 0
        replayed = 0
        for signature, record in self.journal.unfinished():
            if record is None:
                # the journaled line failed its integrity check:
                # replaying a corrupted body would execute the wrong
                # request — refuse, mark it failed, keep recovering
                self.journal.failed(signature, {
                    "kind": "corrupt_record",
                    "message": "journal record failed its crc check; "
                               "refusing to replay (resubmit the "
                               "request to re-run it)"})
                self.metrics.inc("journal_corrupt_total")
                logger.warning("recover: journal record %s is corrupt; "
                               "marked failed, not replayed",
                               signature[:12])
                continue
            body = record.get("body") or {}
            try:
                request = self.materialize_request(
                    body.get("request", {}))
                spec = self._merged_spec(body.get("session", {}))
                token = CancelToken()
                self._register_token(token)
                try:
                    self.journal.started(signature)
                    doc = self._execute_doc(request, spec,
                                            body.get("use_store"),
                                            token, signature)
                finally:
                    self._unregister_token(token)
                self.journal.completed(signature, doc)
                self.metrics.inc("journal_replayed_total")
                replayed += 1
            except Exception as exc:
                self.journal.failed(signature, {
                    "kind": "replay_failed",
                    "message": f"{type(exc).__name__}: {exc}"})
                self.metrics.inc("journal_replay_failed_total")
                logger.warning("recover: replay of %s failed: %s",
                               signature[:12], exc)
        return replayed

    def start(self) -> Tuple[str, int]:
        """Start serving on a background thread (tests)."""
        self._boot()
        server = self._make_server()
        self._serve_thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._serve_thread.start()
        return self.address

    def begin_drain(self, reason: str = "sigterm") -> None:
        """Stop admission, finish/cancel in-flight, stop the server."""
        if self._draining.is_set():
            return
        self._draining.set()
        self.metrics.inc("drains_total")
        logger.info("drain started (%s): %d in flight, %d queued",
                    reason, self.admission.inflight,
                    self.admission.queued)

        def _drain() -> None:
            clean = self.admission.wait_idle(self.config.drain_grace)
            if not clean:
                with self._tokens_lock:
                    tokens = list(self._tokens)
                for token in tokens:
                    token.cancel("drain")
                self.admission.wait_idle(5.0)
            if self._httpd is not None:
                self._httpd.shutdown()
            self._drained.set()

        threading.Thread(target=_drain, name="repro-serve-drain",
                         daemon=True).start()

    def stop(self, timeout: float = 30.0) -> None:
        """Drain and join (in-process use)."""
        self.begin_drain(reason="stop")
        self._drained.wait(timeout)
        if self._httpd is not None:
            self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout)
        if self.supervisor is not None:
            self.supervisor.shutdown()
        self._unsub_resilience()
        from ..runtime import native as _native
        _native.on_cache_event = None

    def run_forever(self, announce=print) -> int:
        """Foreground serve loop with SIGTERM/SIGINT drain; returns 0."""
        self._boot()
        server = self._make_server()
        host, port = self.address

        def _signal_drain(signum, frame) -> None:
            self.begin_drain(reason=signal.Signals(signum).name)

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(signum, _signal_drain)
        announce(f"repro-serve listening on http://{host}:{port} "
                 f"(inflight={self.config.max_inflight} "
                 f"queue={self.config.queue_depth} "
                 f"workers={self.config.workers or 'in-process'} "
                 f"journal={'on' if self.journal else 'off'} "
                 f"deadline={self.config.default_deadline or 'none'})",
                 flush=True)
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.server_close()
            for signum, old in previous.items():
                signal.signal(signum, old)
            if self.supervisor is not None:
                self.supervisor.shutdown()
        announce("repro-serve drained cleanly", flush=True)
        return 0

    # ------------------------------------------------------------------
    def health(self) -> Tuple[int, Dict[str, Any]]:
        draining = self._draining.is_set()
        doc = {
            "status": "draining" if draining else "ok",
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "sessions": self._session_count(),
        }
        return (503 if draining else 200), doc


class _Server(ThreadingHTTPServer):
    # non-daemon handler threads + block_on_close: server_close() waits
    # for in-flight handlers, which is exactly what drain wants
    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True
    repro_daemon: ServeDaemon


class _Handler(BaseHTTPRequestHandler):
    server: _Server

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.repro_daemon

    def log_message(self, fmt: str, *args: Any) -> None:
        logger.debug("%s %s", self.address_string(), fmt % args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        if self.path == "/healthz":
            status, doc = self.daemon.health()
            _send_json(self, status, doc)
        elif self.path == "/metrics":
            _send_json(self, 200, self.daemon.metrics.snapshot())
        elif self.path == "/quarantine":
            _send_json(self, 200, {
                "limit": self.daemon.quarantine.limit,
                "quarantined": self.daemon.quarantine.snapshot()})
        else:
            _send_error(self, 404, "not_found",
                        f"no such endpoint: {self.path}")

    def _read_json_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        raw = self.rfile.read(length) if length else b""
        body = json.loads(raw.decode("utf-8")) if raw else {}
        if not isinstance(body, dict):
            raise ValueError("body must be a JSON object")
        return body

    def do_POST(self) -> None:
        if self.path == "/quarantine/clear":
            try:
                body = self._read_json_body()
            except (ValueError, UnicodeDecodeError) as exc:
                _send_error(self, 400, "bad_request",
                            f"invalid JSON body: {exc}")
                return
            cleared = self.daemon.quarantine.clear(
                body.get("signature"))
            _send_json(self, 200, {"cleared": cleared})
            return
        if self.path != "/v1/optimize":
            _send_error(self, 404, "not_found",
                        f"no such endpoint: {self.path}")
            return
        try:
            body = self._read_json_body()
        except (ValueError, UnicodeDecodeError) as exc:
            self.daemon.metrics.inc("requests_total")
            self.daemon.metrics.inc("failed_total")
            _send_error(self, 400, "bad_request",
                        f"invalid JSON body: {exc}")
            return
        try:
            self.daemon.handle_optimize(self, body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client hung up mid-response


def _strip_events(doc: Dict[str, Any],
                  include_events: bool) -> Dict[str, Any]:
    """The full result document, minus "events" when not requested.

    Journaled and worker-produced documents always carry events;
    popping the key yields exactly the bytes
    ``to_json_dict(include_events=False)`` would have produced.
    """
    if include_events:
        return doc
    doc = dict(doc)
    doc.pop("events", None)
    return doc


def _send_json(handler: BaseHTTPRequestHandler, status: int,
               doc: Dict[str, Any],
               retry_after: Optional[float] = None) -> None:
    body = json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
    try:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            handler.send_header("Retry-After",
                                str(max(1, int(round(retry_after)))))
        handler.end_headers()
        handler.wfile.write(body)
    except (BrokenPipeError, ConnectionResetError):
        pass  # client hung up; nothing to salvage


def _send_error(handler: BaseHTTPRequestHandler, status: int, kind: str,
                message: str, retry_after: Optional[float] = None,
                **extra: Any) -> None:
    error: Dict[str, Any] = {"kind": kind, "message": message}
    error.update(extra)
    if retry_after is not None:
        error["retry_after"] = max(1, int(round(retry_after)))
    _send_json(handler, status, {"error": error},
               retry_after=retry_after)
