"""Supervised worker processes for ``repro serve`` (crash containment).

The daemon's in-process execution path is fast but fragile: one
segfaulting kernel, one runaway allocation, one hung toolchain call
takes every pooled session — and the HTTP front door — down with it.
With ``workers > 0`` the daemon instead dispatches each admitted
request to a pool of **forked worker processes** supervised by this
module:

* each worker applies its rlimits at boot (``RLIMIT_AS`` /
  ``RLIMIT_CPU`` via :mod:`resource`) and then serves one job at a
  time over a duplex pipe, running the exact same
  ``OptimizerSession.optimize`` the in-process path runs — results are
  byte-identical by construction (pinned by an equivalence test);
* a **watchdog** thread heartbeats the pool: a worker busy past the
  hang timeout is killed (SIGKILL) and counted as a hang, a worker
  found dead is reaped, and replacements are forked with exponential
  backoff so a crash-looping environment cannot melt the host;
* a worker dying mid-request surfaces as :class:`WorkerCrashed` —
  mapped to a ``500`` with the crash reason — and *never* as a daemon
  death;
* a request signature that keeps crashing workers is quarantined by
  :class:`QuarantineRegistry` (``422`` with diagnostics) so one poison
  kernel cannot grind the pool through endless restarts.

Determinism note: injected process faults (``worker.execute:kill`` and
friends, see :mod:`repro.testing.faults`) are scheduled on the *parent*
side — the supervisor asks the active plan what is due at dispatch time
and ships the clauses with the job — so the fault schedule survives
worker restarts instead of resetting with each fresh process.

Fork caveat: replacement workers are forked from the watchdog thread
while request threads run.  The worker touches only fork-tolerant state
before its first job (pipe, rlimits, signal disposition), so the usual
forked-locks hazard is confined to the same narrow windows every
``multiprocessing``-based pool accepts.
"""

from __future__ import annotations

import logging
import multiprocessing
import multiprocessing.connection
import os
import queue
import signal
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from ..cancellation import (Cancelled, CancelToken, DeadlineExceeded,
                            cancelled_from)
from ..testing.faults import (EXIT_OOM, FaultClause, active_plan,
                              apply_clause)

logger = logging.getLogger("repro.serve.supervisor")

#: fault-plan site consumed once per dispatched job
WORKER_SITE = "worker.execute"

_CTX = multiprocessing.get_context("fork")


class WorkerCrashed(Exception):
    """A worker process died (or was killed) while running a request."""

    def __init__(self, message: str, reason: str = "crash",
                 exitcode: Optional[int] = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.exitcode = exitcode


class _RemoteFailure(Exception):
    """A structured in-worker exception relayed over the pipe."""

    def __init__(self, info: Dict[str, Any]) -> None:
        super().__init__(info.get("message", "worker failure"))
        self.info = info
        self.transient = bool(info.get("transient"))
        #: original exception type name, for honest error messages
        self.remote_type = info.get("type", "Exception")


def _raise_remote(info: Dict[str, Any]) -> None:
    """Re-raise a worker's ("err", info) as the matching parent type."""
    kind = info.get("kind")
    if kind == "cancelled":
        exc = cancelled_from(info.get("reason", "cancelled"),
                             info.get("message", "request cancelled"))
        # the worker unwound cooperatively and is healthy — the
        # dispatcher must not kill it like a parent-side cancellation
        exc.from_worker = True
        raise exc
    if kind == "breaker_open":
        from ..api.resilience import CircuitOpenError
        raise CircuitOpenError(info.get("site", "?"),
                               float(info.get("retry_after", 1.0)))
    raise _RemoteFailure(info)


# ----------------------------------------------------------------------
# the worker side (runs in the forked child)
# ----------------------------------------------------------------------
def _apply_rlimits(memory_mb: int, cpu_s: int) -> Dict[str, int]:
    import resource
    applied = {}
    if memory_mb > 0:
        limit = memory_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        applied["rlimit_as_mb"] = memory_mb
    if cpu_s > 0:
        resource.setrlimit(resource.RLIMIT_CPU, (cpu_s, cpu_s))
        applied["rlimit_cpu_s"] = cpu_s
    return applied


def _worker_session(sessions: "OrderedDict", spec: Dict[str, Any],
                    resilience: bool, max_sessions: int):
    from ..api import OptimizerSession
    from ..api.resilience import RetryPolicy, install_resilient_llm
    merged = dict(spec)
    if resilience:
        backend = merged.get("llm_backend", "simulated")
        merged["llm_backend"] = install_resilient_llm(
            backend, RetryPolicy.from_env())
    key = tuple(sorted(merged.items()))
    session = sessions.get(key)
    if session is not None:
        sessions.move_to_end(key)
        return session
    session = OptimizerSession(**merged)
    sessions[key] = session
    while len(sessions) > max(1, max_sessions):
        sessions.popitem(last=False)
    return session


def _worker_run_job(conn, sessions: "OrderedDict",
                    max_sessions: int, job: Dict[str, Any]) -> None:
    from ..api.resilience import RESILIENCE_BUS
    for clause in job.get("faults", ()):
        # may SIGKILL/_exit/hang/raise; scheduled by the parent
        apply_clause(clause, WORKER_SITE)
    session = _worker_session(sessions, job.get("spec") or {},
                              bool(job.get("resilience")), max_sessions)
    token = CancelToken.with_timeout(job.get("deadline"))
    unsubscribes = []

    def forward_stat(event) -> None:
        conn.send(("stat", event.kind))

    unsubscribes.append(RESILIENCE_BUS.subscribe(forward_stat))
    # kernel-cache events (compile / disk_hit / memory_hit) ride the
    # same stat pipe so /metrics can prove that a restarted worker
    # reuses the shared on-disk kernel cache instead of recompiling
    from ..runtime import native as _native
    previous_hook = _native.on_cache_event
    _native.on_cache_event = lambda kind: conn.send(("stat",
                                                     "kernel_" + kind))
    unsubscribes.append(
        lambda: setattr(_native, "on_cache_event", previous_hook))
    if job.get("stream"):
        def forward_event(event) -> None:
            conn.send(("event", {"kind": event.kind, "seq": event.seq,
                                 "data": {k: v for k, v in event.data}}))
        unsubscribes.append(session.events.subscribe(forward_event))
        unsubscribes.append(RESILIENCE_BUS.subscribe(forward_event))
    try:
        result = session.optimize(job["request"],
                                  use_store=job.get("use_store"),
                                  cancel=token)
    finally:
        for unsubscribe in unsubscribes:
            unsubscribe()
    conn.send(("ok", result.to_json_dict(include_events=True)))


def _worker_main(conn, memory_mb: int, cpu_s: int,
                 max_sessions: int) -> None:
    from ..api.resilience import CircuitOpenError
    # Ctrl+C belongs to the daemon's drain logic, not to the pool
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    applied = _apply_rlimits(memory_mb, cpu_s)
    sessions: "OrderedDict" = OrderedDict()
    try:
        conn.send(("ready", dict(applied, pid=os.getpid())))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            if message[0] != "job":
                continue
            try:
                _worker_run_job(conn, sessions, max_sessions, message[1])
            except MemoryError:
                # the address-space limit (or an injected oom) hit;
                # the heap is untrustworthy now — report via exit code
                os._exit(EXIT_OOM)
            except Cancelled as exc:
                conn.send(("err", {
                    "kind": "cancelled", "reason": exc.reason,
                    "message": str(exc)}))
            except CircuitOpenError as exc:
                conn.send(("err", {
                    "kind": "breaker_open", "message": str(exc),
                    "site": exc.site, "retry_after": exc.retry_after}))
            except Exception as exc:
                transient = bool(getattr(exc, "transient", False)) \
                    or isinstance(exc, (ConnectionError, TimeoutError))
                conn.send(("err", {
                    "kind": "failure", "transient": transient,
                    "type": type(exc).__name__, "message": str(exc)}))
    except (EOFError, OSError, KeyboardInterrupt):
        pass  # parent went away (or drain); just exit
    os._exit(0)


# ----------------------------------------------------------------------
# the parent side
# ----------------------------------------------------------------------
class _WorkerHandle:
    __slots__ = ("index", "generation", "proc", "conn", "busy_since",
                 "signature", "kill_reason", "jobs_done")

    def __init__(self, index: int, generation: int, proc, conn) -> None:
        self.index = index
        self.generation = generation
        self.proc = proc
        self.conn = conn
        self.busy_since: Optional[float] = None
        self.signature: Optional[str] = None
        self.kill_reason: Optional[str] = None
        self.jobs_done = 0

    @property
    def name(self) -> str:
        return f"worker-{self.index}.g{self.generation}"


class QuarantineRegistry:
    """Crash bookkeeping per request signature; poison gets 422'd.

    A signature whose jobs crash workers ``limit`` times is quarantined:
    further submissions are rejected with diagnostics instead of being
    allowed to grind the pool through another crash/restart cycle.
    Operators inspect via ``GET /quarantine`` (and the ``/metrics``
    quarantine gauge) and release via ``POST /quarantine/clear``.
    """

    def __init__(self, limit: int) -> None:
        self.limit = max(1, limit)
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}

    def note_crash(self, signature: str, reason: str,
                   message: str) -> Dict[str, Any]:
        """Record one crash; returns the (possibly quarantined) entry."""
        with self._lock:
            entry = self._entries.setdefault(signature, {
                "signature": signature, "crashes": 0,
                "quarantined": False})
            entry["crashes"] += 1
            entry["last_reason"] = reason
            entry["last_error"] = message
            if entry["crashes"] >= self.limit:
                entry["quarantined"] = True
            return dict(entry)

    def lookup(self, signature: str) -> Optional[Dict[str, Any]]:
        """The entry iff this signature is quarantined."""
        with self._lock:
            entry = self._entries.get(signature)
            if entry and entry["quarantined"]:
                return dict(entry)
            return None

    def note_success(self, signature: str) -> None:
        """A clean completion clears sub-limit suspicion."""
        with self._lock:
            entry = self._entries.get(signature)
            if entry and not entry["quarantined"]:
                self._entries.pop(signature, None)

    def snapshot(self) -> List[Dict[str, Any]]:
        with self._lock:
            return sorted((dict(e) for e in self._entries.values()
                           if e["quarantined"]),
                          key=lambda e: e["signature"])

    def clear(self, signature: Optional[str] = None) -> int:
        """Release one signature (or all); returns how many."""
        with self._lock:
            if signature is not None:
                return 1 if self._entries.pop(signature, None) else 0
            count = sum(1 for e in self._entries.values()
                        if e["quarantined"])
            self._entries.clear()
            return count

    @property
    def count(self) -> int:
        with self._lock:
            return sum(1 for e in self._entries.values()
                       if e["quarantined"])


class WorkerSupervisor:
    """Owns the pool: dispatch, watchdog, reaping, backoff restarts."""

    def __init__(self, workers: int, memory_mb: int = 0, cpu_s: int = 0,
                 max_sessions: int = 4, hang_timeout: float = 300.0,
                 restart_base: float = 0.25, restart_cap: float = 5.0,
                 poll_interval: float = 0.1,
                 cancel_grace: float = 0.5) -> None:
        self.size = max(1, workers)
        self.memory_mb = memory_mb
        self.cpu_s = cpu_s
        self.max_sessions = max_sessions
        self.hang_timeout = hang_timeout
        self.restart_base = restart_base
        self.restart_cap = restart_cap
        self.poll_interval = poll_interval
        self.cancel_grace = cancel_grace
        self._idle: "queue.Queue[_WorkerHandle]" = queue.Queue()
        self._lock = threading.Lock()
        self._workers: Dict[int, _WorkerHandle] = {}
        self._generations: Dict[int, int] = {}
        self._consecutive_crashes: Dict[int, int] = {}
        self._restart_due: Dict[int, float] = {}
        self._stopping = threading.Event()
        self._watchdog: Optional[threading.Thread] = None
        self.crashes_total = 0
        self.restarts_total = 0
        self.hangs_total = 0

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        for index in range(self.size):
            self._spawn(index)
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-worker-watchdog", daemon=True)
        self._watchdog.start()

    def _spawn(self, index: int) -> None:
        generation = self._generations.get(index, -1) + 1
        self._generations[index] = generation
        parent_conn, child_conn = _CTX.Pipe(duplex=True)
        proc = _CTX.Process(
            target=_worker_main,
            args=(child_conn, self.memory_mb, self.cpu_s,
                  self.max_sessions),
            name=f"repro-worker-{index}", daemon=True)
        proc.start()
        child_conn.close()
        handle = _WorkerHandle(index, generation, proc, parent_conn)
        # boot handshake: fork + rlimit application is milliseconds
        if parent_conn.poll(30.0):
            try:
                message = parent_conn.recv()
                if message[0] == "ready":
                    logger.info("%s ready: %s", handle.name, message[1])
            except (EOFError, OSError):
                pass
        with self._lock:
            self._workers[index] = handle
        self._idle.put(handle)

    def shutdown(self, timeout: float = 5.0) -> None:
        self._stopping.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
        with self._lock:
            handles = list(self._workers.values())
            self._workers.clear()
        for handle in handles:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout
        for handle in handles:
            handle.proc.join(max(0.1, deadline - time.monotonic()))
            if handle.proc.is_alive():
                _kill(handle.proc)
                handle.proc.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass

    # -- dispatch -------------------------------------------------------
    def execute(self, job: Dict[str, Any],
                token: Optional[CancelToken] = None,
                on_event: Optional[Callable[[Dict[str, Any]], None]]
                = None,
                on_stat: Optional[Callable[[str], None]] = None
                ) -> Dict[str, Any]:
        """Run one job on a pooled worker; returns the result document.

        Raises :class:`WorkerCrashed` if the worker dies mid-job, the
        re-raised worker exception if the job failed in-worker, or
        :class:`~repro.cancellation.Cancelled` if ``token`` fires.  On
        a parent-side cancellation the worker gets ``cancel_grace``
        seconds to unwind cooperatively (its own deadline token fires
        too); a worker that stays silent is presumed stuck and killed.
        """
        job = dict(job)
        job.setdefault("faults", self._due_faults())
        handle = self._acquire(token)
        handle.busy_since = time.monotonic()
        handle.signature = job.get("signature")
        crashed: Optional[WorkerCrashed] = None
        try:
            try:
                handle.conn.send(("job", job))
                return self._await_result(handle, token, on_event,
                                          on_stat)
            except WorkerCrashed as exc:
                crashed = exc
                raise
            except (BrokenPipeError, OSError) as exc:
                crashed = self._crash_of(handle, context=str(exc))
                raise crashed from exc
            except Cancelled as exc:
                if not getattr(exc, "from_worker", False) \
                        and not self._await_unwind(handle):
                    # silent past the grace: presumed stuck, kill it
                    handle.kill_reason = "cancelled mid-job"
                    _kill(handle.proc)
                    crashed = self._crash_of(handle)
                raise
        finally:
            handle.busy_since = None
            handle.signature = None
            if crashed is not None:
                self._reap(handle)
            else:
                handle.jobs_done += 1
                with self._lock:
                    self._consecutive_crashes[handle.index] = 0
                self._idle.put(handle)

    def _await_result(self, handle: _WorkerHandle,
                      token: Optional[CancelToken],
                      on_event, on_stat) -> Dict[str, Any]:
        while True:
            try:
                has_message = handle.conn.poll(0.05)
            except (BrokenPipeError, OSError):
                has_message = False
            if has_message:
                try:
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    raise self._crash_of(handle)
                op = message[0]
                if op == "ok":
                    return message[1]
                if op == "err":
                    _raise_remote(message[1])
                if op == "event" and on_event is not None:
                    try:
                        on_event(message[1])
                    except Exception:
                        # client sink broke; stop forwarding and let
                        # the token (cancelled by the caller) unwind us
                        on_event = None
                elif op == "stat" and on_stat is not None:
                    on_stat(message[1])
                continue
            if not handle.proc.is_alive():
                if handle.conn.poll(0):
                    continue  # drain the final buffered message first
                raise self._crash_of(handle)
            if token is not None:
                token.check()  # deadline/drain/disconnect -> Cancelled

    def _await_unwind(self, handle: _WorkerHandle) -> bool:
        """Grace window after a parent-side cancellation.

        The job shipped the request deadline, so a healthy worker's own
        token fires around the same time as the parent's — give it
        ``cancel_grace`` seconds to finish the job message ("ok" or
        "err", late events are discarded) and be reused warm.  Returns
        False if the worker stayed silent or died: the caller kills it.
        """
        end = time.monotonic() + self.cancel_grace
        while time.monotonic() < end:
            if not handle.proc.is_alive():
                return False
            try:
                if not handle.conn.poll(0.02):
                    continue
                message = handle.conn.recv()
            except (EOFError, OSError):
                return False
            if message[0] in ("ok", "err"):
                return True
        return False

    def _acquire(self, token: Optional[CancelToken]) -> _WorkerHandle:
        while True:
            if self._stopping.is_set():
                raise WorkerCrashed("worker pool is shut down",
                                    reason="stopped")
            try:
                handle = self._idle.get(timeout=0.05)
            except queue.Empty:
                if token is not None:
                    token.check()
                continue
            if not handle.proc.is_alive():
                self._reap(handle)
                continue
            return handle

    def _due_faults(self) -> List[FaultClause]:
        plan = active_plan()
        if plan is None:
            return []
        return plan.due(WORKER_SITE)

    # -- crash accounting ----------------------------------------------
    def _crash_of(self, handle: _WorkerHandle,
                  context: str = "") -> WorkerCrashed:
        handle.proc.join(timeout=2.0)
        exitcode = handle.proc.exitcode
        if handle.kill_reason:
            reason, detail = "hang", handle.kill_reason
            if "cancel" in handle.kill_reason:
                reason = "cancelled"
        elif exitcode == EXIT_OOM:
            reason = "oom"
            detail = ("out of memory"
                      + (f" (RLIMIT_AS={self.memory_mb}MB)"
                         if self.memory_mb else ""))
        elif exitcode is not None and exitcode < 0:
            reason = "killed"
            try:
                signame = signal.Signals(-exitcode).name
            except ValueError:
                signame = str(-exitcode)
            detail = f"killed by {signame}"
        else:
            reason = "exit"
            detail = f"exited with code {exitcode}"
        if context:
            detail = f"{detail} ({context})"
        return WorkerCrashed(
            f"{handle.name} {detail} while running a request",
            reason=reason, exitcode=exitcode)

    def _reap(self, handle: _WorkerHandle) -> None:
        """Retire a dead/killed worker and schedule its replacement."""
        if not handle.proc.is_alive():
            handle.proc.join(timeout=1.0)
        else:
            _kill(handle.proc)
            handle.proc.join(timeout=1.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        with self._lock:
            if self._workers.get(handle.index) is not handle:
                return  # already replaced
            del self._workers[handle.index]
            self.crashes_total += 1
            crashes = self._consecutive_crashes.get(handle.index, 0) + 1
            self._consecutive_crashes[handle.index] = crashes
            delay = min(self.restart_cap,
                        self.restart_base * (2 ** (crashes - 1)))
            self._restart_due[handle.index] = time.monotonic() + delay
        logger.warning("%s reaped (%d consecutive crashes); restart in "
                       "%.2fs", handle.name, crashes, delay)

    # -- watchdog -------------------------------------------------------
    def _watch(self) -> None:
        while not self._stopping.wait(self.poll_interval):
            now = time.monotonic()
            with self._lock:
                handles = list(self._workers.values())
                due = [index for index, when in self._restart_due.items()
                       if when <= now]
            # 1. hung busy workers: kill; the owning request thread
            #    observes the death and reports the 500
            for handle in handles:
                busy_since = handle.busy_since
                if (busy_since is not None and self.hang_timeout > 0
                        and now - busy_since > self.hang_timeout
                        and handle.kill_reason is None
                        and handle.proc.is_alive()):
                    handle.kill_reason = (
                        f"hung (busy > {self.hang_timeout:.1f}s), "
                        f"killed by watchdog")
                    self.hangs_total += 1
                    logger.warning("%s %s", handle.name,
                                   handle.kill_reason)
                    _kill(handle.proc)
            # 2. idle workers that died on their own: reap them now so
            #    the backoff clock starts before anyone needs a slot
            idle_snapshot: List[_WorkerHandle] = []
            try:
                while True:
                    idle_snapshot.append(self._idle.get_nowait())
            except queue.Empty:
                pass
            for handle in idle_snapshot:
                if handle.proc.is_alive():
                    self._idle.put(handle)
                else:
                    self._reap(handle)
            # 3. replacements whose backoff has expired
            for index in due:
                with self._lock:
                    if self._workers.get(index) is not None:
                        self._restart_due.pop(index, None)
                        continue
                    self._restart_due.pop(index, None)
                self._spawn(index)
                self.restarts_total += 1
                logger.info("worker-%d restarted", index)

    # -- observability --------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        with self._lock:
            handles = list(self._workers.values())
            pending = len(self._restart_due)
        return {
            "pool": self.size,
            "alive": sum(1 for h in handles if h.proc.is_alive()),
            "busy": sum(1 for h in handles
                        if h.busy_since is not None),
            "restart_pending": pending,
            "crashes_total": self.crashes_total,
            "restarts_total": self.restarts_total,
            "hangs_total": self.hangs_total,
        }


def _kill(proc) -> None:
    try:
        proc.kill()
    except (OSError, AttributeError, ValueError):
        pass
