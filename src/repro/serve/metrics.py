"""Daemon metrics: counters, gauges, and a latency reservoir.

Everything the ``/metrics`` endpoint serves lives here, behind one
lock.  Latencies are kept in a bounded ring (most recent ~1024
requests) — enough for honest p50/p95 without unbounded memory on a
long-lived daemon.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Deque, Dict


def _percentile(sorted_values, fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                max(0, int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[index]


class Metrics:
    """Thread-safe counters + gauges + latency percentiles."""

    def __init__(self, window: int = 1024) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Callable[[], Any]] = {}
        self._latencies: Deque[float] = deque(maxlen=window)

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str, read: Callable[[], Any]) -> None:
        """Register a live gauge, sampled at snapshot time."""
        with self._lock:
            self._gauges[name] = read

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def latency_p50(self) -> float:
        """Median request latency in seconds (0.0 until data exists)."""
        with self._lock:
            latencies = sorted(self._latencies)
        return _percentile(latencies, 0.50)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            latencies = sorted(self._latencies)
        doc: Dict[str, Any] = {"counters": counters}
        doc["gauges"] = {}
        for name, read in gauges.items():
            try:
                doc["gauges"][name] = read()
            except Exception:  # a gauge must never break /metrics
                doc["gauges"][name] = None
        doc["latency"] = {
            "count": len(latencies),
            "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
            "p95_ms": round(_percentile(latencies, 0.95) * 1000, 3),
            "max_ms": round(latencies[-1] * 1000, 3) if latencies
            else 0.0,
        }
        return doc
