"""GCC-Graphite (``-floop-nest-optimize -floop-parallelize-all``).

Graphite's polyhedral pass is famously conservative in production GCC: it
recognises SCoPs with strict semantic rules (the TSVC ``dummy`` call makes
detection fail, Appendix C; annotating it pure triggers DCE of the whole
loop instead) and rarely restructures.  Modeled behaviour: bail to the
original program whenever any loop-carried flow dependence exists,
otherwise parallelize the outermost loop.  Net effect ≈ 1.0× on PolyBench
and LORE — Table 1's Graphite rows.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dependences import KIND_RAW, dependences
from ..ir.program import Program
from ..transforms import TransformRecipe
from .base import Optimizer, OptimizerResult
from .passes import parallelize_outermost


class Graphite(Optimizer):
    """The GCC-Graphite pipeline."""

    name = "graphite"

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        if "dummy-call" in program.tags:
            if "pure-annotated" in program.tags:
                return self._fail(
                    program, "dce: pure-annotated call makes the outer "
                             "computation loop dead and it is eliminated")
            return self._fail(program, "scop-detection: opaque call")
        deps = dependences(program)
        if any(d.kind == KIND_RAW and d.loop_carried for d in deps):
            # conservative bail-out: emit the original code
            return self._done(program, TransformRecipe())
        program, steps = parallelize_outermost(program, deps,
                                               search_depth=1)
        return self._done(program, TransformRecipe(tuple(steps)))
