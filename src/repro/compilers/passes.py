"""Reusable optimizer passes (building blocks of PLuTo/Polly pipelines).

Each pass returns ``(program, steps)`` where ``steps`` are the
:class:`TransformStep`s actually applied (already applied to the returned
program).  Passes only keep *legal* rewrites — they consult the dependence
witnesses of the original program — and only keep *profitable* ones when a
cost comparison is requested.
"""

from __future__ import annotations

import itertools
from typing import List, Mapping, Optional, Sequence, Tuple

from ..analysis.dependences import (Dependence, is_legal_schedule,
                                    is_parallel_dim)
from ..ir.program import Program
from ..ir.schedule import ConstDim
from ..machine.analytical import estimate_cached
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..transforms import (TransformError, TransformStep, fuse, interchange,
                          pad_statements, parallelize, shared_band, skew,
                          tile)
from ..transforms.base import dynamic_columns

Steps = List[TransformStep]


def align_statement_loops(program: Program,
                          deps: Sequence[Dependence]
                          ) -> Tuple[Program, Steps]:
    """Per-statement interchange toward cross-statement loop alignment.

    When statement ``S`` carries iterator ``j`` at a deep column while a
    sibling statement carries the *same expression* at a shallower column,
    swapping the two makes later fusion/tiling possible — this is exactly
    the ``syrk`` interchange of §2.2 (``k``/``j`` in S2 so S2's ``j`` lines
    up with S1's).
    """
    program = pad_statements(program)
    steps: Steps = []
    changed = True
    guard = 0
    while changed and guard < 8:
        changed = False
        guard += 1
        schedules = program.aligned_schedules()
        for si, stmt in enumerate(program.statements):
            sched = schedules[si]
            own_cols = [c for c, d in enumerate(sched.dims) if d.is_dynamic]
            for shallow, deep in itertools.combinations(own_cols, 2):
                deep_expr = str(sched.dims[deep])
                shallow_expr = str(sched.dims[shallow])
                if deep_expr == shallow_expr:
                    continue
                aligned_here = _peer_expr_at(program, si, shallow)
                if deep_expr not in aligned_here:
                    continue
                if shallow_expr in _peer_expr_at(program, si, deep):
                    continue  # swap would just trade one alignment for another
                step = TransformStep.make("interchange", col_a=shallow,
                                          col_b=deep, stmts=[stmt.name])
                try:
                    candidate = step.apply(program)
                except TransformError:
                    continue
                if is_legal_schedule(candidate, deps):
                    program = candidate
                    steps.append(step)
                    changed = True
                    break
            if changed:
                break
    return program, steps


def _peer_expr_at(program: Program, si: int, col: int) -> set:
    exprs = set()
    for sj, sched in enumerate(program.aligned_schedules()):
        if sj == si or col >= len(sched.dims):
            continue
        dim = sched.dims[col]
        if dim.is_dynamic:
            exprs.add(str(dim))
    return exprs


def fuse_greedily(program: Program,
                  deps: Sequence[Dependence],
                  allow_shift: bool = True) -> Tuple[Program, Steps]:
    """Maximal legal fusion at every constant column, left to right.

    When plain fusion is illegal, optionally retry after *shifting* later
    statements by a small offset on the following loop dimension — the
    classic fusion-enabling shift (it realigns producer/consumer
    iterations, Listing 5's ``t3 - t4 < t4`` alignment).
    """
    program = pad_statements(program)
    steps: Steps = []
    width = program.schedule_width
    col = 0
    while col < width:
        schedules = program.aligned_schedules()
        if any(s.dims[col].is_dynamic for s in schedules):
            col += 1
            continue
        values = {s.dims[col].value for s in schedules}
        if len(values) < 2:
            col += 1
            continue
        step = TransformStep.make("fusion", col=col)
        try:
            candidate = step.apply(program)
        except TransformError:
            col += 1
            continue
        if is_legal_schedule(candidate, deps):
            program = candidate
            steps.append(step)
        elif allow_shift and col + 1 < width:
            fused = _fuse_with_shift(program, deps, col)
            if fused is not None:
                program, shift_steps = fused
                steps += shift_steps
        col += 1
    return program, steps


def _fuse_with_shift(program: Program, deps: Sequence[Dependence],
                     col: int) -> Optional[Tuple[Program, Steps]]:
    """Try shifting trailing statements to legalise fusion at ``col``."""
    later = [s.name for s in program.statements[1:]]
    for offset in (1, 2):
        candidate = program
        steps: Steps = []
        try:
            for name in later:
                stmt = candidate.statement(name)
                sched = stmt.schedule.padded(candidate.schedule_width)
                if col + 1 >= len(sched.dims) or \
                        not sched.dims[col + 1].is_dynamic:
                    return None
                shift_step = TransformStep.make(
                    "shifting", stmt=name, col=col + 1, offset=offset)
                candidate = shift_step.apply(candidate)
                steps.append(shift_step)
            fuse_step = TransformStep.make("fusion", col=col)
            candidate = fuse_step.apply(candidate)
            steps.append(fuse_step)
        except TransformError:
            continue
        if is_legal_schedule(candidate, deps):
            return candidate, steps
    return None


def _permutation_steps(cols: Sequence[int],
                       order: Sequence[int]) -> Steps:
    """Decompose a column permutation into interchange transpositions."""
    current = list(cols)
    target = [cols[i] for i in order]
    steps: Steps = []
    for pos in range(len(current)):
        if current[pos] == target[pos]:
            continue
        other = current.index(target[pos])
        steps.append(TransformStep.make("interchange",
                                        col_a=current[pos],
                                        col_b=current[other]))
        current[pos], current[other] = current[other], current[pos]
    return steps


def best_band_permutation(program: Program, deps: Sequence[Dependence],
                          params: Mapping[str, int],
                          machine: MachineModel = DEFAULT_MACHINE,
                          max_band: int = 4) -> Tuple[Program, Steps]:
    """Search loop orders of the shared band for the cheapest legal one."""
    band = shared_band(program)
    if len(band) < 2 or len(band) > max_band:
        return program, []
    best_prog = program
    best_steps: Steps = []
    best_cost = estimate_cached(program, params, machine).cycles
    for order in itertools.permutations(range(len(band))):
        if list(order) == sorted(order):
            continue
        steps = _permutation_steps(band, order)
        candidate = program
        try:
            for step in steps:
                candidate = step.apply(candidate)
        except TransformError:
            continue
        if not is_legal_schedule(candidate, deps):
            continue
        cost = estimate_cached(candidate, params, machine).cycles
        if cost < best_cost * 0.999:
            best_cost = cost
            best_prog = candidate
            best_steps = steps
    return best_prog, best_steps


def tile_shared_band(program: Program, deps: Sequence[Dependence],
                     tile_size: int = 32,
                     allow_skew: bool = True,
                     min_depth: int = 1) -> Tuple[Program, Steps]:
    """Tile the shared band; optionally try a skew to legalise it."""
    band = shared_band(program)
    if len(band) < min_depth or not band:
        return program, []
    step = TransformStep.make("tiling", columns=list(band),
                              sizes=[tile_size] * len(band))
    try:
        tiled = step.apply(program)
    except TransformError:
        return program, []
    if is_legal_schedule(tiled, deps):
        return tiled, [step]
    if allow_skew and len(band) >= 2:
        skew_step = TransformStep.make("skewing", target_col=band[1],
                                       source_col=band[0], factor=1)
        try:
            skewed = skew_step.apply(program)
            tiled = step.apply(skewed)
        except TransformError:
            return program, []
        if is_legal_schedule(tiled, deps):
            return tiled, [skew_step, step]
    return program, []


def distribute_for_tiling(program: Program, deps: Sequence[Dependence],
                          tile_size: int = 32) -> Tuple[Program, Steps]:
    """Split a fused loop whose band cannot be tiled, then tile the parts.

    PLuTo's fallback when cross-statement dependences inside a fused loop
    make rectangular tiling illegal: distributing the statements into
    consecutive nests removes the intra-loop interleaving constraint and
    per-nest tiling becomes legal.
    """
    if len(program.statements) < 2:
        return program, []
    schedules = program.aligned_schedules()
    width = program.schedule_width
    for col in range(width):
        if any(s.dims[col].is_dynamic for s in schedules):
            continue
        values = [s.dims[col].value for s in schedules]
        if len(set(values)) != 1:
            continue  # only split genuinely fused groups
        step = TransformStep.make("distribution", col=col)
        try:
            candidate = step.apply(program)
        except TransformError:
            continue
        if not is_legal_schedule(candidate, deps):
            continue
        tiled, tile_steps = tile_shared_band(candidate, deps, tile_size,
                                             allow_skew=False, min_depth=1)
        if tile_steps:
            return tiled, [step] + tile_steps
    return program, []


def tile_statement_tails(program: Program, deps: Sequence[Dependence],
                         tile_size: int = 32) -> Tuple[Program, Steps]:
    """Tile per-statement loops left outside the shared band.

    After band tiling, a statement may keep untiled deep loops (gemm's
    reduction ``k`` after the ``i``/``j`` band).  Tiling them — with the
    tile loop hoisted just below the existing tile band — shrinks the
    point-band footprint so the temporal-reuse discounts actually apply.
    """
    from ..ir.schedule import TileDim

    steps: Steps = []
    for stmt_ref in [s.name for s in program.statements]:
        stmt = program.statement(stmt_ref)
        sched = stmt.schedule.padded(program.schedule_width)
        tiled_exprs = {str(d.expr) for d in sched.dims
                       if isinstance(d, TileDim)}
        if not tiled_exprs:
            continue
        last_tile_col = max(c for c, d in enumerate(sched.dims)
                            if isinstance(d, TileDim))
        candidates = [
            c for c, d in enumerate(sched.dims)
            if d.is_dynamic and not isinstance(d, TileDim)
            and str(d.expr) not in tiled_exprs and c > last_tile_col]
        if not candidates:
            continue
        step = TransformStep.make(
            "tiling", columns=candidates[:1],
            sizes=[tile_size], stmts=[stmt_ref], at=last_tile_col + 1)
        try:
            candidate = step.apply(program)
        except TransformError:
            continue
        if is_legal_schedule(candidate, deps):
            program = candidate
            steps.append(step)
    return program, steps


def parallelize_outermost(program: Program, deps: Sequence[Dependence],
                          search_depth: int = 3) -> Tuple[Program, Steps]:
    """Mark the outermost legal dynamic column as OpenMP-parallel."""
    for col in dynamic_columns(program)[:search_depth]:
        if col in program.parallel_dims:
            return program, []
        if is_parallel_dim(program, deps, col):
            step = TransformStep.make("parallel", col=col)
            try:
                return step.apply(program), [step]
            except TransformError:
                return program, []
    return program, []


def vectorize_innermost(program: Program, deps: Sequence[Dependence],
                        allow_reductions: bool = True
                        ) -> Tuple[Program, Steps]:
    """Explicitly mark legal innermost columns as SIMD (pragma simd)."""
    from .base import _is_reduction, vector_violations
    from ..transforms import innermost_column

    steps: Steps = []
    by_col = {}
    for stmt in program.statements:
        col = innermost_column(program, stmt.name)
        if col is not None and col not in program.vector_dims:
            by_col.setdefault(col, []).append(stmt.name)
    for col, names in sorted(by_col.items()):
        violations = vector_violations(program, deps, col, names)
        if violations:
            ok = allow_reductions and all(
                dep.source == dep.target
                and _is_reduction(program, dep.target, col)
                for dep in violations)
            if not ok:
                continue
        step = TransformStep.make("vectorize", col=col)
        try:
            program = step.apply(program)
            steps.append(step)
        except TransformError:
            continue
    return program, steps
