"""Simulated compiler baselines (Table 1) and the PLuTo demo source."""

from .base import (BASE_COMPILERS, CLANG, GCC, ICX, BaseCompiler, Optimizer,
                   OptimizerResult, vector_violations)
from .graphite import Graphite
from .icx import IcxOptimizer
from .perspective import Perspective
from .polly import Polly
from .pluto import Pluto

#: which base compiler each optimizing baseline rides on (§6.1)
OPTIMIZER_BASE = {"graphite": "gcc", "polly": "clang",
                  "perspective": "clang", "icx": "icx", "pluto": "gcc"}

__all__ = [
    "BASE_COMPILERS", "CLANG", "GCC", "ICX", "BaseCompiler", "Optimizer",
    "OPTIMIZER_BASE", "OptimizerResult", "vector_violations",
    "Graphite", "IcxOptimizer", "Perspective", "Polly", "Pluto",
]
