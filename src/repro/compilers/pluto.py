"""PLuTo — the polyhedral source-to-source optimizer (demonstration source).

Models PLuTo 0.11.4 with ``-tile -parallel -nocloogbacktrack`` (§5): loop
alignment (per-statement interchange), maximal fusion, band permutation for
locality, rectangular tiling (with a skew fallback to legalise pipelined
bands) and outermost parallelisation.  PLuTo does **not** emit SIMD
pragmas; its output relies on the base compiler, whose auto-vectorizer
bails on tiled min/max bounds — the cause of PLuTo's weak TSVC numbers in
Table 3.

On the paper's ``syrk``/``gemm`` this pipeline reproduces Listing 1
verbatim: interchange ``k``/``j`` in S2, fuse S1 into the band, tile
``i``/``j`` by 32, ``#pragma omp parallel`` on the tile loop.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dependences import dependences
from ..ir.program import Program
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..transforms import TransformRecipe
from .base import Optimizer, OptimizerResult
from .passes import (align_statement_loops, best_band_permutation,
                     distribute_for_tiling, fuse_greedily,
                     parallelize_outermost, tile_shared_band,
                     tile_statement_tails)


class Pluto(Optimizer):
    """The PLuTo pipeline."""

    name = "pluto"

    def __init__(self, tile_size: int = 32, enable_tiling: bool = True,
                 enable_parallel: bool = True,
                 machine: MachineModel = DEFAULT_MACHINE) -> None:
        self.tile_size = tile_size
        self.enable_tiling = enable_tiling
        self.enable_parallel = enable_parallel
        self.machine = machine

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        # Clan-style SCoP detection is purely syntactic (Appendix C): the
        # TSVC dummy call is treated as a statement and detection succeeds.
        deps = dependences(program)
        steps = []

        program, s = align_statement_loops(program, deps)
        steps += s
        program, s = fuse_greedily(program, deps)
        steps += s
        program, s = best_band_permutation(program, deps, params,
                                           self.machine)
        steps += s
        if self.enable_tiling:
            program, s = tile_shared_band(program, deps, self.tile_size,
                                          allow_skew=True, min_depth=1)
            steps += s
            if not s:
                program, s = distribute_for_tiling(program, deps,
                                                   self.tile_size)
                steps += s
            program, s = tile_statement_tails(program, deps, self.tile_size)
            steps += s
        if self.enable_parallel:
            program, s = parallelize_outermost(program, deps)
            steps += s
        return self._done(program, TransformRecipe(tuple(steps)))
