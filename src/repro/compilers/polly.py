"""Clang-Polly (``-mllvm -polly -polly-parallel -polly-tiling``).

Polly integrates the polyhedral model into LLVM with strict semantic SCoP
detection (Appendix C): an opaque call inside the region rejects the SCoP
unless annotated pure.  Its pipeline here: distribute statements into
separate nests, tile the first two loops of each nest, and parallelize the
outermost legal loop; vectorization is left to Clang's auto-vectorizer,
which handles Polly's *untiled* nests (flat TSVC loops — hence Polly's
strong TSVC row in Table 1) but not min/max tile bounds.  Compared to
PLuTo it lacks the alignment/fusion/permutation passes and deep tiling,
which is why it trails PLuTo on PolyBench (Table 1 vs Table 3).
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dependences import dependences, is_legal_schedule
from ..ir.program import Program
from ..transforms import (TransformError, TransformRecipe, TransformStep,
                          statement_loop_columns)
from .base import Optimizer, OptimizerResult
from .passes import parallelize_outermost


class Polly(Optimizer):
    """The Clang-Polly pipeline."""

    name = "polly"

    def __init__(self, tile_size: int = 32) -> None:
        self.tile_size = tile_size

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        if "dummy-call" in program.tags and \
                "pure-annotated" not in program.tags:
            return self._fail(program, "scop-detection: call to opaque "
                                       "function inside region")
        deps = dependences(program)
        steps = []

        # Unlike PLuTo, production Polly does not restructure statement
        # grouping to enable tiling — per-statement tiling must be legal
        # against the program as written, which fails on interleaved
        # multi-statement nests (gemm) and is the main reason Polly trails
        # PLuTo on PolyBench (Table 1 vs Table 3).

        # tile each statement's own band (depth >= 2), skipping duplicated
        # dimensions earlier per-statement tilings may have inserted
        for stmt in list(program.statements):
            cols = []
            seen = set()
            current = program.statement(stmt.name)
            sched = current.schedule.padded(program.schedule_width)
            for col in statement_loop_columns(program, stmt.name):
                signature = str(sched.dims[col])
                if signature not in seen:
                    seen.add(signature)
                    cols.append(col)
            if len(cols) < 2:
                continue
            cols = cols[:2]  # Polly's default band depth
            step = TransformStep.make("tiling", columns=list(cols),
                                      sizes=[self.tile_size] * len(cols),
                                      stmts=[stmt.name])
            try:
                candidate = step.apply(program)
            except TransformError:
                continue
            if is_legal_schedule(candidate, deps):
                program = candidate
                steps.append(step)

        program, s = parallelize_outermost(program, deps)
        steps += s
        return self._done(program, TransformRecipe(tuple(steps)))
