"""Perspective — speculative automatic parallelization (ASPLOS'20).

Perspective profiles the program, speculates that unobserved dependences do
not occur, parallelizes the outermost loop as speculative DOALL with
runtime validation, and falls back on misspeculation.  Modeled failure
modes mirror §6.2.1: a profiling pass that times out on huge iteration
counts (the reason TSVC is excluded) and an analysis/validation planner
that gives up on dependence-dense regions (low pass@k on PolyBench).

Anti (WAR) and output (WAW) dependences are privatizable, so only carried
flow (RAW) dependences block speculation.  Validation overhead limits
scaling — the evaluation harness runs Perspective results on a machine
capped at fewer effective threads.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dependences import KIND_RAW, dependences, parallel_violations
from ..ir.program import Program
from ..machine.model import DEFAULT_MACHINE, MachineModel
from ..transforms import TransformError, TransformRecipe, TransformStep
from ..transforms.base import dynamic_columns

from .base import Optimizer, OptimizerResult

#: modeled ceiling for the profiling run (outermost loops of TSVC exceed it)
PROFILE_ITER_LIMIT = 4.0e9
#: dependence classes beyond which the validation planner gives up
ANALYSIS_DEP_LIMIT = 12

#: effective threads under speculative validation overhead
SPECULATION_THREADS = 12


class Perspective(Optimizer):
    """The Perspective speculative-DOALL pipeline."""

    name = "perspective"
    machine_override: MachineModel = DEFAULT_MACHINE.with_threads(
        SPECULATION_THREADS)

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        total = 1.0
        for stmt in program.statements:
            size = 1.0
            for spec in stmt.domain.iters:
                size *= max(1, stmt.domain.extent_hint(spec.name, params))
            total = max(total, size)
        if total > PROFILE_ITER_LIMIT:
            return self._fail(program,
                              "profiling-timeout: PROFILE_TIMEOUT exceeded")
        deps = dependences(program)
        if len(deps) > ANALYSIS_DEP_LIMIT:
            return self._fail(program,
                              "analysis: too many dependence classes for "
                              "the validation planner")
        for col in dynamic_columns(program)[:2]:
            carried_flow = [d for d in parallel_violations(program, deps, col)
                            if d.kind == KIND_RAW]
            if carried_flow:
                continue
            step = TransformStep.make("parallel", col=col)
            try:
                return self._done(step.apply(program),
                                  TransformRecipe((step,)))
            except TransformError:
                continue
        return self._fail(program,
                          "speculation: carried flow dependence on every "
                          "outer loop")
