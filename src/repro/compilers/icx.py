"""ICX (``-O3 -qopenmp -xHost``) — the general-purpose Intel compiler.

Without ``-parallel`` ICX does not auto-parallelize; its edge is an
aggressive vectorizer that also handles reductions.  Modeled as: no loop
restructuring, reduction-capable auto-vectorization (the ``icx`` base
compiler's ``finalize``).
"""

from __future__ import annotations

from typing import Mapping

from ..analysis.dependences import dependences
from ..ir.program import Program
from ..transforms import TransformRecipe
from .base import ICX, Optimizer, OptimizerResult
from .passes import vectorize_innermost


class IcxOptimizer(Optimizer):
    """The ICX pipeline: vectorization only."""

    name = "icx"

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        deps = dependences(program)
        program, steps = vectorize_innermost(program, deps,
                                             allow_reductions=True)
        return self._done(program, TransformRecipe(tuple(steps)))
