"""Compiler baseline plumbing.

Every baseline of Table 1 is modeled as a pipeline over the IR:

* a **base compiler** (:class:`BaseCompiler`: GCC / Clang / ICX at ``-O3``)
  provides ``finalize`` — the auto-vectorization every measured binary gets
  ("all codes are compiled using GCC", §6.1);
* an **optimizer** (:class:`Optimizer`: Graphite, Polly, Perspective,
  PLuTo) provides ``optimize(program, params)`` returning an
  :class:`OptimizerResult` with the transformed program, the
  :class:`TransformRecipe` it applied, and a failure reason when SCoP
  detection / profiling / timeouts abort (the paper's per-compiler
  pass@k losses).

Auto-vectorization rules follow the production compilers they model: only
innermost loops with plain (non-tiled, guard-free) bounds, only when no
dependence is carried at that level; reductions vectorize only for
compilers flagged ``vectorizes_reductions`` (ICX).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.dependences import Dependence, dependences
from ..ir.program import Program
from ..ir.schedule import TileDim
from ..transforms import TransformRecipe, innermost_column, pad_statements
from ..transforms.base import dynamic_columns


@dataclass(frozen=True)
class OptimizerResult:
    """Outcome of one optimizing-compiler run."""

    compiler: str
    program: Program
    recipe: TransformRecipe
    ok: bool
    failure: Optional[str] = None

    @property
    def changed(self) -> bool:
        return bool(self.recipe)


class Optimizer:
    """Interface of the optimizing compilers."""

    name = "optimizer"

    def optimize(self, program: Program,
                 params: Mapping[str, int]) -> OptimizerResult:
        raise NotImplementedError

    def _fail(self, program: Program, reason: str) -> OptimizerResult:
        return OptimizerResult(self.name, program, TransformRecipe(),
                               ok=False, failure=reason)

    def _done(self, program: Program,
              recipe: TransformRecipe) -> OptimizerResult:
        return OptimizerResult(self.name, program, recipe, ok=True)


def _stmt_has_tiles(program: Program, stmt_name: str) -> bool:
    stmt = program.statement(stmt_name)
    return any(isinstance(d, TileDim) for d in stmt.schedule.dims)


def vector_violations(program: Program, deps: Sequence[Dependence],
                      col: int, stmt_names: Sequence[str]) -> List[Dependence]:
    """Dependences carried at ``col`` that involve the given statements."""
    from ..analysis.dependences import parallel_violations

    names = set(stmt_names)
    return [dep for dep in parallel_violations(program, deps, col)
            if dep.source in names or dep.target in names]


def concurrency_violations(program: Program, deps: Sequence[Dependence],
                           col: int,
                           forgive_reductions: bool = True
                           ) -> List[Dependence]:
    """Dependences that make column ``col`` unsafe to run concurrently.

    With ``forgive_reductions`` a self-dependence through the accumulation
    target of a reduction statement is excused — the semantics an OpenMP
    ``reduction(+:...)`` clause (or ``simd reduction``) provides.  LLMs
    routinely emit those clauses; PLuTo/Graphite do not, which is part of
    why LOOPRAG wins the TSVC reduction kernels (s311..s319) in Table 3.
    """
    from ..analysis.dependences import parallel_violations

    violations = parallel_violations(program, deps, col)
    if not forgive_reductions:
        return violations
    kept = []
    for dep in violations:
        if dep.source == dep.target:
            try:
                stmt = program.statement(dep.target)
            except KeyError:
                kept.append(dep)
                continue
            if (dep.array == stmt.body.lhs.array
                    and _is_reduction(program, dep.target, col)):
                continue
        kept.append(dep)
    return kept


def _is_reduction(program: Program, stmt_name: str, col: int) -> bool:
    """The statement accumulates into a location invariant at ``col``."""
    stmt = program.statement(stmt_name)
    if stmt.body.op not in ("+=", "-=", "*="):
        return False
    sched = stmt.schedule.padded(program.schedule_width)
    dim = sched.dims[col]
    if not dim.is_dynamic:
        return False
    dim_vars = set(dim.expr.variables())
    for ix in stmt.body.lhs.indices:
        if set(ix.variables()) & dim_vars:
            return False
    return True


@dataclass(frozen=True)
class BaseCompiler:
    """A base ``-O3`` compiler providing auto-vectorization."""

    name: str = "gcc"
    vectorizes_reductions: bool = False
    vectorizes_guarded: bool = False

    def finalize(self, program: Program) -> Program:
        """Mark auto-vectorizable innermost loops (idempotent)."""
        program = pad_statements(program)
        deps = dependences(program)
        by_col: Dict[int, List[str]] = {}
        for stmt in program.statements:
            col = innermost_column(program, stmt.name)
            if col is None or col in program.vector_dims:
                continue
            if _stmt_has_tiles(program, stmt.name):
                # min/max tile bounds defeat the auto-vectorizer
                continue
            if stmt.guards and not self.vectorizes_guarded:
                continue
            by_col.setdefault(col, []).append(stmt.name)
        marked = set(program.vector_dims)
        for col, names in sorted(by_col.items()):
            violations = vector_violations(program, deps, col, names)
            if violations:
                reductions = all(
                    _is_reduction(program, dep.target, col)
                    and dep.source == dep.target
                    for dep in violations)
                if not (reductions and self.vectorizes_reductions):
                    continue
            marked.add(col)
        if marked == set(program.vector_dims):
            return program
        return program.with_vector(frozenset(marked)).with_provenance(
            f"{self.name}-autovec(cols={sorted(marked)})")


GCC = BaseCompiler(name="gcc")
#: LLVM's loop vectorizer if-converts simple guards that GCC gives up on
CLANG = BaseCompiler(name="clang", vectorizes_guarded=True)
ICX = BaseCompiler(name="icx", vectorizes_reductions=True,
                   vectorizes_guarded=True)

BASE_COMPILERS: Dict[str, BaseCompiler] = {
    "gcc": GCC, "clang": CLANG, "icx": ICX,
}
